"""The query service end to end: serve, subscribe, stream, get pushed.

This example runs the whole network stack in one process:

* a :class:`~repro.service.server.QueryService` puts one shared
  :class:`~repro.engine.runtime.QueryEngine` and one sharded table behind
  the newline-delimited JSON wire protocol;
* a *dashboard* client connects, runs a one-shot top-k query, then opens a
  standing subscription over the live window;
* a *loader* client — a different connection — streams positioning batches
  in through ``ingest_batch``; every batch that touches the standing window
  triggers an incremental refresh on the server, which **pushes** the new
  ranking to the dashboard without the dashboard issuing any request;
* the dashboard finally reads the service's metrics (``stats``) and the
  server drains gracefully.

Run with::

    python examples/query_server.py
"""

from __future__ import annotations

import asyncio

from repro import IUPT, QueryEngine, QueryService, ServiceClient
from repro.synth import build_real_scenario

SHARD_SECONDS = 60.0
DURATION = 480.0
HISTORY = 240.0  # loaded before serving; the rest streams in over the wire


async def main_async() -> None:
    scenario = build_real_scenario(num_users=10, duration_seconds=DURATION, seed=29)
    labels = {
        sloc_id: scenario.plan.slocations[sloc_id].label()
        for sloc_id in scenario.slocation_ids()
    }
    slocs = scenario.slocation_ids()

    iupt = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    stream = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    iupt.ingest_batch([r for r in stream if r.timestamp < HISTORY])
    backlog = [r for r in stream if r.timestamp >= HISTORY]

    engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    service = QueryService(engine, iupt)
    host, port = await service.start()
    print(f"query service serving on {host}:{port} ({len(iupt)} records loaded)")

    dashboard = await ServiceClient.connect(host, port)
    loader = await ServiceClient.connect(host, port)

    # One-shot query over the wire.
    answer = await dashboard.top_k(slocs, 3, 0.0, HISTORY)
    ranking = [labels[sloc_id] for sloc_id, _flow in answer["ranking"]]
    print(f"one-shot top-3 over [0, {HISTORY:.0f}]s: {ranking}")

    # A standing subscription over the live window: refreshed by the
    # server after every batch ANY client streams in, pushed — not polled.
    subscription = await dashboard.subscribe_top_k(slocs, 3, HISTORY, DURATION)
    initial = [labels[s] for s, _f in subscription.result["ranking"]]
    print(f"registered standing top-3 over the live window; initial: {initial}")

    # The loader client streams the backlog in shard-sized batches.
    while backlog:
        boundary = backlog[0].timestamp + SHARD_SECONDS
        batch = []
        while backlog and backlog[0].timestamp < boundary:
            batch.append(backlog.pop(0))
        receipt = await loader.ingest_batch(batch)
        push = await subscription.next_update(timeout=10.0)
        pushed = [labels[s] for s, _f in push["result"]["ranking"]]
        print(
            f"loader ingested {receipt['records_ingested']} reports into shards "
            f"{receipt['shards_touched']} -> push #{push['seq']} to dashboard: "
            f"{pushed}"
        )

    stats = await dashboard.stats()
    print(
        f"service stats: {stats['requests']['total']} requests, "
        f"{stats['pushes']['sent']} pushes, "
        f"cache hit rate {stats['cache']['hit_rate']:.2f}, "
        f"{stats['continuous']['refreshes']} standing refreshes "
        f"({stats['continuous']['skipped']} skipped)"
    )

    await dashboard.close()
    await loader.close()
    await service.stop()
    print("service drained and stopped")


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
