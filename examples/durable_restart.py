"""Durability and recovery: a positioning backend that survives restarts.

The storage layer's durable mode puts a write-ahead log and per-shard
snapshots under the sharded table (see ``src/repro/storage/durable.py``).
This example walks the full operational loop:

1. ingest a morning of report traffic into a **durable** table;
2. answer a top-k query and checkpoint (snapshot) the store;
3. "crash" the process — simply abandon the store object — and **recover**
   the directory into a fresh table;
4. verify the recovered ranking is **bit-identical** to the pre-crash one;
5. apply retention eviction and show that the watermark also survives a
   second restart.

Run with::

    python examples/durable_restart.py
"""

from __future__ import annotations

import shutil
import tempfile

from repro import IUPT, QueryEngine
from repro.storage import DurabilityConfig, EvictedRangeError
from repro.synth import build_real_scenario

SHARD_SECONDS = 60.0
DURATION = 480.0
TOP_K = 3


def main() -> None:
    scenario = build_real_scenario(num_users=10, duration_seconds=DURATION, seed=29)
    engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    slocs = scenario.slocation_ids()
    stream = sorted(scenario.iupt.records, key=lambda r: r.timestamp)

    directory = tempfile.mkdtemp(prefix="durable-iupt-")
    try:
        # --- 1. A durable table, ingesting the stream in one-minute flushes.
        table = IUPT.durable(
            directory,
            shard_seconds=SHARD_SECONDS,
            config=DurabilityConfig(fsync="batch"),
        )
        batch, boundary = [], SHARD_SECONDS
        flushes = 0
        for record in stream:
            if record.timestamp >= boundary:
                table.ingest_batch(batch)
                batch, boundary, flushes = [], boundary + SHARD_SECONDS, flushes + 1
            batch.append(record)
        if batch:
            table.ingest_batch(batch)
            flushes += 1
        print(
            f"ingested {len(table)} reports in {flushes} flushes into "
            f"{table.store.shard_count} logged shards under {directory}"
        )

        # --- 2. Query, then checkpoint so recovery can skip the WAL.
        before = engine.top_k(table, slocs, TOP_K, 0.0, DURATION)
        summary = table.store.checkpoint()
        print(
            f"pre-crash top-{TOP_K}: {before.top_k_ids()} "
            f"(checkpoint wrote {summary['snapshots_written']} snapshots)"
        )

        # --- 3. Crash: the in-memory table is gone; only the directory is
        # left.  Recovery rebuilds the exact pre-crash state from it.
        del table
        recovered = IUPT.durable(directory)
        report = recovered.store.recovery_report
        print(
            f"recovered {report['records']} records in {report['shards']} shards "
            f"({report['shards_from_snapshot']} from snapshots, "
            f"{report['frames_replayed']} WAL frames replayed)"
        )

        # --- 4. The recovered ranking is bit-identical.
        after = engine.top_k(recovered, slocs, TOP_K, 0.0, DURATION)
        assert after.top_k_ids() == before.top_k_ids()
        assert after.flows == before.flows
        print(f"recovered top-{TOP_K} is bit-identical: {after.top_k_ids()}")

        # --- 5. Retention: drop the first two minutes, restart again.
        dropped = recovered.evict_before(120.0)
        recovered.store.close()
        reopened = IUPT.durable(directory)
        print(
            f"evicted {dropped} records; watermark {reopened.store.eviction_watermark:g} "
            f"survived the second restart"
        )
        try:
            engine.flow(reopened, slocs[0], 0.0, DURATION)
        except EvictedRangeError as error:
            print(f"query below the watermark still fails loudly: {error}")
        fresh = engine.top_k(reopened, slocs, TOP_K, 120.0, DURATION)
        print(f"surviving-history top-{TOP_K}: {fresh.top_k_ids()}")
        reopened.store.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
