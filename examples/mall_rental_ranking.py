"""Shopping-mall rental ranking: compare algorithms and pricing tiers.

The paper's second motivating application: a mall operator wants to rank shops
by visitor flow to inform rental pricing.  This example runs the same top-k
query with all three search algorithms (naive, nested-loop, best-first) plus
the simple-counting baseline, shows that the three exact algorithms agree,
compares their cost, and turns the flow ranking into pricing tiers.

Run with::

    python examples/mall_rental_ranking.py
"""

from __future__ import annotations

import time

from repro import SimpleCounting, TkPLQuery, build_real_scenario


def main() -> None:
    # The university floor doubles as a small "mall": rooms are shops and the
    # hallway segments are common areas.  (The naive algorithm below pays a
    # full per-location pass over every shopper, so the demo keeps the crowd
    # small; scale num_users/duration up for a heavier run.)
    scenario = build_real_scenario(num_users=10, duration_seconds=360.0, seed=3)
    plan = scenario.plan
    shops = sorted(plan.slocations)
    k = 5
    query = TkPLQuery.build(shops, k, scenario.start_time, scenario.end_time)

    print(f"Shops under analysis: {len(shops)}; positioning records: {len(scenario.iupt)}")

    rankings = {}
    for algorithm in ("naive", "nested-loop", "best-first"):
        began = time.perf_counter()
        result = scenario.system.search(scenario.iupt, query, algorithm=algorithm)
        elapsed = time.perf_counter() - began
        rankings[algorithm] = result.top_k_ids()
        print(
            f"{algorithm:12s} -> top-{k} {result.top_k_ids()} "
            f"({elapsed:.2f}s, pruning {result.stats.pruning_ratio:.0%})"
        )

    agreement = rankings["naive"] == rankings["nested-loop"] == rankings["best-first"]
    print(f"\nAll exact algorithms agree on the ranking: {agreement}")

    sc_result = SimpleCounting(plan).search(scenario.iupt, query)
    print(f"simple count -> top-{k} {sc_result.top_k_ids()} (topology-unaware baseline)")

    # Turn the best-first flows into three pricing tiers.
    bf_result = scenario.system.search(scenario.iupt, query, algorithm="best-first")
    full = scenario.system.top_k(
        scenario.iupt, shops, k=len(shops),
        start=query.start, end=query.end, algorithm="nested-loop",
    )
    ordered = sorted(full.flows.items(), key=lambda item: -item[1])
    tier_size = max(1, len(ordered) // 3)
    print("\nSuggested rental tiers (by estimated visitor flow):")
    for index, (sloc_id, flow) in enumerate(ordered):
        tier = "A (premium)" if index < tier_size else (
            "B (standard)" if index < 2 * tier_size else "C (economy)"
        )
        label = plan.slocations[sloc_id].label()
        print(f"  {label:18s} flow = {flow:6.2f}  tier {tier}")

    del bf_result  # the full ranking above is what drives the tiers


if __name__ == "__main__":
    main()
