"""A live dashboard over standing top-k queries: register once, stream, read.

This example plays the role of a venue dashboard in production: standing
top-k popularity queries are registered *once* against a
:class:`~repro.engine.continuous.ContinuousQueryEngine`, and every batch of
positioning reports streamed into the table refreshes the registered results
automatically — incrementally, so the work per flush is proportional to what
the batch actually changed:

* a flush whose shards don't overlap a standing window **skips** that
  refresh outright (the historical window below never recomputes);
* where a window is touched, only the objects with new reports in it are
  recomputed — every other object's cached presence artefact is re-keyed to
  the new shard versions;
* retention eviction past a standing window flips that subscription to
  *evicted*: reading it raises instead of serving a result computed from
  truncated history.

Run with::

    python examples/live_dashboard.py
"""

from __future__ import annotations

from repro import IUPT, QueryEngine
from repro.storage import EvictedRangeError
from repro.synth import build_real_scenario

SHARD_SECONDS = 60.0
DURATION = 480.0
HISTORY = 240.0  # loaded up front; the rest streams in


def main() -> None:
    scenario = build_real_scenario(num_users=10, duration_seconds=DURATION, seed=29)
    engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    slocs = scenario.slocation_ids()
    labels = {
        sloc_id: scenario.plan.slocations[sloc_id].label() for sloc_id in slocs
    }

    iupt = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    stream = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    iupt.ingest_batch([r for r in stream if r.timestamp < HISTORY])
    backlog = [r for r in stream if r.timestamp >= HISTORY]

    continuous = engine.continuous(iupt)
    live = continuous.register_top_k(slocs, k=3, start=HISTORY, end=DURATION)
    historical = continuous.register_top_k(slocs, k=3, start=0.0, end=120.0)
    print(
        f"registered 2 standing top-3 queries: live window "
        f"[{HISTORY:.0f}, {DURATION:.0f}]s and historical window [0, 120]s"
    )
    print(f"initial live ranking: {[labels[i] for i in live.top_k_ids()]}")

    flush = 0
    while backlog:
        boundary = backlog[0].timestamp + SHARD_SECONDS
        batch = []
        while backlog and backlog[0].timestamp < boundary:
            batch.append(backlog.pop(0))
        receipt = iupt.ingest_batch(batch)
        flush += 1
        ranking = [labels[i] for i in live.top_k_ids()]
        print(
            f"flush {flush}: +{receipt.records_ingested} reports into shards "
            f"{receipt.shards_touched} -> live ranking {ranking} "
            f"(churn {live.stats.last_churn}); historical refreshes skipped "
            f"so far: {historical.stats.skipped}"
        )

    summary = continuous.describe()
    print(
        f"maintenance summary: {summary['refreshes']} refreshes, "
        f"{summary['skipped']} skipped, "
        f"{summary['objects_recomputed']} objects recomputed, "
        f"{summary['objects_rekeyed']} re-keyed"
    )

    # Retention: keep the last five minutes; the historical window dies loudly.
    dropped = iupt.evict_before(DURATION - 300.0)
    print(f"retention evicted {dropped} records below t={iupt.store.eviction_watermark:.0f}")
    try:
        historical.result
    except EvictedRangeError as error:
        print(f"historical standing query now refuses: {error}")
    print(
        f"live standing query still serving: "
        f"{[labels[i] for i in live.top_k_ids()]}"
    )


if __name__ == "__main__":
    main()
