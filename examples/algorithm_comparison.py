"""Method comparison on one scenario: the paper's Table 4 in miniature.

Runs every evaluated method (BF, NL, Naive, their -ORG variants without data
reduction, SC, SC-ρ, and MC) on the same query over the university-floor
scenario and prints running time, pruning ratio, Kendall coefficient, and
recall against the simulation ground truth — a miniature, single-query version
of the paper's Table 4.

Run with::

    python examples/algorithm_comparison.py
"""

from __future__ import annotations

from repro import TkPLQuery, build_real_scenario, run_methods
from repro.experiments.runner import format_table


def main() -> None:
    scenario = build_real_scenario(num_users=12, duration_seconds=480.0, seed=7)
    query_set = scenario.pick_query_slocations(0.6, seed=1)
    start, end = scenario.query_interval(180.0, seed=1)
    query = TkPLQuery.build(query_set, k=3, start=start, end=end)

    print(f"Query: top-3 of {len(query_set)} S-locations over a 3-minute window")
    methods = ["sc", "sc-rho", "mc", "bf", "nl", "naive", "bf-org", "nl-org"]
    outcomes = run_methods(scenario, methods, query, mc_rounds=40)

    rows = [outcome.as_row() for outcome in outcomes]
    print(format_table(rows))

    fastest_exact = min(
        (outcome for outcome in outcomes if outcome.method in ("bf", "nl", "naive")),
        key=lambda outcome: outcome.elapsed_seconds,
    )
    print(
        f"\nFastest exact method: {fastest_exact.method} "
        f"({fastest_exact.elapsed_seconds:.2f}s, Kendall {fastest_exact.kendall:.2f})"
    )
    print(
        "Note: the -ORG variants process the un-reduced positioning sequences and "
        "illustrate how much the data reduction method saves."
    )


if __name__ == "__main__":
    main()
