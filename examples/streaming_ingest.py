"""Streaming ingestion on the sharded store: live reports, stable caches.

This example plays the role of a positioning backend in production: report
traffic arrives continuously in small batches while dashboards keep querying
recent (and not-so-recent) windows.  It demonstrates the storage layer's
three streaming properties:

1. **batched ingestion** — each flush lands in the time shards it overlaps,
   costing one bulk index build per touched shard instead of per-record
   index inserts;
2. **shard-granular cache invalidation** — after a new batch arrives, a
   dashboard re-asking about an *older* window is answered from the engine's
   presence cache (its shard versions are untouched), while a query over the
   window the batch landed in is recomputed;
3. **retention eviction** — old shards are dropped wholesale, and a query
   reaching below the retention watermark fails loudly instead of silently
   returning partial flows.

Run with::

    python examples/streaming_ingest.py
"""

from __future__ import annotations

from repro import IUPT, QueryEngine
from repro.storage import EvictedRangeError
from repro.synth import build_real_scenario

SHARD_SECONDS = 60.0
DURATION = 480.0


def main() -> None:
    # Simulate the "historical" traffic: a university floor over 8 minutes.
    scenario = build_real_scenario(num_users=10, duration_seconds=DURATION, seed=29)
    engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    slocs = scenario.slocation_ids()

    # A sharded table ingesting the stream in one-minute flushes.
    iupt = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    stream = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    live, backlog = [], list(stream)
    flush_count = 0
    while backlog and backlog[0].timestamp < DURATION - SHARD_SECONDS:
        boundary = backlog[0].timestamp + SHARD_SECONDS
        batch = []
        while backlog and backlog[0].timestamp < boundary:
            batch.append(backlog.pop(0))
        receipt = iupt.ingest_batch(batch)
        flush_count += 1
        live.extend(batch)
    print(
        f"ingested {len(live)} reports in {flush_count} flushes "
        f"across {iupt.store.shard_count} shards "
        f"(last flush touched shards {receipt.shards_touched})"
    )

    # Dashboards query two windows: an old one and the freshest one.
    old_window = (0.0, 120.0)
    fresh_window = (DURATION - 3 * SHARD_SECONDS, DURATION - SHARD_SECONDS)
    engine.flows(iupt, slocs, *old_window)
    engine.flows(iupt, slocs, *fresh_window)
    warm = engine.cache_stats()
    print(f"warmed the presence store: {int(warm['puts'])} artefacts cached")

    # A late batch arrives — it only touches the freshest shard(s).
    receipt = iupt.ingest_batch(backlog)
    print(f"late batch of {receipt.records_ingested} landed in shards {receipt.shards_touched}")

    before = engine.cache_stats()
    engine.flows(iupt, slocs, *old_window)
    after_old = engine.cache_stats()
    engine.flows(iupt, slocs, *fresh_window)
    after_fresh = engine.cache_stats()
    old_hits = int(after_old["hits"] - before["hits"])
    old_misses = int(after_old["misses"] - before["misses"])
    fresh_misses = int(after_fresh["misses"] - after_old["misses"])
    print(
        f"re-querying the old window: {old_hits} cache hits, {old_misses} misses "
        "(its shards were untouched)"
    )
    print(
        f"re-querying the fresh window: {fresh_misses} misses "
        "(the batch invalidated exactly its windows)"
    )

    # Retention: keep only the last five minutes of history.
    dropped = iupt.evict_before(DURATION - 300.0)
    print(f"retention evicted {dropped} records below t={iupt.store.eviction_watermark:.0f}")
    try:
        engine.flows(iupt, slocs, *old_window)
    except EvictedRangeError as error:
        print(f"query into evicted history refused: {error}")


if __name__ == "__main__":
    main()
