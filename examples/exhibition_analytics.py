"""Exhibition analytics: which exhibition areas were the most popular?

This example mirrors the paper's motivating scenario of a large exhibition:
visitors roam a multi-room venue, their positions are captured by Wi-Fi
fingerprinting as probabilistic samples, and the organiser wants to know which
exhibition areas attracted the most visitors during the morning so the layout
and recommendations can be adapted.

The venue, the visitor movement, and the uncertain positioning reports are all
simulated with the library's generators; the query is answered with the
best-first TkPLQ algorithm and checked against the simulation's ground truth.

Run with::

    python examples/exhibition_analytics.py
"""

from __future__ import annotations

from repro import TkPLQuery, build_synthetic_scenario, kendall_coefficient, recall_at_k
from repro.eval import ground_truth_ranking


def main() -> None:
    # One exhibition floor: a 3 x 4 grid of exhibition rooms around hallways.
    scenario = build_synthetic_scenario(
        num_objects=30,
        floors=1,
        room_rows=3,
        rooms_per_row=4,
        duration_seconds=900.0,
        positioning_error=4.0,
        seed=5,
    )
    print("Venue:", scenario.plan.summary())
    print("Positioning reports captured:", len(scenario.iupt))

    # The organiser cares about the exhibition rooms only (not hallways).
    from repro.space import PartitionKind

    exhibition_rooms = [
        sloc_id
        for sloc_id, sloc in scenario.plan.slocations.items()
        if any(
            partition.kind is PartitionKind.ROOM and partition.rect == sloc.region
            for partition in scenario.plan.partitions.values()
        )
    ]
    k = 5
    query = TkPLQuery.build(
        exhibition_rooms, k, scenario.start_time, scenario.end_time
    )

    result = scenario.system.search(scenario.iupt, query, algorithm="best-first")

    print(f"\nTop-{k} exhibition areas by estimated visitor flow:")
    for rank, entry in enumerate(result.ranking, start=1):
        label = scenario.plan.slocations[entry.sloc_id].label()
        print(f"  {rank}. {label:20s} flow = {entry.flow:.2f}")

    truth = ground_truth_ranking(
        scenario.trajectories,
        scenario.plan,
        query.start,
        query.end,
        query.query_slocations,
        k,
    )
    print("\nGround-truth ranking (from exact trajectories):")
    for rank, sloc_id in enumerate(truth, start=1):
        print(f"  {rank}. {scenario.plan.slocations[sloc_id].label()}")

    ranking = result.top_k_ids()
    print(f"\nRecall@{k}: {recall_at_k(ranking, truth):.2f}")
    print(f"Kendall tau: {kendall_coefficient(ranking, truth):.2f}")
    print(
        "Query statistics:",
        {key: round(value, 4) for key, value in result.stats.as_dict().items()},
    )


if __name__ == "__main__":
    main()
