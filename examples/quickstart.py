"""Quickstart: build a small indoor space by hand and answer a TkPLQ.

This example reconstructs (a simplified version of) the running example of the
paper: a one-floor office with rooms, a hallway, partitioning P-locations at
the doors, presence P-locations inside, a handful of uncertain positioning
reports, and a top-k popular location query over the rooms.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    IndoorFlowSystem,
    IUPT,
    Point,
    Rect,
    SampleSet,
    PartitionKind,
    FloorPlan,
)


def build_floorplan() -> FloorPlan:
    """Three rooms opening onto one hallway; every room door is guarded."""
    plan = FloorPlan()
    room_a = plan.add_partition(Rect(0, 0, 6, 6), PartitionKind.ROOM, name="room-a")
    room_b = plan.add_partition(Rect(6, 0, 12, 6), PartitionKind.ROOM, name="room-b")
    room_c = plan.add_partition(Rect(12, 0, 18, 6), PartitionKind.ROOM, name="room-c")
    hallway = plan.add_partition(Rect(0, 6, 18, 10), PartitionKind.HALLWAY, name="hallway")

    # Doors at the top edge of every room, each guarded by a partitioning
    # P-location (a Wi-Fi reference point placed in the doorway).
    for room, x in ((room_a, 3.0), (room_b, 9.0), (room_c, 15.0)):
        door = plan.add_door(Point(x, 6.0), (room, hallway))
        plan.add_partitioning_plocation(Point(x, 6.0), door)

    # Presence P-locations inside the rooms and the hallway.
    plan.add_presence_plocation(Point(3.0, 3.0), room_a)
    plan.add_presence_plocation(Point(9.0, 3.0), room_b)
    plan.add_presence_plocation(Point(15.0, 3.0), room_c)
    plan.add_presence_plocation(Point(9.0, 8.0), hallway)

    # Every partition is a semantic location of interest.
    for partition in (room_a, room_b, room_c, hallway):
        plan.add_slocation_for_partition(partition)
    return plan


def build_positioning_table() -> IUPT:
    """A tiny IUPT: two visitors reported with probabilistic samples.

    P-location ids follow insertion order in ``build_floorplan``:
    0/1/2 are the doors of rooms a/b/c, 3/4/5 are inside rooms a/b/c,
    and 6 is in the hallway.
    """
    iupt = IUPT()
    # Visitor 0 walks from room-a through the hallway into room-b.
    iupt.report(0, SampleSet.from_pairs([(3, 0.8), (0, 0.2)]), 10.0)
    iupt.report(0, SampleSet.from_pairs([(0, 0.6), (6, 0.4)]), 20.0)
    iupt.report(0, SampleSet.from_pairs([(6, 0.5), (1, 0.5)]), 30.0)
    iupt.report(0, SampleSet.from_pairs([(4, 0.9), (1, 0.1)]), 40.0)
    # Visitor 1 lingers around room-c and the hallway.
    iupt.report(1, SampleSet.from_pairs([(5, 0.7), (2, 0.3)]), 12.0)
    iupt.report(1, SampleSet.from_pairs([(2, 0.5), (6, 0.5)]), 25.0)
    iupt.report(1, SampleSet.from_pairs([(6, 1.0)]), 38.0)
    return iupt


def main() -> None:
    plan = build_floorplan()
    system = IndoorFlowSystem(plan)
    iupt = build_positioning_table()

    print("Indoor model:", system.summary())

    query_set = sorted(plan.slocations)
    result = system.top_k(iupt, query_set, k=2, start=0.0, end=60.0, algorithm="best-first")

    print("\nTop-2 most popular semantic locations in [0, 60]:")
    for rank, entry in enumerate(result.ranking, start=1):
        label = plan.slocations[entry.sloc_id].label()
        print(f"  {rank}. {label:10s} flow = {entry.flow:.3f}")

    print("\nPer-location flows (nested-loop algorithm for comparison):")
    nl_result = system.top_k(iupt, query_set, k=len(query_set), start=0.0, end=60.0,
                             algorithm="nested-loop")
    for sloc_id in query_set:
        label = plan.slocations[sloc_id].label()
        print(f"  {label:10s} flow = {nl_result.flows[sloc_id]:.3f}")


if __name__ == "__main__":
    main()
