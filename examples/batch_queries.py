"""Serving a query stream: batching, cross-query caching, parallel workers.

This example plays the role of a popularity-analytics service under load:
many tenants fire overlapping top-k popular-location queries against the same
building and time range.  It answers the same stream three ways —

1. sequentially, with a fresh cold engine per query (the pre-engine
   behaviour);
2. sequentially through one long-lived engine, running the stream twice —
   the second pass hits the cross-query presence store (dashboards re-issuing
   the same query) and answers from cached per-object artefacts;
3. in one batched pass that shares each object's reduce/path work across
   every query of the stream —

and prints the timings, the presence-store statistics, and a proof that all
three produce identical rankings.

Run with::

    python examples/batch_queries.py
"""

from __future__ import annotations

import time

from repro import EngineConfig, QueryEngine, TkPLQuery
from repro.synth import build_real_scenario

NUM_QUERIES = 8


def build_query_stream(scenario) -> list:
    """Overlapping queries over one shared window (a multi-tenant stream)."""
    queries = []
    for tenant in range(NUM_QUERIES):
        query_set = scenario.pick_query_slocations(0.5, seed=100 + tenant)
        queries.append(
            TkPLQuery.build(
                query_set,
                min(3, len(query_set)),
                scenario.start_time,
                scenario.end_time,
            )
        )
    return queries


def main() -> None:
    # The university-floor scenario yields non-trivial flows, so "all
    # strategies agree" below compares real rankings, not all-zero ties.
    scenario = build_real_scenario(num_users=8, duration_seconds=240.0, seed=19)
    queries = build_query_stream(scenario)
    print(
        f"Scenario: {scenario.name}, {len(scenario.iupt)} positioning records, "
        f"{len(queries)} overlapping queries"
    )

    # 1. Sequential, cold: a fresh engine (no cross-query store) per query.
    began = time.perf_counter()
    cold_rankings = []
    for query in queries:
        engine = QueryEngine(
            scenario.system.graph,
            scenario.system.matrix,
            config=EngineConfig.uncached(),
        )
        cold_rankings.append(
            engine.search(scenario.iupt, query, "nested-loop").top_k_ids()
        )
    cold_seconds = time.perf_counter() - began

    # 2. Sequential through one long-lived engine.  The presence store keys
    # by (object, window, query set), so the first pass over the stream is
    # cold; re-issuing the same queries (dashboard refreshes) hits the store.
    warm_engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    for query in queries:
        warm_engine.search(scenario.iupt, query, "nested-loop")
    began = time.perf_counter()
    warm_rankings = [
        warm_engine.search(scenario.iupt, query, "nested-loop").top_k_ids()
        for query in queries
    ]
    warm_seconds = time.perf_counter() - began
    warm_stats = warm_engine.cache_stats()

    # 3. One batched pass, optionally fanning per-object work over threads.
    batch_engine = QueryEngine(
        scenario.system.graph,
        scenario.system.matrix,
        config=EngineConfig(executor="thread", max_workers=4),
    )
    began = time.perf_counter()
    report = batch_engine.batch(scenario.iupt, queries)
    batch_seconds = time.perf_counter() - began
    batch_engine.close()

    print("\nAnswering the stream:")
    print(f"  sequential, cold engines : {cold_seconds * 1000.0:8.1f} ms")
    print(
        f"  repeat pass, warm store  : {warm_seconds * 1000.0:8.1f} ms "
        f"(hit rate {warm_stats['hit_rate']:.0%})"
    )
    print(
        f"  batched single pass      : {batch_seconds * 1000.0:8.1f} ms "
        f"({report.groups} window group(s))"
    )
    print(f"  batch speedup vs cold    : {cold_seconds / batch_seconds:8.1f}x")

    batch_rankings = report.rankings()
    assert cold_rankings == warm_rankings == batch_rankings
    print("\nAll strategies agree on every ranking:")
    for index, ranking in enumerate(batch_rankings):
        print(f"  query {index}: top-{queries[index].k} = {ranking}")


if __name__ == "__main__":
    main()
