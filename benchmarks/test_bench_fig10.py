"""Benchmark regenerating Figure 10: efficiency vs. query interval length on real data (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_fig10(benchmark, real_scenario, real_setting, time_method):
    time_method(benchmark, "fig10", real_scenario, real_setting, "bf")
