"""Storage-layer benchmark: sharded vs. flat ingestion and window queries.

Streams the same synthetic report traffic into both IUPT storage backends
and records the results in ``BENCH_storage.json`` at the repository root
(uploaded as a CI artifact alongside ``BENCH_engine.json``):

* **ingestion** — per-record ``append()`` into the flat store (the seed's
  streaming behaviour: two index inserts and a version bump per record)
  against batched ``ingest_batch()`` into the sharded store (one bulk index
  build and one version bump per touched shard);
* **window queries** — narrow windows served by the flat store's whole-table
  index against the sharded store's shard-pruned path;
* **cache invalidation** — how many cached windows survive one streamed-in
  batch under whole-table versus shard-scoped cache keys.

The acceptance properties of the storage refactor are asserted when the
dedicated CI job opts in via ``REPRO_BENCH_STRICT=1``: bulk ingestion must
be at least 5x faster than per-record appends, and the shard-pruned window
query must not be slower than the flat store's.  (Bit-identical flat/sharded
rankings are asserted unconditionally in ``tests/test_storage.py``.)
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict, List

import pytest

from repro import IUPT, SampleSet
from repro.codec import codec_info, decode_batch, encode_batch
from repro.data.records import PositioningRecord
from repro.experiments.runner import split_into_time_batches

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_storage.json"
PAPER_REPORT_PATH = REPO_ROOT / "BENCH_storage_paper.json"

NUM_OBJECTS = 50
DURATION_SECONDS = 3600.0
REPORT_PERIOD_SECONDS = 6.0
SHARD_SECONDS = 300.0
STREAM_BATCH_SECONDS = 60.0
QUERY_WINDOW_SECONDS = 360.0
QUERY_REPEATS = 200


def _report_stream() -> List[PositioningRecord]:
    """A deterministic, time-ordered stream of positioning reports."""
    records: List[PositioningRecord] = []
    tick = 0
    timestamp = 0.0
    while timestamp < DURATION_SECONDS:
        for object_id in range(NUM_OBJECTS):
            ploc = (object_id + tick) % 23
            records.append(
                PositioningRecord(
                    object_id,
                    SampleSet.from_pairs(
                        [(ploc, 0.6), (ploc + 1, 0.4)]
                    ),
                    timestamp + object_id * 0.01,
                )
            )
        tick += 1
        timestamp += REPORT_PERIOD_SECONDS
    return records


def _stream_batches(records: List[PositioningRecord]) -> List[List[PositioningRecord]]:
    """Slice the stream the way a live loader flushes it: every N seconds."""
    return split_into_time_batches(records, 0.0, STREAM_BATCH_SECONDS)


def _query_windows() -> List[tuple]:
    """Shard-boundary-straddling windows spread over the stream's span."""
    windows = []
    step = (DURATION_SECONDS - QUERY_WINDOW_SECONDS) / 7
    for i in range(8):
        start = i * step
        windows.append((start, start + QUERY_WINDOW_SECONDS))
    return windows


def test_storage_throughput_report():
    records = _report_stream()
    batches = _stream_batches(records)
    windows = _query_windows()

    # --- Ingestion: per-record appends into the flat store (seed behaviour).
    flat = IUPT()
    began = time.perf_counter()
    for record in records:
        flat.append(record)
    flat.range_query(0.0, 0.0)  # force the deferred index build
    flat_ingest = time.perf_counter() - began

    # --- Ingestion: streamed batches into the sharded store.
    sharded = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    began = time.perf_counter()
    for batch in batches:
        sharded.ingest_batch(batch)
    sharded.range_query(0.0, 0.0)
    sharded_ingest = time.perf_counter() - began

    assert len(flat) == len(sharded) == len(records)

    # --- Window queries (results must agree before any timing counts).
    for window in windows:
        flat_result = [(r.object_id, r.timestamp) for r in flat.range_query(*window)]
        sharded_result = [
            (r.object_id, r.timestamp) for r in sharded.range_query(*window)
        ]
        assert flat_result == sharded_result

    timings: Dict[str, float] = {}
    for name, table in (("flat", flat), ("sharded", sharded)):
        began = time.perf_counter()
        for repeat in range(QUERY_REPEATS):
            table.range_query(*windows[repeat % len(windows)])
        timings[name] = (time.perf_counter() - began) / QUERY_REPEATS

    # --- Invalidation granularity: how many cached windows survive a batch.
    #     Tokens stand in for cached entries: an entry survives ingestion
    #     exactly when its window's data key is unchanged.
    probe_windows = [
        (i * SHARD_SECONDS, (i + 1) * SHARD_SECONDS - 1.0)
        for i in range(int(DURATION_SECONDS / SHARD_SECONDS))
    ]
    flat_tokens = {w: flat.data_key_for(*w) for w in probe_windows}
    sharded_tokens = {w: sharded.data_key_for(*w) for w in probe_windows}
    late_batch = [
        PositioningRecord(1, SampleSet.certain(3), DURATION_SECONDS - 10.0 + i)
        for i in range(5)
    ]
    flat.ingest_batch(late_batch)
    sharded.ingest_batch(late_batch)
    flat_survivors = sum(
        1 for w, token in flat_tokens.items() if flat.data_key_for(*w) == token
    )
    sharded_survivors = sum(
        1 for w, token in sharded_tokens.items() if sharded.data_key_for(*w) == token
    )
    assert flat_survivors == 0, "flat tokens are whole-table; all must churn"
    assert sharded_survivors == len(probe_windows) - 1, (
        "one streamed batch must invalidate exactly the windows overlapping "
        "the touched shard"
    )

    ingest_speedup = flat_ingest / sharded_ingest
    query_ratio = timings["flat"] / timings["sharded"]

    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    if strict:
        # Acceptance: bulk ingestion >= 5x faster than per-record appends,
        # shard-pruned window query not slower than the flat store.
        assert ingest_speedup >= 5.0, (
            f"sharded bulk ingestion should be >=5x faster than per-record "
            f"appends; got {ingest_speedup:.1f}x "
            f"({flat_ingest:.3f}s vs {sharded_ingest:.3f}s)"
        )
        assert timings["sharded"] <= timings["flat"] * 1.1, (
            f"shard-pruned window query should not be slower than the flat "
            f"store; flat {timings['flat'] * 1e6:.1f}us vs sharded "
            f"{timings['sharded'] * 1e6:.1f}us"
        )
    else:
        # Correctness runs keep a loose sanity bound so a storage-layer
        # regression cannot hide behind the non-strict mode.
        assert ingest_speedup > 1.0

    if not strict:
        # Only the opted-in smoke-benchmark run records machine timings.
        return

    store = sharded.store
    payload = {
        "benchmark": "storage-ingestion-and-query",
        "codec": codec_info(),
        "workload": {
            "records": len(records),
            "objects": NUM_OBJECTS,
            "duration_seconds": DURATION_SECONDS,
            "stream_batch_seconds": STREAM_BATCH_SECONDS,
            "shard_seconds": SHARD_SECONDS,
            "shards": store.shard_count,
            "query_window_seconds": QUERY_WINDOW_SECONDS,
            "query_repeats": QUERY_REPEATS,
        },
        "ingestion": {
            "flat_per_record_appends_s": round(flat_ingest, 4),
            "sharded_ingest_batch_s": round(sharded_ingest, 4),
            "speedup": round(ingest_speedup, 2),
            "records_per_second_flat": round(len(records) / flat_ingest),
            "records_per_second_sharded": round(len(records) / sharded_ingest),
        },
        "window_query": {
            "flat_s": round(timings["flat"], 6),
            "sharded_s": round(timings["sharded"], 6),
            "flat_over_sharded": round(query_ratio, 2),
            "shards_per_query": len(
                store.overlapping_shard_keys(*windows[0])
            ),
        },
        "invalidation_after_one_batch": {
            "probe_windows": len(probe_windows),
            "flat_windows_still_cached": flat_survivors,
            "sharded_windows_still_cached": sharded_survivors,
        },
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}:")
    print(json.dumps({"ingestion": payload["ingestion"], "window_query": payload["window_query"]}, indent=2))

# ----------------------------------------------------------------------
# Paper scale (>=100k records): the packed codec against JSON payloads
# ----------------------------------------------------------------------
PAPER_NUM_OBJECTS = 100
PAPER_DURATION_SECONDS = 6000.0


def _paper_stream() -> List[PositioningRecord]:
    records: List[PositioningRecord] = []
    tick = 0
    timestamp = 0.0
    while timestamp < PAPER_DURATION_SECONDS:
        for object_id in range(PAPER_NUM_OBJECTS):
            ploc = (object_id + tick) % 23
            records.append(
                PositioningRecord(
                    object_id,
                    SampleSet.from_pairs([(ploc, 0.6), (ploc + 1, 0.4)]),
                    timestamp + object_id * 0.01,
                )
            )
        tick += 1
        timestamp += REPORT_PERIOD_SECONDS
    return records


def test_storage_paper_scale_codec_report():
    """Paper-scale (>=100k records) ingest-to-queryable and codec round trip.

    Opt-in via ``REPRO_BENCH_PAPER=1``: streams the full paper-scale report
    load into the sharded store, measures time-to-first-answer, and compares
    the packed binary codec against the JSON payload path for a whole-table
    round trip.  Results land in ``BENCH_storage_paper.json``.
    """
    if os.environ.get("REPRO_BENCH_PAPER") != "1":
        pytest.skip("paper-scale benchmark: set REPRO_BENCH_PAPER=1")

    from repro.storage.durable import record_from_payload, record_to_payload

    records = _paper_stream()
    assert len(records) >= 100_000
    batches = split_into_time_batches(records, 0.0, STREAM_BATCH_SECONDS)

    # --- Ingest-to-queryable: stream everything, then the first answer.
    sharded = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    began = time.perf_counter()
    for batch in batches:
        sharded.ingest_batch(batch)
    first_answer = sharded.range_query(0.0, QUERY_WINDOW_SECONDS)
    ingest_to_queryable = time.perf_counter() - began
    assert len(sharded) == len(records) and first_answer

    # --- Codec round trip: packed binary vs the JSON payload path.
    began = time.perf_counter()
    blob = encode_batch(records)
    encode_elapsed = time.perf_counter() - began
    began = time.perf_counter()
    decoded = decode_batch(blob)
    decode_elapsed = time.perf_counter() - began

    began = time.perf_counter()
    text = json.dumps([record_to_payload(r) for r in records])
    json_encode_elapsed = time.perf_counter() - began
    began = time.perf_counter()
    via_json = [record_from_payload(p) for p in json.loads(text)]
    json_decode_elapsed = time.perf_counter() - began

    # Equality before any number counts.
    assert [r.timestamp for r in decoded] == [r.timestamp for r in records]
    assert [r.timestamp for r in via_json] == [r.timestamp for r in records]

    round_trip = encode_elapsed + decode_elapsed
    json_round_trip = json_encode_elapsed + json_decode_elapsed
    payload = {
        "benchmark": "storage-paper-scale-codec",
        "codec": codec_info(),
        "workload": {
            "records": len(records),
            "objects": PAPER_NUM_OBJECTS,
            "duration_seconds": PAPER_DURATION_SECONDS,
            "shard_seconds": SHARD_SECONDS,
        },
        "ingest_to_queryable": {
            "elapsed_s": round(ingest_to_queryable, 4),
            "records_per_second": round(len(records) / ingest_to_queryable),
        },
        "codec_round_trip": {
            "packed_encode_s": round(encode_elapsed, 4),
            "packed_decode_s": round(decode_elapsed, 4),
            "json_encode_s": round(json_encode_elapsed, 4),
            "json_decode_s": round(json_decode_elapsed, 4),
            "packed_bytes": len(blob),
            "json_bytes": len(text),
            "speedup_vs_json": round(json_round_trip / round_trip, 2),
        },
    }
    PAPER_REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {PAPER_REPORT_PATH}:")
    print(json.dumps(payload["codec_round_trip"], indent=2))
    assert round_trip < json_round_trip, (
        "packed round trip should beat the JSON payload path at paper scale"
    )
