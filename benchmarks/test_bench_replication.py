"""Replication benchmark: routed read scale-out vs. a single server.

Launches two real multi-process topologies via ``python -m
repro.service.topology`` (separate OS processes, so replica query work does
not share the benchmark's GIL):

* **single-server baseline** — one durable primary answering every read;
* **replicated** — one durable primary, **two WAL-shipping read replicas**,
  and one :class:`~repro.service.router.PartitionRouter` fanning writes to
  the primary and routing reads across the replicas by time-partition
  affinity.

Both topologies ingest the identical record stream as binary ``RPK1``
frames and then serve the identical deterministic read plan: 8 concurrent
clients looping ``ROUNDS`` times over a fixed set of ``top_k`` / ``flows``
windows spread across both time partitions.  Every node runs with the same
bounded per-node presence cache (``--presence-capacity``), sized so the
full working set **thrashes one node's cache but each partition's half fits
one replica's** — the cache-affinity effect partition routing exists for,
on top of the extra core a second replica process brings.

Correctness is asserted unconditionally and bit-identically: every response
from *both* topologies must equal the in-process engine's answer over the
same table, so the speedup is measured at equal output.  The aggregate
throughput comparison lands in ``BENCH_replication.json`` at the repository
root when the dedicated CI job opts in via ``REPRO_BENCH_STRICT=1``;
correctness-only runs do not rewrite the committed report.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import random
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Tuple

from repro import IUPT, QueryEngine, ServiceClient
from repro.codec import codec_info
from repro.service import protocol
from repro.service.metrics import LatencyHistogram
from repro.synth import build_synthetic_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_replication.json"

NUM_CLIENTS = 8
COMBOS_PER_CLIENT = 8
ROUNDS = 4
NUM_REPLICAS = 2
SHARD_SECONDS = 60.0
DURATION = 240.0
WINDOW = 60.0
# Same bound on every node.  64 distinct (window, slocation-subset) pairs x
# ~10 objects ~= 640 presence entries total: cyclic access thrashes one
# 360-entry cache, while each partition's ~320 entries fit one replica's.
PRESENCE_CAPACITY = 360
# Window starts by partition (int(start // SHARD_SECONDS) % NUM_REPLICAS).
PARTITION_STARTS = {
    0: (0.0, 30.0, 120.0, 150.0),
    1: (60.0, 90.0, 180.0),
}

Combo = Tuple[str, dict]


def _scenario():
    return build_synthetic_scenario(
        num_objects=10,
        floors=2,
        room_rows=1,
        rooms_per_row=3,
        duration_seconds=DURATION,
        seed=17,
        store_kind="sharded",
        shard_seconds=SHARD_SECONDS,
    )


def _shard_batches(scenario) -> List[List]:
    records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    batches: List[List] = []
    boundary = SHARD_SECONDS
    current: List = []
    for record in records:
        while record.timestamp >= boundary:
            batches.append(current)
            current = []
            boundary += SHARD_SECONDS
        current.append(record)
    if current:
        batches.append(current)
    return [batch for batch in batches if batch]


def _client_plans(scenario) -> List[List[Combo]]:
    """Deterministic per-client read plans, balanced across both partitions."""
    slocs = scenario.slocation_ids()
    seen: set = set()
    plans: List[List[Combo]] = []
    for client_index in range(NUM_CLIENTS):
        rng = random.Random(7000 + client_index)
        plan: List[Combo] = []
        for combo_index in range(COMBOS_PER_CLIENT):
            partition = combo_index % NUM_REPLICAS
            while True:
                start = rng.choice(PARTITION_STARTS[partition])
                subset = tuple(sorted(rng.sample(slocs, max(3, len(slocs) * 2 // 3))))
                if (start, subset) not in seen:
                    seen.add((start, subset))
                    break
            fields = {"q": list(subset), "start": start, "end": start + WINDOW}
            if combo_index % 2 == 0:
                plan.append(("top_k", {**fields, "k": min(3, len(subset))}))
            else:
                plan.append(("flows", fields))
        plans.append(plan)
    return plans


def _oracle_answers(scenario, plans) -> Dict[int, List[object]]:
    """In-process ground truth for every combo, over the identical table."""
    iupt = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    for batch in _shard_batches(scenario):
        iupt.ingest_batch(batch)
    engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    answers: Dict[int, List[object]] = {}
    for client_index, plan in enumerate(plans):
        expected: List[object] = []
        for op, fields in plan:
            if op == "top_k":
                result = engine.top_k(
                    iupt, fields["q"], fields["k"], fields["start"], fields["end"]
                )
                expected.append(protocol.result_to_wire(result))
            else:
                flows = engine.flows(
                    iupt, fields["q"], fields["start"], fields["end"]
                )
                expected.append({"flows": protocol.flows_to_wire(flows)})
        answers[client_index] = expected
    return answers


# ----------------------------------------------------------------------
# Topology processes
# ----------------------------------------------------------------------
class _Role:
    """One topology role as a child process; READY gives us its port."""

    def __init__(self, role: str, *extra: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.topology",
                role,
                "--presence-capacity",
                str(PRESENCE_CAPACITY),
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        line = self.proc.stdout.readline()
        if not line.startswith("READY "):
            self.proc.kill()
            raise AssertionError(
                f"{role} never became ready: {line!r}\n{self.proc.stderr.read()}"
            )
        _ready, self.host, port = line.split()
        self.port = int(port)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


async def _ingest_stream(host: str, port: int, batches) -> int:
    """Ship the whole stream as binary RPK1 ingest frames; return last seq."""
    last_seq = 0
    async with await ServiceClient.connect(host, port) as client:
        for batch in batches:
            receipt = await client.ingest_batch(batch)  # binary=True default
            assert receipt["records_ingested"] == len(batch)
            last_seq = int(receipt["seq"])
    return last_seq


async def _read_phase(host: str, port: int, plans, warmups) -> dict:
    """Run the deterministic read plan; return timings + every response."""
    clients = [
        await ServiceClient.connect(host, port) for _ in range(len(plans))
    ]
    try:
        # One untimed request per partition: absorbs the router's one-off
        # read-your-writes wait for replica catch-up (and TCP warmup) so the
        # timed window measures steady-state read serving in both phases.
        for op, fields in warmups:
            await clients[0].request(op, **fields)

        histogram = LatencyHistogram()

        async def run_client(client, plan):
            served: List[object] = []
            for _round in range(ROUNDS):
                for op, fields in plan:
                    began = time.perf_counter()
                    served.append(await client.request(op, **fields))
                    histogram.observe(time.perf_counter() - began)
            return served

        began = time.perf_counter()
        all_served = await asyncio.gather(
            *(run_client(c, p) for c, p in zip(clients, plans))
        )
        seconds = time.perf_counter() - began
    finally:
        for client in clients:
            await client.close()
    requests = len(plans) * COMBOS_PER_CLIENT * ROUNDS
    return {
        "served": all_served,
        "requests": requests,
        "seconds": seconds,
        "requests_per_second": requests / seconds,
        "latency_ms": histogram.as_dict(),
    }


def _assert_bit_identical(phase: dict, answers, label: str) -> None:
    for client_index, served in enumerate(phase["served"]):
        expected = answers[client_index]
        for i, response in enumerate(served):
            op = "top_k/flows"
            assert response == expected[i % COMBOS_PER_CLIENT], (
                f"{label}: {op} response {i} of client {client_index} "
                "diverged from the in-process engine"
            )


async def _fetch(host: str, port: int, op: str) -> dict:
    async with await ServiceClient.connect(host, port) as client:
        return await client.request(op)


async def _run_single_server(scenario, plans, warmups, batches) -> dict:
    with tempfile.TemporaryDirectory() as data_dir:
        primary = _Role("primary", "--data-dir", data_dir)
        try:
            await _ingest_stream(primary.host, primary.port, batches)
            phase = await _read_phase(primary.host, primary.port, plans, warmups)
            stats = await _fetch(primary.host, primary.port, "stats")
            phase["cache_hit_rate"] = stats["cache"]["hit_rate"]
            return phase
        finally:
            primary.stop()


async def _run_replicated(scenario, plans, warmups, batches) -> dict:
    with tempfile.TemporaryDirectory() as data_dir:
        primary = _Role("primary", "--data-dir", data_dir)
        replicas, router = [], None
        try:
            primary_at = f"{primary.host}:{primary.port}"
            replicas = [
                _Role("replica", "--primary", primary_at, "--name", f"r{i}")
                for i in range(NUM_REPLICAS)
            ]
            router = _Role(
                "router",
                "--primary",
                primary_at,
                "--replicas",
                ",".join(f"{r.host}:{r.port}" for r in replicas),
            )

            last_seq = await _ingest_stream(router.host, router.port, batches)
            phase = await _read_phase(router.host, router.port, plans, warmups)

            router_status = await _fetch(router.host, router.port, "stats")
            primary_stats = await _fetch(primary.host, primary.port, "stats")
            primary_repl = await _fetch(
                primary.host, primary.port, "replica_status"
            )
            replica_stats = [
                await _fetch(r.host, r.port, "stats") for r in replicas
            ]

            router_counters = router_status["router"]
            phase["reads_by_backend"] = router_counters["reads_by_backend"]
            phase["stale_waits"] = router_counters["stale_waits"]
            phase["primary_fallbacks"] = router_counters["primary_fallbacks"]
            phase["replica_cache_hit_rates"] = [
                s["cache"]["hit_rate"] for s in replica_stats
            ]
            phase["replication"] = {
                "last_seq": last_seq,
                "wal_pushes": primary_stats["pushes"]["wal"],
                "followers": primary_repl["followers"],
                "wal": primary_repl["wal"],
            }

            # The replicated path must actually be doing what the report
            # claims: the primary shipped binary WAL frames to both
            # followers, the router spread partitioned reads across both
            # replicas, and no read fell back to the primary.
            assert phase["replication"]["wal_pushes"] > 0
            assert len(phase["replication"]["followers"]) == NUM_REPLICAS
            assert phase["primary_fallbacks"] == 0
            spread = phase["reads_by_backend"]
            assert spread[1] > 0 and spread[2] > 0, spread
            return phase
        finally:
            if router is not None:
                router.stop()
            for replica in replicas:
                replica.stop()
            primary.stop()


def test_replication_read_scaleout_report():
    scenario = _scenario()
    batches = _shard_batches(scenario)
    plans = _client_plans(scenario)
    answers = _oracle_answers(scenario, plans)
    # One warmup combo per partition, identical in both phases.
    warmups = [plans[0][0], plans[0][1]]

    single = asyncio.run(_run_single_server(scenario, plans, warmups, batches))
    routed = asyncio.run(_run_replicated(scenario, plans, warmups, batches))

    # Equal correctness: both topologies answered every request with the
    # exact in-process result, so the throughput comparison is like-for-like.
    _assert_bit_identical(single, answers, "single-server")
    _assert_bit_identical(routed, answers, "routed")

    speedup = routed["requests_per_second"] / single["requests_per_second"]
    payload = {
        "benchmark": "replication-read-scaleout",
        "workload": {
            "scenario": scenario.name,
            "records": len(scenario.iupt),
            "ingest_batches": len(batches),
            "clients": NUM_CLIENTS,
            "combos_per_client": COMBOS_PER_CLIENT,
            "rounds": ROUNDS,
            "replicas": NUM_REPLICAS,
            "shard_seconds": SHARD_SECONDS,
            "presence_capacity_per_node": PRESENCE_CAPACITY,
        },
        "single_server": {
            key: (round(value, 4) if isinstance(value, float) else value)
            for key, value in single.items()
            if key != "served"
        },
        "routed": {
            key: (round(value, 4) if isinstance(value, float) else value)
            for key, value in routed.items()
            if key != "served"
        },
        "speedup": round(speedup, 2),
        "bit_identical": True,
        "codec": codec_info(),
    }

    if os.environ.get("REPRO_BENCH_STRICT") != "1":
        # Correctness runs (the tier-1 suite collects this file) must not
        # rewrite the committed report with machine-local timings.
        return

    # The scale-out claim of the PR: two replicas behind the partition
    # router sustain at least twice the single server's read throughput at
    # bit-identical output.
    assert speedup >= 2.0, payload

    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}:")
    print(
        json.dumps(
            {
                "single_rps": payload["single_server"]["requests_per_second"],
                "routed_rps": payload["routed"]["requests_per_second"],
                "speedup": payload["speedup"],
                "reads_by_backend": payload["routed"]["reads_by_backend"],
            },
            indent=2,
        )
    )
