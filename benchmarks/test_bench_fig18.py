"""Benchmark regenerating Figure 18: effectiveness vs. k on synthetic data (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_fig18(benchmark, synth_scenario, synth_setting, time_method):
    time_method(benchmark, "fig18", synth_scenario, synth_setting, "bf")
