"""Continuous-query benchmark: incremental refresh vs. invalidate-and-recompute.

Streams the tail of a university-floor report stream into both IUPT storage
backends while standing TkPLQ queries are registered, and compares the two
refresh strategies of the continuous-query subsystem on a *mostly-disjoint*
batch stream (most standing windows are historical; each batch only touches
the live edge):

* ``incremental`` — the default delta maintenance: a batch whose shards do
  not overlap a standing window skips that refresh outright (sharded store),
  and where the window token did churn, untouched objects' cached presences
  are re-keyed to the new token instead of recomputed;
* ``recompute`` — the pre-continuous behaviour a polling client gets: every
  standing query is re-answered through the (invalidated) cache after every
  batch.

Results are recorded in ``BENCH_continuous.json`` at the repository root
(uploaded as a CI artifact alongside the engine and storage reports).  Both
strategies must produce identical final results unconditionally; the timing
acceptance property (incremental strictly cheaper than recompute) is asserted
when the dedicated CI job opts in via ``REPRO_BENCH_STRICT=1``.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List

from repro import IUPT, QueryEngine
from repro.codec import codec_info
from repro.experiments.runner import split_into_time_batches
from repro.synth import build_real_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_continuous.json"

NUM_OBJECTS = 12
DURATION_SECONDS = 480.0
SHARD_SECONDS = 60.0
STREAM_BATCH_SECONDS = 30.0
HISTORY_SECONDS = 240.0  # ingested up front; the rest streams in

#: Standing windows: three historical (disjoint from the stream) + the live
#: edge the stream keeps landing in.
STANDING_WINDOWS = [
    (0.0, 60.0),
    (60.0, 120.0),
    (120.0, 180.0),
    (HISTORY_SECONDS, DURATION_SECONDS),
]


def _split_stream(scenario):
    records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    history = [r for r in records if r.timestamp < HISTORY_SECONDS]
    live = [r for r in records if r.timestamp >= HISTORY_SECONDS]
    return history, split_into_time_batches(
        live, HISTORY_SECONDS, STREAM_BATCH_SECONDS
    )


def _make_table(store_kind: str) -> IUPT:
    if store_kind == "sharded":
        return IUPT.sharded(shard_seconds=SHARD_SECONDS)
    return IUPT()


def _run_mode(scenario, store_kind: str, refresh: str):
    """Replay the stream under one refresh strategy; return results + stats."""
    history, batches = _split_stream(scenario)
    iupt = _make_table(store_kind)
    iupt.ingest_batch(history)
    engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    continuous = engine.continuous(iupt, refresh=refresh)
    slocs = scenario.slocation_ids()
    subscriptions = [
        continuous.register_top_k(slocs, k=3, start=start, end=end)
        for start, end in STANDING_WINDOWS
    ]
    for batch in batches:
        iupt.ingest_batch(batch)
    summary = continuous.describe()
    finals = [
        (sub.top_k_ids(), sorted(sub.result.flows.items())) for sub in subscriptions
    ]
    continuous.close()
    return finals, summary


def test_continuous_refresh_report():
    scenario = build_real_scenario(
        num_users=NUM_OBJECTS, duration_seconds=DURATION_SECONDS, seed=29
    )

    payload: Dict[str, object] = {
        "benchmark": "continuous-refresh-strategies",
        "codec": codec_info(),
        "workload": {
            "scenario": scenario.name,
            "records": len(scenario.iupt),
            "objects": NUM_OBJECTS,
            "duration_seconds": DURATION_SECONDS,
            "history_seconds": HISTORY_SECONDS,
            "stream_batch_seconds": STREAM_BATCH_SECONDS,
            "shard_seconds": SHARD_SECONDS,
            "standing_windows": STANDING_WINDOWS,
        },
        "stores": {},
    }

    for store_kind in ("sharded", "flat"):
        incremental_finals, incremental = _run_mode(
            scenario, store_kind, "incremental"
        )
        recompute_finals, recompute = _run_mode(scenario, store_kind, "recompute")

        # Correctness gate before any speed claim: both strategies end on
        # bit-identical standing results (rankings AND flow values).
        assert incremental_finals == recompute_finals

        # The delta maintenance must actually have engaged.
        if store_kind == "sharded":
            assert incremental["skipped"] > 0, (
                "a mostly-disjoint stream must skip historical-window "
                "refreshes on the sharded store"
            )
            assert incremental["refreshes"] < recompute["refreshes"]
        else:
            # The flat store's whole-table token churns on every batch, so
            # nothing skips — the win comes from re-keying untouched objects
            # instead of recomputing them.
            assert incremental["objects_rekeyed"] > 0
            assert (
                incremental["objects_recomputed"]
                < recompute["objects_recomputed"]
            )
        assert (
            incremental["objects_recomputed"] <= recompute["objects_recomputed"]
        )

        speedup = (
            recompute["elapsed_seconds"] / incremental["elapsed_seconds"]
            if incremental["elapsed_seconds"]
            else float("inf")
        )
        if os.environ.get("REPRO_BENCH_STRICT") == "1":
            assert speedup > 1.2, (
                f"incremental refresh should beat invalidate-and-recompute "
                f"on the {store_kind} store; got {speedup:.2f}x "
                f"({recompute['elapsed_seconds']:.4f}s vs "
                f"{incremental['elapsed_seconds']:.4f}s)"
            )

        payload["stores"][store_kind] = {
            "incremental": incremental,
            "recompute": recompute,
            "refresh_speedup": round(speedup, 2),
        }

    if os.environ.get("REPRO_BENCH_STRICT") != "1":
        # Correctness runs (the tier-1 suite collects this file) must not
        # rewrite the committed report with machine-local timings.
        return

    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}:")
    print(
        json.dumps(
            {
                kind: report["refresh_speedup"]
                for kind, report in payload["stores"].items()
            },
            indent=2,
        )
    )
