"""Engine throughput benchmark: sequential vs. batched vs. parallel.

Answers the same stream of overlapping TkPLQ queries four ways and records
queries/second for each strategy in ``BENCH_engine.json`` at the repository
root, so the performance trajectory of the execution-engine layer is tracked
across commits (the CI smoke-benchmark job uploads the file as an artifact):

* ``sequential`` — one fresh, uncached engine per query (the pre-engine
  behaviour of independent ``top_k`` calls);
* ``warm_store`` — one long-lived engine answering the stream twice; the
  second pass is measured (cross-query presence-store hits);
* ``batched`` — one pass through the :class:`~repro.engine.batch.BatchPlanner`;
* ``parallel_batched`` — the batched pass with the thread executor fanning
  per-object work out.

The benchmark also asserts the acceptance property of the engine refactor:
batched evaluation of the overlapping stream is measurably faster than the
independent sequential calls, while producing identical rankings.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict, List

from repro import EngineConfig, QueryEngine
from repro.codec import codec_info
from repro.experiments.runner import overlapping_queries
from repro.synth import build_real_scenario, build_synthetic_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_engine.json"

NUM_QUERIES = 8
NUM_OBJECTS = 10
DURATION_SECONDS = 240.0


def _engine(scenario, config=None) -> QueryEngine:
    return QueryEngine(scenario.system.graph, scenario.system.matrix, config=config)


def test_engine_throughput_report():
    # The university-floor scenario: unlike the synthetic grid builder (whose
    # default flows are currently all zero, making ranking-equality checks
    # vacuous), it produces non-trivial flows, so agreement between the
    # strategies below actually validates the shared-work computation.
    scenario = build_real_scenario(
        num_users=NUM_OBJECTS, duration_seconds=DURATION_SECONDS, seed=29
    )
    queries = overlapping_queries(
        scenario, count=NUM_QUERIES, k=3, q_fraction=0.6, seed=200
    )

    timings: Dict[str, float] = {}
    rankings: Dict[str, List[List[int]]] = {}

    # Sequential: a fresh cold engine per query — the pre-engine baseline of
    # eight independent top_k calls.
    began = time.perf_counter()
    rankings["sequential"] = [
        _engine(scenario, EngineConfig.uncached())
        .search(scenario.iupt, query, "nested-loop")
        .top_k_ids()
        for query in queries
    ]
    timings["sequential"] = time.perf_counter() - began

    # Warm store: one engine, stream answered twice, second pass measured.
    warm = _engine(scenario)
    for query in queries:
        warm.search(scenario.iupt, query, "nested-loop")
    began = time.perf_counter()
    rankings["warm_store"] = [
        warm.search(scenario.iupt, query, "nested-loop").top_k_ids()
        for query in queries
    ]
    timings["warm_store"] = time.perf_counter() - began
    warm_cache = warm.cache_stats()

    # Batched: one pass sharing per-object work across the whole stream.
    batched = _engine(scenario)
    began = time.perf_counter()
    report = batched.batch(scenario.iupt, queries)
    timings["batched"] = time.perf_counter() - began
    rankings["batched"] = report.rankings()

    # Parallel batched: the same pass with thread fan-out.
    with _engine(
        scenario, EngineConfig(executor="thread", max_workers=4)
    ) as parallel:
        began = time.perf_counter()
        parallel_report = parallel.batch(scenario.iupt, queries)
        timings["parallel_batched"] = time.perf_counter() - began
    rankings["parallel_batched"] = parallel_report.rankings()

    # Every strategy must agree before any speed claim counts — and the
    # workload must produce real flows, otherwise agreement is vacuous.
    assert (
        rankings["sequential"]
        == rankings["warm_store"]
        == rankings["batched"]
        == rankings["parallel_batched"]
    )
    assert any(
        entry.flow > 0.0 for result in report.results for entry in result.ranking
    ), "benchmark workload produced only zero flows; equality checks are vacuous"

    # The acceptance property: batching a stream of overlapping queries beats
    # running them independently (typically 4-8x measured; the shared work is
    # ~NUM_QUERIES-fold).  A wall-clock ratio is only asserted when the
    # dedicated smoke-benchmark CI job opts in via REPRO_BENCH_STRICT=1 —
    # the tier-1 suite also collects this file, and a correctness gate must
    # not fail on a timing race on loaded hosts.
    speedup_batched = timings["sequential"] / timings["batched"]
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup_batched > 1.3, (
            f"batched evaluation should beat sequential; got {speedup_batched:.2f}x "
            f"({timings['sequential']:.3f}s vs {timings['batched']:.3f}s)"
        )

    if os.environ.get("REPRO_BENCH_STRICT") != "1":
        # Correctness runs (the tier-1 suite collects this file) must not
        # rewrite the committed report with machine-local timings; only the
        # opted-in smoke-benchmark run records numbers.
        return

    payload = {
        "benchmark": "engine-throughput",
        "codec": codec_info(),
        "workload": {
            "scenario": scenario.name,
            "records": len(scenario.iupt),
            "objects": NUM_OBJECTS,
            "duration_seconds": DURATION_SECONDS,
            "queries": NUM_QUERIES,
            "query_kind": "overlapping TkPLQ, shared window",
        },
        "seconds": {name: round(value, 4) for name, value in timings.items()},
        "queries_per_second": {
            name: round(NUM_QUERIES / value, 2) for name, value in timings.items()
        },
        "speedup_vs_sequential": {
            name: round(timings["sequential"] / value, 2)
            for name, value in timings.items()
        },
        "warm_store_cache": warm_cache,
        "rankings_equal": True,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}:")
    print(json.dumps(payload["queries_per_second"], indent=2))


def test_engine_throughput_synthetic_sharded():
    """The multi-floor synthetic grid on the sharded store, batched vs. sequential.

    Historically the synthetic grid builder produced all-zero flows, making
    ranking-equality assertions vacuous (see ROADMAP); now that it yields
    real flows, the engine acceptance property — batched evaluation beats
    independent sequential calls with identical rankings — is also asserted
    on a multi-floor, sharded-store workload.  Runs after the real-scenario
    benchmark and merges its section into the same ``BENCH_engine.json``.
    """
    scenario = build_synthetic_scenario(
        num_objects=10,
        floors=2,
        room_rows=1,
        rooms_per_row=3,
        duration_seconds=240.0,
        seed=17,
        store_kind="sharded",
        shard_seconds=60.0,
    )
    queries = overlapping_queries(
        scenario, count=6, k=3, q_fraction=0.6, seed=120
    )

    began = time.perf_counter()
    sequential_rankings = [
        _engine(scenario, EngineConfig.uncached())
        .search(scenario.iupt, query, "nested-loop")
        .top_k_ids()
        for query in queries
    ]
    sequential_s = time.perf_counter() - began

    batched = _engine(scenario)
    began = time.perf_counter()
    report = batched.batch(scenario.iupt, queries)
    batched_s = time.perf_counter() - began

    assert sequential_rankings == report.rankings()
    assert any(
        entry.flow > 0.0 for result in report.results for entry in result.ranking
    ), "synthetic grid produced only zero flows again; see the ROADMAP regression"

    speedup = sequential_s / batched_s
    if os.environ.get("REPRO_BENCH_STRICT") != "1":
        return
    assert speedup > 1.3, (
        f"batched evaluation should beat sequential on the synthetic sharded "
        f"workload; got {speedup:.2f}x ({sequential_s:.3f}s vs {batched_s:.3f}s)"
    )

    payload = json.loads(REPORT_PATH.read_text()) if REPORT_PATH.exists() else {}
    payload["synthetic_sharded"] = {
        "workload": {
            "scenario": scenario.name,
            "records": len(scenario.iupt),
            "objects": 10,
            "floors": 2,
            "store": "sharded",
            "shard_seconds": 60.0,
            "queries": len(queries),
        },
        "seconds": {
            "sequential": round(sequential_s, 4),
            "batched": round(batched_s, 4),
        },
        "speedup_batched_vs_sequential": round(speedup, 2),
        "rankings_equal": True,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nmerged synthetic_sharded into {REPORT_PATH}: {speedup:.2f}x")
