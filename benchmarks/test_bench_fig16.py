"""Benchmark regenerating Figure 16: effectiveness vs. positioning error mu (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_fig16(benchmark, synth_scenario, synth_setting, time_method):
    time_method(benchmark, "fig16", synth_scenario, synth_setting, "bf")
