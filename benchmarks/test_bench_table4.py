"""Benchmark regenerating Table 4: all methods at the default real-data setting (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_table4(benchmark, real_scenario, real_setting, time_method):
    time_method(benchmark, "table4", real_scenario, real_setting, "bf")
