"""Shared benchmark fixtures and helpers.

Every benchmark file corresponds to one table or figure of the paper (see
DESIGN.md §4).  Each benchmark:

* regenerates the experiment's result rows once (at "small" scale) and
  attaches them to ``benchmark.extra_info["rows"]`` so the numbers appear in
  the pytest-benchmark report / JSON output, and
* times a representative query of that experiment (the Best-First algorithm
  on the default setting unless the experiment targets another method), using
  a single round to keep the full suite runnable in minutes.

Paper-scale runs are available through ``python -m repro.experiments <name>
--scale paper`` and are intentionally not part of the automated benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import pytest

from repro.experiments import (
    QuerySetting,
    get_real_scenario,
    get_synth_scenario,
    real_scale,
    run_experiment,
    synth_scale,
)
from repro.experiments.runner import single_query_outcome


@pytest.fixture(scope="session")
def real_scenario():
    return get_real_scenario("small")


@pytest.fixture(scope="session")
def synth_scenario():
    return get_synth_scenario("small")


@pytest.fixture(scope="session")
def synth_rfid_scenario():
    return get_synth_scenario("small", with_rfid=True)


@pytest.fixture(scope="session")
def real_setting() -> QuerySetting:
    knobs = real_scale("small")
    return QuerySetting(
        k=3,
        q_fraction=0.6,
        delta_seconds=knobs.default_delta_seconds,
        repeats=1,
        mc_rounds=knobs.mc_rounds,
    )


@pytest.fixture(scope="session")
def synth_setting() -> QuerySetting:
    knobs = synth_scale("small")
    return QuerySetting(
        k=5,
        q_fraction=0.5,
        delta_seconds=knobs.default_delta_seconds,
        repeats=1,
        mc_rounds=knobs.mc_rounds,
        sc_rho=0.2,
    )


@pytest.fixture(scope="session")
def run_and_attach() -> Callable:
    """Fixture returning a helper that attaches experiment rows and times a callable.

    Regenerating every experiment's full result table inside the benchmark run
    multiplies its duration by roughly an order of magnitude, so the full
    regeneration is opt-in: set ``REPRO_BENCH_FULL=1`` (or run
    ``python -m repro.experiments <name>``) to obtain the complete rows; the
    default benchmark run only times the representative query of each
    experiment.
    """
    import os

    full = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")

    def _run(benchmark, experiment_name: str, timed: Callable[[], object]) -> None:
        benchmark.extra_info["experiment"] = experiment_name
        if full:
            rows: List[Dict[str, object]] = run_experiment(experiment_name, scale="small")
            benchmark.extra_info["rows"] = rows
        else:
            benchmark.extra_info["rows"] = (
                f"set REPRO_BENCH_FULL=1 or run `python -m repro.experiments "
                f"{experiment_name}` for the full result table"
            )
        benchmark.pedantic(timed, rounds=1, iterations=1, warmup_rounds=0)

    return _run


@pytest.fixture(scope="session")
def time_method(run_and_attach) -> Callable:
    """Fixture returning the common pattern: attach rows, time one representative query."""

    def _time(benchmark, experiment_name: str, scenario, setting, method: str) -> None:
        run_and_attach(
            benchmark,
            experiment_name,
            lambda: single_query_outcome(scenario, method, setting),
        )

    return _time
