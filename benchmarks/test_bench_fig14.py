"""Benchmark regenerating Figure 14: efficiency vs. positioning period T and error mu (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_fig14(benchmark, synth_scenario, synth_setting, time_method):
    time_method(benchmark, "fig14", synth_scenario, synth_setting, "bf")
