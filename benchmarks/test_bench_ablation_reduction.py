"""Ablation benchmark: effect of the data reduction method (paper Section 5.2.1).

Attaches the candidate-path-space shrinkage rows of ``ablation_reduction`` and
times the reduction pass itself (all objects of the default real-data window)
under the full configuration.
"""

from repro.core import DataReducer, DataReductionConfig
from repro.experiments import real_scale


def test_bench_ablation_reduction(benchmark, real_scenario, run_and_attach):
    scenario = real_scenario
    knobs = real_scale("small")
    start, end = scenario.query_interval(knobs.default_delta_seconds, seed=3)
    sequences = scenario.iupt.sequences_in(start, end)
    reducer = DataReducer(
        scenario.system.graph, scenario.system.matrix, DataReductionConfig.enabled()
    )
    query_set = set(scenario.slocation_ids())

    def reduce_all():
        return [reducer.reduce(sequence, query_set) for sequence in sequences.values()]

    run_and_attach(benchmark, "ablation_reduction", reduce_all)


def test_bench_reduction_disabled_path_construction(benchmark, real_scenario):
    """Time path construction on un-reduced sequences for direct comparison."""
    from repro.core.flow import FlowComputer

    scenario = real_scenario
    knobs = real_scale("small")
    start, end = scenario.query_interval(knobs.default_delta_seconds, seed=3)
    sequences = scenario.iupt.sequences_in(start, end)
    computer = FlowComputer(
        scenario.system.graph, scenario.system.matrix, DataReductionConfig.disabled()
    )

    def construct_all():
        return [
            computer.presence_computation(sequence) for sequence in sequences.values()
        ]

    benchmark.pedantic(construct_all, rounds=1, iterations=1, warmup_rounds=0)
