"""Query-service benchmark: concurrent clients over the wire vs. the engine.

Starts one :class:`~repro.service.server.QueryService` over a synthetic
multi-floor scenario on the sharded store and drives it with **11 concurrent
client connections**:

* **8 query clients**, each issuing a deterministic mixed stream of ``top_k``
  and ``flows`` requests over overlapping windows of the preloaded history —
  the multi-tenant read traffic the service's worker pool and the engine's
  cross-query presence store exist for;
* **2 subscriber clients** holding standing subscriptions (one top-k, one
  flow set) over the live window;
* **1 loader client** streaming the live tail in through ``ingest_batch``,
  which turns into push frames on the subscribers' connections.

Correctness is asserted unconditionally and *bit-identically*: every queried
response must equal ``result_to_wire`` of a direct in-process
:class:`~repro.engine.runtime.QueryEngine` call over the same table, and the
full push sequence each subscriber received must equal the refresh sequence
an in-process :class:`~repro.engine.continuous.ContinuousQueryEngine`
produces when the identical batches are replayed.  (JSON round-trips IEEE-754
doubles exactly, so "bit-identical" is meant literally.)

Sustained throughput and client-observed latency percentiles are recorded in
``BENCH_service.json`` at the repository root when the dedicated CI job opts
in via ``REPRO_BENCH_STRICT=1``; correctness-only runs (the tier-1 suite
collects this file) do not rewrite the committed report.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import random
import time
from typing import List, Tuple

from repro import IUPT, QueryEngine, ServiceClient, QueryService
from repro.codec import codec_info
from repro.service import protocol
from repro.service.metrics import LatencyHistogram
from repro.synth import build_synthetic_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_service.json"

NUM_QUERY_CLIENTS = 8
REQUESTS_PER_CLIENT = 6
NUM_SUBSCRIBERS = 2
SHARD_SECONDS = 60.0
DURATION = 240.0
HISTORY = 120.0


def _scenario():
    return build_synthetic_scenario(
        num_objects=10,
        floors=2,
        room_rows=1,
        rooms_per_row=3,
        duration_seconds=DURATION,
        seed=17,
        store_kind="sharded",
        shard_seconds=SHARD_SECONDS,
    )


def _split_stream(scenario):
    records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    history = [r for r in records if r.timestamp < HISTORY]
    live = [r for r in records if r.timestamp >= HISTORY]
    # Shard-sized live batches, replayed identically over the wire and in
    # the in-process differential oracle.
    batches: List[List] = []
    boundary = HISTORY + SHARD_SECONDS
    current: List = []
    for record in live:
        while record.timestamp >= boundary:
            batches.append(current)
            current = []
            boundary += SHARD_SECONDS
        current.append(record)
    if current:
        batches.append(current)
    return history, [batch for batch in batches if batch]


def _client_requests(scenario) -> List[List[Tuple[str, dict]]]:
    """The deterministic mixed request stream of each query client."""
    slocs = scenario.slocation_ids()
    plans: List[List[Tuple[str, dict]]] = []
    for client_index in range(NUM_QUERY_CLIENTS):
        rng = random.Random(1000 + client_index)
        requests: List[Tuple[str, dict]] = []
        for request_index in range(REQUESTS_PER_CLIENT):
            subset = sorted(rng.sample(slocs, max(3, len(slocs) * 2 // 3)))
            start = float(rng.choice((0.0, 20.0, 40.0)))
            end = float(rng.choice((80.0, 100.0, HISTORY)))
            if (client_index + request_index) % 2 == 0:
                requests.append(
                    (
                        "top_k",
                        {
                            "q": subset,
                            "k": min(3, len(subset)),
                            "start": start,
                            "end": end,
                        },
                    )
                )
            else:
                requests.append(
                    ("flows", {"q": subset, "start": start, "end": end})
                )
        plans.append(requests)
    return plans


def _direct_wire_answer(engine: QueryEngine, iupt: IUPT, op: str, fields: dict):
    """What the service *must* return for one request, computed in-process."""
    if op == "top_k":
        result = engine.top_k(
            iupt, fields["q"], fields["k"], fields["start"], fields["end"]
        )
        return protocol.result_to_wire(result)
    flows = engine.flows(iupt, fields["q"], fields["start"], fields["end"])
    return {"flows": protocol.flows_to_wire(flows)}


async def _run_benchmark(scenario):
    history, live_batches = _split_stream(scenario)
    slocs = scenario.slocation_ids()

    iupt = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    iupt.ingest_batch(history)
    engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    service = QueryService(engine, iupt, query_workers=4)
    host, port = await service.start()

    plans = _client_requests(scenario)
    histogram = LatencyHistogram()

    # ------------------------------------------------------------------
    # Phase 1: 8 concurrent query clients over the static history.
    # ------------------------------------------------------------------
    async def run_client(plan: List[Tuple[str, dict]]) -> List[object]:
        results: List[object] = []
        async with await ServiceClient.connect(host, port) as client:
            for op, fields in plan:
                began = time.perf_counter()
                results.append(await client.request(op, **fields))
                histogram.observe(time.perf_counter() - began)
        return results

    began = time.perf_counter()
    all_results = await asyncio.gather(*(run_client(plan) for plan in plans))
    query_seconds = time.perf_counter() - began
    total_requests = NUM_QUERY_CLIENTS * REQUESTS_PER_CLIENT

    # Bit-identical gate: every served response equals the direct call.
    reference = QueryEngine(scenario.system.graph, scenario.system.matrix)
    for plan, results in zip(plans, all_results):
        for (op, fields), served in zip(plan, results):
            expected = _direct_wire_answer(reference, iupt, op, fields)
            assert served == expected, f"wire {op} response diverged from engine"

    # ------------------------------------------------------------------
    # Phase 2: subscribers receive pushes caused by the loader's stream.
    # ------------------------------------------------------------------
    # Differential oracle first: replay the identical stream in-process and
    # record the refresh sequence the on_update hook produces — that tells
    # us exactly how many push frames the wire subscribers must receive.
    oracle_iupt = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    oracle_iupt.ingest_batch(history)
    oracle_engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
    oracle = oracle_engine.continuous(oracle_iupt)
    expected_topk: List[object] = []
    expected_flows: List[object] = []
    oracle.register_top_k(
        slocs, 3, HISTORY, DURATION,
        on_update=lambda s, r: expected_topk.append(protocol.result_to_wire(r)),
    )
    oracle.register_flows(
        slocs, HISTORY, DURATION,
        on_update=lambda s, r: expected_flows.append(
            {"flows": protocol.flows_to_wire(r)}
        ),
    )
    for batch in live_batches:
        oracle_iupt.ingest_batch(batch)
    oracle.close()
    assert len(expected_topk) > 0 and len(expected_flows) > 0

    topk_subscriber = await ServiceClient.connect(host, port)
    flows_subscriber = await ServiceClient.connect(host, port)
    loader = await ServiceClient.connect(host, port)

    topk_sub = await topk_subscriber.subscribe_top_k(slocs, 3, HISTORY, DURATION)
    flows_sub = await flows_subscriber.subscribe_flows(slocs, HISTORY, DURATION)

    began = time.perf_counter()
    for batch in live_batches:
        await loader.ingest_batch(batch)
    # Collect the pushes the stream caused (subscribers issue NO requests).
    topk_pushes = [
        await topk_sub.next_update(timeout=30.0) for _ in expected_topk
    ]
    flows_pushes = [
        await flows_sub.next_update(timeout=30.0) for _ in expected_flows
    ]
    stream_seconds = time.perf_counter() - began

    assert [p["result"] for p in topk_pushes] == expected_topk
    assert [p["seq"] for p in topk_pushes] == list(range(1, len(topk_pushes) + 1))
    assert [p["result"] for p in flows_pushes] == expected_flows
    assert topk_sub.updates.empty() and flows_sub.updates.empty()

    # The push traffic must carry real signal, not all-zero flows.
    assert any(
        flow > 0.0 for _s, flow in topk_pushes[-1]["result"]["ranking"]
    ), "benchmark stream produced only zero flows; push equality is vacuous"

    stats = await loader.stats()
    for client in (topk_subscriber, flows_subscriber, loader):
        await client.close()
    await service.stop()

    return {
        "workload": {
            "scenario": scenario.name,
            "records": len(scenario.iupt),
            "history_records": len(history),
            "live_batches": len(live_batches),
            "query_clients": NUM_QUERY_CLIENTS,
            "subscriber_clients": NUM_SUBSCRIBERS,
            "loader_clients": 1,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "shard_seconds": SHARD_SECONDS,
        },
        "query_phase": {
            "requests": total_requests,
            "seconds": round(query_seconds, 4),
            "requests_per_second": round(total_requests / query_seconds, 2),
            "latency_ms": histogram.as_dict(),
        },
        "stream_phase": {
            "batches": len(live_batches),
            "seconds": round(stream_seconds, 4),
            "pushes_topk": len(topk_pushes),
            "pushes_flows": len(flows_pushes),
        },
        "server": {
            "requests": stats["requests"],
            "pushes": stats["pushes"],
            "cache_hit_rate": stats["cache"]["hit_rate"],
            "admission": {
                "admitted": stats["admission"]["admitted"],
                "shed_total": stats["admission"]["shed_total"],
                "peak_inflight": stats["admission"]["peak_inflight"],
            },
        },
        "bit_identical": True,
    }


def test_service_concurrent_clients_report():
    scenario = _scenario()
    payload = asyncio.run(_run_benchmark(scenario))
    payload["benchmark"] = "service-concurrent-clients"
    payload["codec"] = codec_info()

    if os.environ.get("REPRO_BENCH_STRICT") != "1":
        # Correctness runs (the tier-1 suite collects this file) must not
        # rewrite the committed report with machine-local timings.
        return

    # The service must actually sustain concurrent load: nothing was shed
    # at the default admission limits, and the pool saw real concurrency.
    assert payload["server"]["admission"]["shed_total"] == 0
    assert payload["server"]["admission"]["peak_inflight"] > 1

    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}:")
    print(
        json.dumps(
            {
                "requests_per_second": payload["query_phase"][
                    "requests_per_second"
                ],
                "latency_p95_ms": payload["query_phase"]["latency_ms"]["p95_ms"],
                "pushes": payload["stream_phase"]["pushes_topk"]
                + payload["stream_phase"]["pushes_flows"],
            },
            indent=2,
        )
    )
