"""Benchmark regenerating Figure 11: effectiveness vs. k on real data (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_fig11(benchmark, real_scenario, real_setting, time_method):
    time_method(benchmark, "fig11", real_scenario, real_setting, "bf")
