"""Durable-store benchmark: ingest throughput vs fsync policy, recovery cost.

Streams the same deterministic report traffic through the durable store
under each fsync policy (plus the volatile sharded store as the zero-cost
baseline) and then measures **cold recovery** — constructing a
:class:`~repro.storage.durable.DurableRecordStore` over the directory a
previous process left behind — under three snapshot regimes:

* ``replay`` — no snapshots at all: recovery re-applies every WAL frame;
* ``cadence`` — automatic checkpoint every N batches: recovery loads the
  snapshots and replays only the post-snapshot tail;
* ``checkpointed`` — an explicit final checkpoint: recovery is a pure
  snapshot load, zero frames replayed.

Recovered state is asserted **bit-identical** to the volatile oracle in all
variants unconditionally; the timing acceptance bounds only apply when the
dedicated CI job opts in via ``REPRO_BENCH_STRICT=1``.  Results land in
``BENCH_durable.json`` at the repository root (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time
from typing import Dict, List

from repro import IUPT, SampleSet
from repro.codec import codec_info
from repro.data.records import PositioningRecord
from repro.storage import DurabilityConfig, DurableRecordStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_durable.json"

NUM_OBJECTS = 20
DURATION_SECONDS = 1200.0
REPORT_PERIOD_SECONDS = 6.0
SHARD_SECONDS = 120.0
STREAM_BATCH_SECONDS = 10.0
SNAPSHOT_CADENCE = 16

FSYNC_POLICIES = ("never", "batch", "always")


def _report_stream() -> List[PositioningRecord]:
    records: List[PositioningRecord] = []
    tick = 0
    timestamp = 0.0
    while timestamp < DURATION_SECONDS:
        for object_id in range(NUM_OBJECTS):
            ploc = (object_id + tick) % 23
            records.append(
                PositioningRecord(
                    object_id,
                    SampleSet.from_pairs([(ploc, 0.6), (ploc + 1, 0.4)]),
                    timestamp + object_id * 0.01,
                )
            )
        tick += 1
        timestamp += REPORT_PERIOD_SECONDS
    return records


def _stream_batches(records: List[PositioningRecord]) -> List[List[PositioningRecord]]:
    batches: List[List[PositioningRecord]] = []
    boundary = STREAM_BATCH_SECONDS
    current: List[PositioningRecord] = []
    for record in records:
        while record.timestamp >= boundary:
            batches.append(current)
            current = []
            boundary += STREAM_BATCH_SECONDS
        current.append(record)
    if current:
        batches.append(current)
    return [batch for batch in batches if batch]


def _ingest_all(table: IUPT, batches) -> float:
    began = time.perf_counter()
    for batch in batches:
        table.ingest_batch(batch)
    return time.perf_counter() - began


def test_durable_throughput_and_recovery_report():
    records = _report_stream()
    batches = _stream_batches(records)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-durable-"))
    try:
        # --- Baseline: the volatile sharded store (no WAL at all).
        oracle = IUPT.sharded(shard_seconds=SHARD_SECONDS)
        volatile_elapsed = _ingest_all(oracle, batches)
        oracle_rows = list(oracle.store.records_in_time_order())

        # --- Ingest throughput per fsync policy.
        ingest: Dict[str, Dict[str, float]] = {
            "sharded_volatile": {
                "elapsed_s": round(volatile_elapsed, 4),
                "records_per_s": round(len(records) / volatile_elapsed),
            }
        }
        for policy in FSYNC_POLICIES:
            table = IUPT.durable(
                workdir / f"fsync-{policy}",
                shard_seconds=SHARD_SECONDS,
                config=DurabilityConfig(fsync=policy),
            )
            elapsed = _ingest_all(table, batches)
            assert list(table.store.records_in_time_order()) == oracle_rows
            table.store.close()
            ingest[policy] = {
                "elapsed_s": round(elapsed, 4),
                "records_per_s": round(len(records) / elapsed),
                "overhead_vs_volatile": round(elapsed / volatile_elapsed, 2),
            }

        # --- Cold recovery per snapshot regime (over the "batch" policy).
        def build(path, cadence, final_checkpoint):
            config = DurabilityConfig(snapshot_every_batches=cadence)
            table = IUPT.durable(path, shard_seconds=SHARD_SECONDS, config=config)
            _ingest_all(table, batches)
            if final_checkpoint:
                table.store.checkpoint()
            table.store.close()

        recovery: Dict[str, Dict[str, object]] = {}
        regimes = (
            ("replay", None, False),
            ("cadence", SNAPSHOT_CADENCE, False),
            ("checkpointed", None, True),
        )
        for name, cadence, final_checkpoint in regimes:
            path = workdir / f"recover-{name}"
            build(path, cadence, final_checkpoint)
            began = time.perf_counter()
            recovered = DurableRecordStore(
                path, config=DurabilityConfig(checkpoint_on_recover=False)
            )
            elapsed = time.perf_counter() - began
            assert list(recovered.records_in_time_order()) == oracle_rows
            assert recovered.shard_versions() == oracle.store.shard_versions()
            report = dict(recovered.recovery_report)
            recovered.close()
            recovery[name] = {
                "elapsed_s": round(elapsed, 4),
                "frames_replayed": report["frames_replayed"],
                "shards_from_snapshot": report["shards_from_snapshot"],
            }
        # Snapshot regimes must actually change the recovery shape.
        assert recovery["replay"]["frames_replayed"] > 0
        assert recovery["replay"]["shards_from_snapshot"] == 0
        assert recovery["checkpointed"]["frames_replayed"] == 0
        assert (
            0
            < recovery["cadence"]["frames_replayed"]
            < recovery["replay"]["frames_replayed"]
        )

        strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
        if strict:
            # fsync="always" pays real synchronous-IO cost; "never" must not
            # end up meaningfully slower than it (generous noise margin).
            assert (
                ingest["never"]["elapsed_s"] <= ingest["always"]["elapsed_s"] * 1.25
            ), (
                f"fsync=never should not be slower than fsync=always: "
                f"{ingest['never']['elapsed_s']}s vs "
                f"{ingest['always']['elapsed_s']}s"
            )
            # Snapshot-only recovery must not cost more than twice a full
            # WAL replay (it is usually much cheaper).
            assert (
                recovery["checkpointed"]["elapsed_s"]
                <= recovery["replay"]["elapsed_s"] * 2.0
            )

        if not strict:
            return

        payload = {
            "benchmark": "durable-wal-and-recovery",
            "codec": codec_info(),
            "workload": {
                "records": len(records),
                "objects": NUM_OBJECTS,
                "duration_seconds": DURATION_SECONDS,
                "stream_batches": len(batches),
                "shard_seconds": SHARD_SECONDS,
                "snapshot_cadence_batches": SNAPSHOT_CADENCE,
            },
            "ingest_by_fsync_policy": ingest,
            "cold_recovery_by_snapshot_regime": recovery,
        }
        REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {REPORT_PATH}:")
        print(json.dumps(payload, indent=2))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

# ----------------------------------------------------------------------
# Paper scale (>=100k records): binary codec vs the JSON WAL baseline
# ----------------------------------------------------------------------
PAPER_NUM_OBJECTS = 100
PAPER_DURATION_SECONDS = 6000.0
PAPER_REPORT_PATH = REPO_ROOT / "BENCH_durable_paper.json"


def _paper_stream() -> List[PositioningRecord]:
    records: List[PositioningRecord] = []
    tick = 0
    timestamp = 0.0
    while timestamp < PAPER_DURATION_SECONDS:
        for object_id in range(PAPER_NUM_OBJECTS):
            ploc = (object_id + tick) % 23
            records.append(
                PositioningRecord(
                    object_id,
                    SampleSet.from_pairs([(ploc, 0.6), (ploc + 1, 0.4)]),
                    timestamp + object_id * 0.01,
                )
            )
        tick += 1
        timestamp += REPORT_PERIOD_SECONDS
    return records


def test_durable_paper_scale_codec_comparison():
    """Paper-scale (>=100k records) binary-vs-JSON WAL ingest and recovery.

    Opt-in via ``REPRO_BENCH_PAPER=1``: streams the paper-scale load through
    the durable store once per codec (``fsync="never"`` so the difference is
    encode/parse cost, not disk sync), checkpoints, and measures cold
    recovery — where the binary codec's lazy packed-snapshot path skips
    per-record parsing entirely.  Recovered state is asserted identical to
    the volatile oracle for both codecs.  Results land in
    ``BENCH_durable_paper.json``.
    """
    import pytest

    if os.environ.get("REPRO_BENCH_PAPER") != "1":
        pytest.skip("paper-scale benchmark: set REPRO_BENCH_PAPER=1")

    records = _paper_stream()
    assert len(records) >= 100_000
    batches = _stream_batches(records)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-durable-paper-"))
    try:
        oracle = IUPT.sharded(shard_seconds=SHARD_SECONDS)
        volatile_elapsed = _ingest_all(oracle, batches)
        oracle_rows = list(oracle.store.records_in_time_order())

        results: Dict[str, Dict[str, object]] = {}
        for codec in ("json", "binary"):
            path = workdir / codec
            table = IUPT.durable(
                path,
                shard_seconds=SHARD_SECONDS,
                config=DurabilityConfig(codec=codec, fsync="never"),
            )
            began = time.perf_counter()
            for batch in batches:
                table.ingest_batch(batch)
            first_answer = table.range_query(0.0, SHARD_SECONDS)
            ingest_to_queryable = time.perf_counter() - began
            assert first_answer
            table.store.checkpoint()
            table.store.close()

            began = time.perf_counter()
            recovered = DurableRecordStore(
                path, config=DurabilityConfig(checkpoint_on_recover=False)
            )
            recovery_elapsed = time.perf_counter() - began
            report = dict(recovered.recovery_report)
            assert list(recovered.records_in_time_order()) == oracle_rows
            recovered.close()

            wal_bytes = sum(
                f.stat().st_size for f in (path / "wal").glob("segment-*.wal")
            )
            snapshot_bytes = sum(
                f.stat().st_size for f in (path / "snapshots").glob("*")
            )
            results[codec] = {
                "ingest_to_queryable_s": round(ingest_to_queryable, 4),
                "ingest_overhead_vs_volatile": round(
                    ingest_to_queryable / volatile_elapsed, 2
                ),
                "cold_recovery_s": round(recovery_elapsed, 4),
                "shards_loaded_lazily": report.get("shards_loaded_lazily", 0),
                "wal_bytes": wal_bytes,
                "snapshot_bytes": snapshot_bytes,
            }

        recovery_speedup = (
            results["json"]["cold_recovery_s"] / results["binary"]["cold_recovery_s"]
        )
        payload = {
            "benchmark": "durable-paper-scale-codec",
            "codec": codec_info(),
            "workload": {
                "records": len(records),
                "objects": PAPER_NUM_OBJECTS,
                "duration_seconds": PAPER_DURATION_SECONDS,
                "stream_batches": len(batches),
                "shard_seconds": SHARD_SECONDS,
            },
            "by_codec": results,
            "cold_recovery_speedup_binary_vs_json": round(recovery_speedup, 2),
        }
        PAPER_REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {PAPER_REPORT_PATH}:")
        print(json.dumps(payload["by_codec"], indent=2))
        assert results["binary"]["shards_loaded_lazily"] > 0
        assert recovery_speedup > 1.0, (
            f"binary cold recovery should beat JSON at paper scale; "
            f"got {recovery_speedup:.2f}x"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
