"""Codec benchmark: the packed binary layout against the JSON baseline.

Measures, at paper scale (>=100k positioning records), the three places the
binary codec claims wins:

* **round trip** — ``encode_batch``/``decode_batch`` against the JSON WAL
  payload path for a whole-table conversion;
* **WAL ingest** — streaming the load through the durable store under
  ``codec="binary"`` vs ``codec="json"`` (``fsync="never"``, so the delta is
  encode cost, not disk sync), with the volatile sharded store as the
  zero-cost baseline;
* **cold recovery** — reopening the checkpointed directory: the binary
  snapshot path hands shards to the store still packed (no per-record
  parsing), the JSON path must parse every record;
* **batched scoring** — the scalar per-query fold against the
  :class:`~repro.codec.kernels.PresenceMatrix` built once per window group
  and reused across queries.

Every timed comparison asserts result equality *before* the numbers count.
Results land in ``BENCH_codec.json`` — or ``BENCH_codec_fallback.json``
when the active backend is the stdlib ``array`` fallback, so the CI job can
upload both legs side by side.  The acceptance bounds apply under
``REPRO_BENCH_STRICT=1``: cold recovery must be >=2x faster than JSON on
*both* backends; the vectorized scoring bound is asserted on the numpy leg
only — the fallback matrix's row sums are plain Python, so only the
amortization of presence lookups across a batch is guaranteed there, not
the kernel itself (which is why ``scoring_kernel="auto"`` resolves to
``scalar`` without numpy).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import struct
import tempfile
import time
from typing import Dict, List

from repro import DataReductionConfig, IUPT, SampleSet
from repro.codec import PresenceMatrix, active_backend, codec_info, decode_batch, encode_batch
from repro.core.query import TkPLQuery
from repro.data.records import PositioningRecord
from repro.engine import EngineConfig, QueryEngine
from repro.engine.batch import score_query_over_entries
from repro.storage import DurabilityConfig, DurableRecordStore
from repro.storage.durable import record_from_payload, record_to_payload
from repro.synth import build_real_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT_NAME = (
    "BENCH_codec.json" if active_backend() == "numpy" else "BENCH_codec_fallback.json"
)
REPORT_PATH = REPO_ROOT / REPORT_NAME

NUM_OBJECTS = 100
DURATION_SECONDS = 6000.0
REPORT_PERIOD_SECONDS = 6.0
SHARD_SECONDS = 300.0
STREAM_BATCH_SECONDS = 30.0

SCORING_USERS = 75
SCORING_DURATION_SECONDS = 3600.0
SCORING_QUERIES = 300


def _report_stream() -> List[PositioningRecord]:
    records: List[PositioningRecord] = []
    tick = 0
    timestamp = 0.0
    while timestamp < DURATION_SECONDS:
        for object_id in range(NUM_OBJECTS):
            ploc = (object_id + tick) % 23
            records.append(
                PositioningRecord(
                    object_id,
                    SampleSet.from_pairs([(ploc, 0.6), (ploc + 1, 0.4)]),
                    timestamp + object_id * 0.01,
                )
            )
        tick += 1
        timestamp += REPORT_PERIOD_SECONDS
    return records


def _stream_batches(records: List[PositioningRecord]) -> List[List[PositioningRecord]]:
    batches: List[List[PositioningRecord]] = []
    boundary = STREAM_BATCH_SECONDS
    current: List[PositioningRecord] = []
    for record in records:
        while record.timestamp >= boundary:
            batches.append(current)
            current = []
            boundary += STREAM_BATCH_SECONDS
        current.append(record)
    if current:
        batches.append(current)
    return [batch for batch in batches if batch]


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def test_codec_paper_scale_report():
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    if not strict:
        # The full paper-scale workload takes minutes; correctness of the
        # codec and kernels is covered by tests/test_codec.py, so plain
        # tier-1 runs skip the timing pass instead of paying for it.
        import pytest

        pytest.skip("paper-scale codec benchmark: set REPRO_BENCH_STRICT=1")
    records = _report_stream()
    assert len(records) >= 100_000
    batches = _stream_batches(records)

    # --- Round trip: packed binary vs the JSON payload path.
    began = time.perf_counter()
    blob = encode_batch(records)
    decoded = decode_batch(blob)
    packed_round_trip = time.perf_counter() - began

    began = time.perf_counter()
    text = json.dumps([record_to_payload(r) for r in records])
    via_json = [record_from_payload(p) for p in json.loads(text)]
    json_round_trip = time.perf_counter() - began

    assert [r.timestamp for r in decoded] == [r.timestamp for r in records]
    assert [r.timestamp for r in via_json] == [r.timestamp for r in records]

    # --- WAL ingest + cold recovery, binary vs JSON.
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-codec-"))
    try:
        oracle = IUPT.sharded(shard_seconds=SHARD_SECONDS)
        began = time.perf_counter()
        for batch in batches:
            oracle.ingest_batch(batch)
        volatile_elapsed = time.perf_counter() - began
        oracle_rows = list(oracle.store.records_in_time_order())

        durability: Dict[str, Dict[str, object]] = {}
        for codec in ("json", "binary"):
            path = workdir / codec
            table = IUPT.durable(
                path,
                shard_seconds=SHARD_SECONDS,
                config=DurabilityConfig(codec=codec, fsync="never"),
            )
            began = time.perf_counter()
            for batch in batches:
                table.ingest_batch(batch)
            ingest_elapsed = time.perf_counter() - began
            table.store.checkpoint()
            table.store.close()

            began = time.perf_counter()
            recovered = DurableRecordStore(
                path, config=DurabilityConfig(checkpoint_on_recover=False)
            )
            recovery_elapsed = time.perf_counter() - began
            report = dict(recovered.recovery_report)
            assert list(recovered.records_in_time_order()) == oracle_rows
            recovered.close()

            durability[codec] = {
                "wal_ingest_s": round(ingest_elapsed, 4),
                "wal_overhead_vs_volatile": round(
                    ingest_elapsed / volatile_elapsed, 2
                ),
                "cold_recovery_s": round(recovery_elapsed, 4),
                "shards_loaded_lazily": report.get("shards_loaded_lazily", 0),
                "wal_bytes": sum(
                    f.stat().st_size for f in (path / "wal").glob("segment-*.wal")
                ),
                "snapshot_bytes": sum(
                    f.stat().st_size for f in (path / "snapshots").glob("*")
                ),
            }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    recovery_speedup = (
        durability["json"]["cold_recovery_s"] / durability["binary"]["cold_recovery_s"]
    )
    ingest_speedup = (
        durability["json"]["wal_ingest_s"] / durability["binary"]["wal_ingest_s"]
    )
    assert durability["binary"]["shards_loaded_lazily"] > 0

    # --- Batched scoring: scalar fold vs the shared presence matrix.
    scenario = build_real_scenario(
        num_users=SCORING_USERS, duration_seconds=SCORING_DURATION_SECONDS, seed=7
    )
    assert len(scenario.iupt) >= 100_000
    slocs = sorted(scenario.slocation_ids())
    engine = QueryEngine(
        scenario.system.graph,
        scenario.system.matrix,
        DataReductionConfig.enabled(),
        config=EngineConfig(scoring_kernel="scalar"),
    )
    pipeline = engine.pipeline
    window = (0.0, SCORING_DURATION_SECONDS)
    ctx = pipeline.context(window, frozenset(slocs))
    sequences = pipeline.fetch.run(ctx, scenario.iupt)
    entries = pipeline.presences(ctx, sequences)
    graph = pipeline.flow_computer.graph
    parent_cells = {sloc: graph.parent_cell(sloc) for sloc in slocs}

    import random

    rng = random.Random(13)
    queries = [
        TkPLQuery(
            tuple(sorted(rng.sample(slocs, rng.randint(3, len(slocs))))),
            3,
            *window,
        )
        for _ in range(SCORING_QUERIES)
    ]

    began = time.perf_counter()
    scalar_results = [
        score_query_over_entries(q, entries, parent_cells, len(sequences))
        for q in queries
    ]
    scalar_elapsed = time.perf_counter() - began

    began = time.perf_counter()
    matrix = PresenceMatrix(entries, slocs, parent_cells)
    vector_results = [
        score_query_over_entries(
            q,
            entries,
            parent_cells,
            len(sequences),
            kernel="vectorized",
            matrix=matrix,
        )
        for q in queries
    ]
    vector_elapsed = time.perf_counter() - began

    for scalar, vector in zip(scalar_results, vector_results):
        assert scalar.top_k_ids() == vector.top_k_ids()
        assert set(scalar.flows) == set(vector.flows)
        for sloc in scalar.flows:
            assert _bits(scalar.flows[sloc]) == _bits(vector.flows[sloc])

    scoring_speedup = scalar_elapsed / vector_elapsed

    info = codec_info()
    payload = {
        "benchmark": "codec-binary-vs-json",
        "codec": info,
        "workload": {
            "records": len(records),
            "objects": NUM_OBJECTS,
            "duration_seconds": DURATION_SECONDS,
            "stream_batches": len(batches),
            "shard_seconds": SHARD_SECONDS,
            "scoring_records": len(scenario.iupt),
            "scoring_objects": SCORING_USERS,
            "scoring_queries": SCORING_QUERIES,
        },
        "round_trip": {
            "packed_s": round(packed_round_trip, 4),
            "json_s": round(json_round_trip, 4),
            "speedup": round(json_round_trip / packed_round_trip, 2),
            "packed_bytes": len(blob),
            "json_bytes": len(text),
        },
        "durability": durability,
        "cold_recovery_speedup": round(recovery_speedup, 2),
        "wal_ingest_speedup": round(ingest_speedup, 2),
        "batched_scoring": {
            "scalar_s": round(scalar_elapsed, 4),
            "vectorized_s": round(vector_elapsed, 4),
            "speedup": round(scoring_speedup, 2),
        },
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}:")
    print(
        json.dumps(
            {
                "round_trip": payload["round_trip"],
                "cold_recovery_speedup": payload["cold_recovery_speedup"],
                "wal_ingest_speedup": payload["wal_ingest_speedup"],
                "batched_scoring": payload["batched_scoring"],
            },
            indent=2,
        )
    )

    # Acceptance: the binary codec's lazy snapshot recovery is >=2x the
    # JSON path on every backend — it skips per-record parsing entirely.
    assert recovery_speedup >= 2.0, (
        f"binary cold recovery should be >=2x JSON; got {recovery_speedup:.2f}x"
    )
    if info["backend"] == "numpy":
        assert scoring_speedup >= 2.0, (
            f"vectorized batched scoring should be >=2x scalar on numpy; "
            f"got {scoring_speedup:.2f}x"
        )
