"""Benchmark regenerating Table 7: Kendall coefficient of SCC / UR / BF vs. k and |Q|.

The RFID-based baselines and BF consume the same underlying trajectories; the
timed portion runs one query per method on the RFID-enabled synthetic scenario.
"""

from repro.experiments.runner import single_query_outcome


def test_bench_table7_bf(benchmark, synth_rfid_scenario, synth_setting, run_and_attach):
    run_and_attach(
        benchmark,
        "table7",
        lambda: single_query_outcome(synth_rfid_scenario, "bf", synth_setting),
    )


def test_bench_table7_scc(benchmark, synth_rfid_scenario, synth_setting):
    benchmark.pedantic(
        lambda: single_query_outcome(synth_rfid_scenario, "scc", synth_setting),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )


def test_bench_table7_ur(benchmark, synth_rfid_scenario, synth_setting):
    benchmark.pedantic(
        lambda: single_query_outcome(synth_rfid_scenario, "ur", synth_setting),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
