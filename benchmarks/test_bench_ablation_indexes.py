"""Ablation benchmark: time-index variants (1D R-tree vs. B+-tree) and MIL merging."""

import pytest

from repro.data import IUPT
from repro.experiments import real_scale


@pytest.fixture(scope="module")
def window(real_scenario):
    knobs = real_scale("small")
    return real_scenario.query_interval(knobs.default_delta_seconds, seed=3)


def _rebuilt_table(scenario, index_kind: str) -> IUPT:
    table = IUPT(index_kind=index_kind)
    table.extend(scenario.iupt.records)
    return table


def test_bench_ablation_indexes_rows(benchmark, real_scenario, window, run_and_attach):
    table = _rebuilt_table(real_scenario, "1dr-tree")
    start, end = window
    run_and_attach(
        benchmark, "ablation_indexes", lambda: table.range_query(start, end)
    )


def test_bench_range_query_1dr_tree(benchmark, real_scenario, window):
    table = _rebuilt_table(real_scenario, "1dr-tree")
    start, end = window
    benchmark(table.range_query, start, end)


def test_bench_range_query_bplus_tree(benchmark, real_scenario, window):
    table = _rebuilt_table(real_scenario, "bplus-tree")
    start, end = window
    benchmark(table.range_query, start, end)


def test_bench_ablation_algorithms(benchmark, run_and_attach, real_scenario, real_setting):
    """Head-to-head of the three algorithms and their -ORG variants (rows attached)."""
    from repro.experiments.runner import single_query_outcome

    run_and_attach(
        benchmark,
        "ablation_algorithms",
        lambda: single_query_outcome(real_scenario, "nl", real_setting),
    )
