"""Benchmark regenerating Figure 12: effectiveness vs. |Q| on real data (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_fig12(benchmark, real_scenario, real_setting, time_method):
    time_method(benchmark, "fig12", real_scenario, real_setting, "bf")
