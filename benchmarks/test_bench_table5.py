"""Benchmark regenerating Table 5: running time vs. maximum sample-set size (mss) (see DESIGN.md section 4).

The regenerated result rows are attached to ``extra_info``; the timed portion
is the Best-First query at the experiment's default setting.
"""


def test_bench_table5(benchmark, real_scenario, real_setting, time_method):
    time_method(benchmark, "table5", real_scenario, real_setting, "bf")
