"""Unit tests for the index substrates (R-tree, aggregate R-tree, 1D R-tree, B+-tree)."""

from __future__ import annotations

import random

import pytest

from repro.geometry import Point, Rect
from repro.indexes import (
    BPlusTree,
    CountAggregateRTree,
    OneDimensionalRTree,
    RTree,
)


def _random_rects(count: int, seed: int = 3):
    rng = random.Random(seed)
    rects = []
    for index in range(count):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        rects.append((Rect(x, y, x + rng.uniform(0.5, 5), y + rng.uniform(0.5, 5)), index))
    return rects


class TestRTree:
    def test_insert_and_search(self):
        tree = RTree()
        items = _random_rects(200)
        for rect, key in items:
            tree.insert(rect, key)
        assert len(tree) == 200
        window = Rect(20, 20, 40, 40)
        expected = sorted(key for rect, key in items if rect.intersects(window))
        assert sorted(tree.search(window)) == expected

    def test_bulk_load_matches_brute_force(self):
        items = _random_rects(300, seed=9)
        tree = RTree.bulk_load(items)
        assert len(tree) == 300
        for window in (Rect(0, 0, 10, 10), Rect(50, 50, 80, 80), Rect(95, 95, 100, 100)):
            expected = sorted(key for rect, key in items if rect.intersects(window))
            assert sorted(tree.search(window)) == expected

    def test_search_point(self):
        tree = RTree.bulk_load([(Rect(0, 0, 10, 10), "a"), (Rect(5, 5, 15, 15), "b")])
        assert sorted(tree.search_point(Point(7, 7))) == ["a", "b"]
        assert tree.search_point(Point(20, 20)) == []

    def test_nearest(self):
        items = [(Rect.from_point(Point(float(i), 0.0)), i) for i in range(10)]
        tree = RTree.bulk_load(items)
        nearest = tree.nearest(Point(3.2, 0.0), count=2)
        assert [item for _, item in nearest] == [3, 4]

    def test_empty_tree(self):
        tree = RTree()
        assert tree.search(Rect(0, 0, 1, 1)) == []
        assert tree.nearest(Point(0, 0)) == []

    def test_height_grows_with_size(self):
        small = RTree.bulk_load(_random_rects(5))
        large = RTree.bulk_load(_random_rects(500))
        assert large.height > small.height

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_entries_on_different_floors_do_not_mix(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 10, 10, floor=0), "ground")
        tree.insert(Rect(0, 0, 10, 10, floor=1), "first")
        assert tree.search(Rect(1, 1, 2, 2, floor=0)) == ["ground"]
        assert tree.search(Rect(1, 1, 2, 2, floor=1)) == ["first"]


class TestCountAggregateRTree:
    def test_counts_match_subtrees(self):
        tree = CountAggregateRTree(max_entries=4)
        items = _random_rects(60, seed=4)
        tree.extend(items)
        tree.build()
        assert tree.total_count() == 60
        root_entries = tree.root_entries()
        assert sum(entry.count for entry in root_entries) == 60
        for entry in root_entries:
            assert len(tree.items_under(entry)) == entry.count

    def test_empty_tree(self):
        tree = CountAggregateRTree()
        assert tree.total_count() == 0
        assert tree.root_entries() == []

    def test_leaf_entries_have_count_one(self):
        tree = CountAggregateRTree(max_entries=4)
        tree.extend(_random_rects(3))
        tree.build()
        for entry in tree.root_entries():
            assert entry.count == 1
            assert entry.is_leaf_entry


class TestOneDimensionalRTree:
    def test_range_query_matches_filter(self):
        rng = random.Random(7)
        tree: OneDimensionalRTree[int] = OneDimensionalRTree(leaf_capacity=8, fanout=4)
        records = [(rng.uniform(0, 1000), i) for i in range(500)]
        for ts, value in records:
            tree.insert(ts, value)
        assert len(tree) == 500
        for start, end in ((0, 100), (250, 260), (990, 1000), (400, 400)):
            expected = [v for ts, v in sorted(records) if start <= ts <= end]
            assert tree.range_query(start, end) == expected

    def test_results_in_time_order(self):
        tree: OneDimensionalRTree[str] = OneDimensionalRTree(leaf_capacity=4)
        for ts, name in [(5.0, "e"), (1.0, "a"), (3.0, "c"), (2.0, "b"), (4.0, "d")]:
            tree.insert(ts, name)
        assert tree.range_query(0, 10) == ["a", "b", "c", "d", "e"]

    def test_invalid_interval(self):
        tree: OneDimensionalRTree[int] = OneDimensionalRTree()
        with pytest.raises(ValueError):
            tree.range_query(5, 1)

    def test_count_in_range(self):
        tree: OneDimensionalRTree[int] = OneDimensionalRTree()
        tree.bulk_load([(float(i), i) for i in range(100)])
        assert tree.count_in_range(10, 19) == 10

    def test_time_span(self):
        tree: OneDimensionalRTree[int] = OneDimensionalRTree()
        assert tree.time_span == (float("inf"), float("-inf"))
        tree.insert(4.0, 1)
        tree.insert(2.0, 2)
        assert tree.time_span == (2.0, 4.0)

    def test_from_sorted_matches_insert_built(self):
        rng = random.Random(3)
        pairs = sorted(
            ((round(rng.uniform(0, 100), 1), i) for i in range(300)),
            key=lambda pair: pair[0],
        )
        inserted: OneDimensionalRTree[int] = OneDimensionalRTree(
            leaf_capacity=8, fanout=4
        )
        for ts, value in pairs:
            inserted.insert(ts, value)
        bulk = OneDimensionalRTree.from_sorted(pairs, leaf_capacity=8, fanout=4)
        assert len(bulk) == len(inserted)
        assert bulk.height == inserted.height
        for window in ((0, 100), (25.5, 30.5), (99.9, 99.9)):
            assert bulk.range_query(*window) == inserted.range_query(*window)

    def test_from_sorted_empty(self):
        tree = OneDimensionalRTree.from_sorted([])
        assert len(tree) == 0
        assert tree.range_query(0, 10) == []


class TestBPlusTree:
    def test_range_query_matches_filter(self):
        rng = random.Random(13)
        tree: BPlusTree[int] = BPlusTree(order=8)
        records = [(round(rng.uniform(0, 100), 2), i) for i in range(400)]
        for key, value in records:
            tree.insert(key, value)
        assert len(tree) == 400
        for start, end in ((0, 10), (45.5, 55.5), (99, 100)):
            expected = sorted(
                (key, value) for key, value in records if start <= key <= end
            )
            assert tree.range_query(start, end) == [value for _, value in expected]

    def test_duplicate_keys(self):
        tree: BPlusTree[str] = BPlusTree()
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        assert tree.get(1.0) == ["a", "b"]
        assert tree.get(2.0) == []

    def test_items_sorted(self):
        tree: BPlusTree[int] = BPlusTree(order=4)
        for key in (9.0, 1.0, 5.0, 3.0, 7.0):
            tree.insert(key, int(key))
        assert [key for key, _ in tree.items()] == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_height_grows(self):
        tree: BPlusTree[int] = BPlusTree(order=4)
        for i in range(200):
            tree.insert(float(i), i)
        assert tree.height >= 3

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_bulk_load_matches_insert_built(self):
        rng = random.Random(21)
        pairs = sorted(
            ((round(rng.uniform(0, 50), 1), i) for i in range(400)),
            key=lambda pair: pair[0],
        )
        inserted: BPlusTree[int] = BPlusTree(order=8)
        for key, value in pairs:
            inserted.insert(key, value)
        bulk = BPlusTree.bulk_load(pairs, order=8)
        assert len(bulk) == len(inserted)
        assert list(bulk.items()) == list(inserted.items())
        for window in ((0, 50), (12.5, 13.5), (49.9, 50.0), (7.0, 7.0)):
            assert bulk.range_query(*window) == inserted.range_query(*window)

    def test_bulk_load_groups_duplicates_in_order(self):
        bulk = BPlusTree.bulk_load([(1.0, "a"), (1.0, "b"), (2.0, "c")], order=4)
        assert bulk.get(1.0) == ["a", "b"]
        assert len(bulk) == 3

    def test_bulk_load_empty(self):
        bulk: BPlusTree[int] = BPlusTree.bulk_load([])
        assert len(bulk) == 0
        assert bulk.range_query(0, 10) == []

    def test_bulk_loaded_tree_accepts_further_inserts(self):
        bulk = BPlusTree.bulk_load(((float(i), i) for i in range(100)), order=8)
        bulk.insert(50.5, 999)
        assert 999 in bulk.range_query(50, 51)
        assert len(bulk) == 101
