"""Tests for the execution-engine layer.

Covers the pipeline stages one by one, the cross-query presence store (LRU
bounds, hit/miss accounting, query-set keying), the regression for the
historical ``flows_for_all`` cache hazard, batched-vs-sequential result
equality on both scenario builders, and parallel-vs-serial determinism.
"""

from __future__ import annotations

import pytest

from repro import (
    DataReductionConfig,
    EngineConfig,
    FlowComputer,
    QueryEngine,
    TkPLQuery,
)
from repro.core import SearchStats
from repro.core.flow import ObjectComputationCache
from repro.engine import (
    BatchPlanner,
    PresenceStore,
    StoredPresence,
    make_store_key,
)
from repro.experiments.runner import overlapping_queries

WINDOW = (1.0, 8.0)


def fresh_computer(figure1, reduction=None) -> FlowComputer:
    return FlowComputer(
        figure1["graph"],
        figure1["matrix"],
        reduction or DataReductionConfig.enabled(),
    )


def fresh_engine(scenario, config=None, reduction=None) -> QueryEngine:
    return QueryEngine(
        scenario.system.graph,
        scenario.system.matrix,
        reduction or DataReductionConfig.enabled(),
        config=config,
    )


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestEngineConfig:
    def test_rejects_unknown_executor(self):
        # A typo'd executor must fail at construction with a message naming
        # the valid kinds — not deep inside make_executor at first query.
        with pytest.raises(ValueError, match="serial"):
            EngineConfig(executor="treads")

    def test_rejects_unknown_continuous_refresh(self):
        with pytest.raises(ValueError, match="incremental"):
            EngineConfig(continuous_refresh="eventually")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            EngineConfig(max_workers=0)
        with pytest.raises(ValueError):
            EngineConfig(parallel_threshold=-1)
        with pytest.raises(ValueError):
            EngineConfig(presence_store_capacity=-1)

    def test_factories(self):
        assert not EngineConfig.serial().is_parallel
        assert EngineConfig.parallel(4).executor == "thread"
        assert not EngineConfig.uncached().caching_enabled
        assert "executor" in EngineConfig().as_dict()


# ----------------------------------------------------------------------
# Presence store
# ----------------------------------------------------------------------
class TestPresenceStore:
    @staticmethod
    def entry(psl: int = 1) -> StoredPresence:
        return StoredPresence(psls=frozenset({psl}), sequence=(), pruned=False)

    def test_keyed_by_query_set(self):
        store = PresenceStore(capacity=8)
        entry = self.entry()
        store.put(7, WINDOW, {1, 2}, entry)
        # The same object under a different query set (or no set) must miss.
        assert store.get(7, WINDOW, {1, 3}) is None
        assert store.get(7, WINDOW, None) is None
        assert store.get(7, WINDOW, {2, 1}) is entry

    def test_keyed_by_window(self):
        store = PresenceStore(capacity=8)
        store.put(7, WINDOW, {1}, self.entry())
        assert store.get(7, (1.0, 9.0), {1}) is None

    def test_lru_eviction_and_stats(self):
        store = PresenceStore(capacity=2)
        store.put(1, WINDOW, {1}, self.entry())
        store.put(2, WINDOW, {1}, self.entry())
        assert store.get(1, WINDOW, {1}) is not None  # 1 becomes most recent
        store.put(3, WINDOW, {1}, self.entry())  # evicts 2
        assert store.get(2, WINDOW, {1}) is None
        assert store.get(1, WINDOW, {1}) is not None
        assert store.get(3, WINDOW, {1}) is not None
        assert len(store) == 2
        assert store.stats.evictions == 1
        assert store.stats.hits == 3
        assert store.stats.misses == 1
        assert 0.0 < store.stats.hit_rate < 1.0

    def test_store_key_normalisation(self):
        assert make_store_key(1, (0, 10), [3, 2], (9, 4)) == (
            1,
            (0.0, 10.0),
            frozenset({2, 3}),
            (9, 4),
        )
        assert make_store_key(1, (0, 10), None)[2] is None
        assert make_store_key(1, (0, 10), None)[3] is None

    def test_keyed_by_data_version(self):
        store = PresenceStore(capacity=8)
        store.put(7, WINDOW, {1}, self.entry(), data_key=(1, 5))
        assert store.get(7, WINDOW, {1}, data_key=(1, 6)) is None
        assert store.get(7, WINDOW, {1}, data_key=(2, 5)) is None
        assert store.get(7, WINDOW, {1}, data_key=(1, 5)) is not None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PresenceStore(capacity=0)


# ----------------------------------------------------------------------
# Stage-by-stage units
# ----------------------------------------------------------------------
class TestStages:
    def test_fetch_stage_deterministic_order_and_totals(self, figure1, figure1_iupt):
        computer = fresh_computer(figure1)
        pipeline = computer.pipeline
        ctx = pipeline.context(WINDOW, frozenset(figure1["slocs"].values()))
        sequences = pipeline.fetch.run(ctx, figure1_iupt)
        assert list(sequences) == sorted(sequences)
        assert ctx.stats.objects_total == 3
        # A second fetch over the same window must not inflate the total.
        pipeline.fetch.run(ctx, figure1_iupt)
        assert ctx.stats.objects_total == 3

    def test_reduce_stage_matches_reducer(self, figure1, figure1_iupt):
        computer = fresh_computer(figure1)
        pipeline = computer.pipeline
        query_key = frozenset({figure1["slocs"]["r6"]})
        ctx = pipeline.context(WINDOW, query_key)
        sequences = figure1_iupt.sequences_in(*WINDOW)
        for sequence in sequences.values():
            staged = pipeline.reduce.run(ctx, sequence)
            direct = computer.reducer.reduce(sequence, set(query_key))
            assert staged.sequence == direct.sequence
            assert staged.psls == direct.psls
            assert staged.pruned == direct.pruned

    def test_path_stage_matches_presence_computation(self, figure1, figure1_iupt):
        computer = fresh_computer(figure1, DataReductionConfig.disabled())
        pipeline = computer.pipeline
        ctx = pipeline.context(WINDOW, None)
        sequences = figure1_iupt.sequences_in(*WINDOW)
        cell = figure1["graph"].parent_cell(figure1["slocs"]["r6"])
        for sequence in sequences.values():
            staged = pipeline.paths.run(ctx, tuple(sequence))
            direct = computer.presence_computation(tuple(sequence))
            assert staged.presence_in_cell(cell) == direct.presence_in_cell(cell)

    def test_presence_stage_store_accounting(self, figure1, figure1_iupt):
        scenario_like = figure1
        engine = QueryEngine(scenario_like["graph"], scenario_like["matrix"])
        pipeline = engine.pipeline
        query_key = frozenset({scenario_like["slocs"]["r6"]})
        ctx = pipeline.context(WINDOW, query_key)
        sequences = figure1_iupt.sequences_in(*WINDOW)
        object_id = next(iter(sequences))

        first = pipeline.presence.run(ctx, object_id, sequences[object_id])
        seen_after_first = ctx.stats.reduction_stats.objects_seen
        assert engine.store.stats.misses == 1
        assert engine.store.stats.puts >= 1

        second = pipeline.presence.run(ctx, object_id, sequences[object_id])
        assert second is first  # the cached artefact, not a recomputation
        assert engine.store.stats.hits == 1
        assert ctx.stats.reduction_stats.objects_seen == seen_after_first

    def test_pruned_objects_are_cached_too(self, figure1, figure1_iupt):
        engine = QueryEngine(figure1["graph"], figure1["matrix"])
        pipeline = engine.pipeline
        # Objects never near r5 get pruned under a {r5} query; the pruning
        # decision itself must be cached so repeats skip the reduction.
        ctx = pipeline.context(WINDOW, frozenset({figure1["slocs"]["r5"]}))
        sequences = figure1_iupt.sequences_in(*WINDOW)
        entries = dict(pipeline.presences(ctx, sequences))
        pruned_ids = [oid for oid, entry in entries.items() if entry.pruned]
        assert pruned_ids, "expected at least one pruned object under {r5}"
        seen = ctx.stats.reduction_stats.objects_seen
        again = dict(pipeline.presences(ctx, sequences))
        assert ctx.stats.reduction_stats.objects_seen == seen
        for object_id in pruned_ids:
            assert again[object_id].pruned


# ----------------------------------------------------------------------
# The flows_for_all cache-correctness regression
# ----------------------------------------------------------------------
class TestCacheCorrectnessRegression:
    def test_object_cache_rejects_cross_query_reuse(self):
        """A presence cached under one query set must miss under another.

        This is the stale-hit hazard of the historical object-id-only keying:
        ``flows_for_all`` shared one cache across per-location flow calls, so
        an artefact produced by ``reduce(seq, {B})`` was served for location
        ``A`` — bypassing A's (query-dependent) pruning decision.
        """
        cache = ObjectComputationCache()
        entry = StoredPresence(psls=frozenset({2}), sequence=(), pruned=False)
        cache.put(7, entry, {2})
        assert cache.get(7, {3}) is None
        assert cache.get(7) is None
        assert cache.get(7, {2}) is entry
        assert len(cache) == 1

    def test_flows_for_all_matches_independent_flows(self, figure1, figure1_iupt):
        """Shared-pass flows and accounting must equal independent flow calls.

        Under the old shared cache, a location processed after one that had
        cached an object reused the artefact even when the object's PSLs
        exclude the later location, inflating ``flow_evaluations`` relative
        to the per-location pruning an independent call performs.
        """
        sloc_ids = sorted(figure1["slocs"].values())
        shared_stats = SearchStats()
        shared = fresh_computer(figure1).flows_for_all(
            figure1_iupt, sloc_ids, *WINDOW, stats=shared_stats
        )

        independent_evaluations = 0
        for sloc_id in sloc_ids:
            result = fresh_computer(figure1).flow(figure1_iupt, sloc_id, *WINDOW)
            assert shared[sloc_id] == result.flow
            independent_evaluations += result.stats.flow_evaluations
        assert shared_stats.flow_evaluations == independent_evaluations
        assert shared_stats.objects_total == 3

    def test_legacy_cache_on_flow_calls_stays_per_location(
        self, figure1, figure1_iupt
    ):
        """A cache shared across flow() calls must not leak across locations."""
        computer = fresh_computer(figure1)
        cache = ObjectComputationCache()
        slocs = figure1["slocs"]
        with_cache_r1 = computer.flow(
            figure1_iupt, slocs["r1"], *WINDOW, cache=cache
        ).flow
        with_cache_r3 = computer.flow(
            figure1_iupt, slocs["r3"], *WINDOW, cache=cache
        ).flow
        assert with_cache_r1 == fresh_computer(figure1).flow(
            figure1_iupt, slocs["r1"], *WINDOW
        ).flow
        assert with_cache_r3 == fresh_computer(figure1).flow(
            figure1_iupt, slocs["r3"], *WINDOW
        ).flow


# ----------------------------------------------------------------------
# Engine equivalence with the pre-engine wrappers
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    def test_engine_flow_matches_flow_computer(self, figure1, figure1_iupt):
        engine = QueryEngine(
            figure1["graph"], figure1["matrix"], DataReductionConfig.disabled()
        )
        computer = fresh_computer(figure1, DataReductionConfig.disabled())
        for name, sloc_id in figure1["slocs"].items():
            assert (
                engine.flow(figure1_iupt, sloc_id, *WINDOW).flow
                == computer.flow(figure1_iupt, sloc_id, *WINDOW).flow
            ), name

    @pytest.mark.parametrize("algorithm", ["naive", "nested-loop", "best-first"])
    def test_algorithms_agree_through_engine(
        self, small_real_scenario, algorithm
    ):
        scenario = small_real_scenario
        query = TkPLQuery.build(
            scenario.pick_query_slocations(0.6, seed=2),
            3,
            scenario.start_time,
            scenario.end_time,
        )
        via_engine = fresh_engine(scenario).search(scenario.iupt, query, algorithm)
        via_system = scenario.system.search(scenario.iupt, query, algorithm)
        assert via_engine.top_k_ids() == via_system.top_k_ids()
        assert via_engine.flows == via_system.flows

    def test_warm_store_returns_identical_answers(self, small_real_scenario):
        scenario = small_real_scenario
        engine = fresh_engine(scenario)
        query = TkPLQuery.build(
            scenario.pick_query_slocations(0.5, seed=4),
            2,
            scenario.start_time,
            scenario.end_time,
        )
        cold = engine.search(scenario.iupt, query, "nested-loop")
        warm = engine.search(scenario.iupt, query, "nested-loop")
        assert cold.flows == warm.flows
        assert cold.top_k_ids() == warm.top_k_ids()
        stats = engine.cache_stats()
        assert stats["hits"] > 0
        # The warm run reduced nothing: everything came from the store.
        assert warm.stats.reduction_stats.objects_seen == 0

    def test_store_invalidated_when_table_grows(self, figure1, figure1_iupt):
        """Streaming new reports in must not be answered from stale artefacts.

        The presence store keys on the IUPT's identity-and-version token, so
        a cached-engine flow recomputes after an append instead of serving
        the pre-append value.
        """
        from repro import IUPT, SampleSet

        iupt = IUPT()
        iupt.extend(figure1_iupt.records)  # private copy; fixtures stay pristine
        engine = QueryEngine(figure1["graph"], figure1["matrix"])
        sloc_id = figure1["slocs"]["r6"]

        before = engine.flow(iupt, sloc_id, *WINDOW).flow
        # A new visitor reported squarely inside the hallway (p8 in r6).
        iupt.report(99, SampleSet.from_pairs([(figure1["plocs"]["p8"], 1.0)]), 5.0)
        after = engine.flow(iupt, sloc_id, *WINDOW).flow
        fresh = QueryEngine(figure1["graph"], figure1["matrix"]).flow(
            iupt, sloc_id, *WINDOW
        ).flow
        assert after == fresh
        assert after > before

    def test_best_first_reuses_nested_loop_artefacts(self, small_real_scenario):
        scenario = small_real_scenario
        engine = fresh_engine(scenario)
        query = TkPLQuery.build(
            scenario.pick_query_slocations(0.5, seed=4),
            2,
            scenario.start_time,
            scenario.end_time,
        )
        nl = engine.search(scenario.iupt, query, "nested-loop")
        hits_before = engine.store.stats.hits
        bf = engine.search(scenario.iupt, query, "best-first")
        assert engine.store.stats.hits > hits_before
        assert bf.top_k_ids() == nl.top_k_ids()


# ----------------------------------------------------------------------
# Batched evaluation
# ----------------------------------------------------------------------
class TestBatchPlanner:
    @pytest.mark.parametrize(
        "scenario_fixture", ["small_real_scenario", "small_synth_scenario"]
    )
    def test_batch_equals_sequential(self, scenario_fixture, request):
        scenario = request.getfixturevalue(scenario_fixture)
        queries = overlapping_queries(scenario, count=6, k=2, q_fraction=0.5, seed=3)

        report = fresh_engine(scenario).batch(scenario.iupt, queries)
        assert report.groups == 1
        assert len(report) == len(queries)
        if scenario_fixture == "small_real_scenario":
            # Guard against a vacuous comparison: the real scenario must
            # produce actual flows (the synthetic grid's currently don't).
            assert any(
                flow > 0.0
                for result in report.results
                for flow in result.flows.values()
            )

        for query, batched in zip(queries, report.results):
            sequential = fresh_engine(
                scenario, config=EngineConfig.uncached()
            ).search(scenario.iupt, query, "nested-loop")
            assert batched.flows == sequential.flows
            assert batched.top_k_ids() == sequential.top_k_ids()

    def test_batch_groups_by_window(self, small_real_scenario):
        scenario = small_real_scenario
        early = overlapping_queries(
            scenario, count=2, k=2, q_fraction=0.4, delta_seconds=120.0, seed=1
        )
        late = overlapping_queries(
            scenario, count=2, k=2, q_fraction=0.4, delta_seconds=90.0, seed=8
        )
        queries = [early[0], late[0], early[1], late[1]]
        engine = fresh_engine(scenario)
        planner = BatchPlanner(engine.pipeline)
        groups = planner.plan(queries)
        assert sorted(len(group) for group in groups) == [2, 2]

        report = engine.batch(scenario.iupt, queries)
        for query, batched in zip(queries, report.results):
            sequential = fresh_engine(
                scenario, config=EngineConfig.uncached()
            ).search(scenario.iupt, query, "nested-loop")
            assert batched.flows == sequential.flows

    def test_multi_window_shared_stats_sum_per_window(self, small_real_scenario):
        """objects_total across window groups must sum, not max.

        A per-window maximum undercounts multi-window batches and can push
        the aggregate pruning ratio negative (more computed objects than the
        reported population).
        """
        scenario = small_real_scenario
        early = overlapping_queries(
            scenario, count=2, k=2, q_fraction=0.9, delta_seconds=120.0, seed=1
        )
        late = overlapping_queries(
            scenario, count=2, k=2, q_fraction=0.9, delta_seconds=90.0, seed=8
        )
        report = fresh_engine(scenario).batch(scenario.iupt, early + late)
        expected_total = sum(
            len(scenario.iupt.sequences_in(*window))
            for window in {early[0].interval, late[0].interval}
        )
        assert report.shared_stats.objects_total == expected_total
        assert report.shared_stats.pruning_ratio >= 0.0

    def test_batch_matches_all_three_algorithms(self, small_synth_scenario):
        scenario = small_synth_scenario
        queries = overlapping_queries(scenario, count=4, k=2, q_fraction=0.6, seed=11)
        report = fresh_engine(scenario).batch(scenario.iupt, queries)
        for query, batched in zip(queries, report.results):
            for algorithm in ("naive", "nested-loop", "best-first"):
                independent = fresh_engine(
                    scenario, config=EngineConfig.uncached()
                ).search(scenario.iupt, query, algorithm)
                assert batched.top_k_ids() == independent.top_k_ids(), algorithm


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
class TestParallelExecution:
    def test_thread_executor_is_deterministic(self, small_real_scenario):
        scenario = small_real_scenario
        query = TkPLQuery.build(
            scenario.pick_query_slocations(0.7, seed=6),
            3,
            scenario.start_time,
            scenario.end_time,
        )
        serial = fresh_engine(scenario).search(scenario.iupt, query, "nested-loop")
        with fresh_engine(
            scenario,
            config=EngineConfig(executor="thread", max_workers=4, parallel_threshold=1),
        ) as parallel:
            threaded = parallel.search(scenario.iupt, query, "nested-loop")
        assert threaded.flows == serial.flows
        assert threaded.top_k_ids() == serial.top_k_ids()
        # The statistics are merged deterministically in input order.
        assert (
            threaded.stats.reduction_stats.objects_seen
            == serial.stats.reduction_stats.objects_seen
        )
        assert threaded.stats.objects_computed == serial.stats.objects_computed

    def test_process_executor_matches_serial(self, figure1, figure1_iupt):
        engine = QueryEngine(
            figure1["graph"],
            figure1["matrix"],
            config=EngineConfig(
                executor="process", max_workers=2, parallel_threshold=1
            ),
        )
        serial = fresh_computer(figure1)
        sloc_id = figure1["slocs"]["r6"]
        try:
            assert (
                engine.flow(figure1_iupt, sloc_id, *WINDOW).flow
                == serial.flow(figure1_iupt, sloc_id, *WINDOW).flow
            )
        finally:
            engine.close()

    def test_parallel_flows_for_all_matches_serial(self, small_real_scenario):
        scenario = small_real_scenario
        sloc_ids = scenario.slocation_ids()
        serial = fresh_engine(scenario).flows(
            scenario.iupt, sloc_ids, scenario.start_time, scenario.end_time
        )
        with fresh_engine(
            scenario,
            config=EngineConfig(executor="thread", max_workers=3, parallel_threshold=1),
        ) as engine:
            threaded = engine.flows(
                scenario.iupt, sloc_ids, scenario.start_time, scenario.end_time
            )
        assert threaded == serial


# ----------------------------------------------------------------------
# Statistics plumbing
# ----------------------------------------------------------------------
class TestSearchStats:
    def test_note_objects_total_keeps_maximum(self):
        stats = SearchStats()
        stats.note_objects_total(5)
        stats.note_objects_total(3)
        stats.note_objects_total(5)
        assert stats.objects_total == 5

    def test_merge_combines_counters(self):
        left, right = SearchStats(), SearchStats()
        left.note_object_computed(1)
        right.note_object_computed(1)
        right.note_object_computed(2)
        left.flow_evaluations = 2
        right.flow_evaluations = 3
        right.note_objects_total(7)
        right.reduction_stats.objects_seen = 4
        left.merge(right)
        assert left.objects_computed == 2  # distinct objects, not a sum
        assert left.flow_evaluations == 5
        assert left.objects_total == 7
        assert left.reduction_stats.objects_seen == 4

    def test_merge_across_windows_sums_populations(self):
        left, right = SearchStats(), SearchStats()
        left.note_objects_total(10)
        right.note_objects_total(10)
        left.merge(right, same_window=False)
        assert left.objects_total == 20
        # Same-window merging keeps the maximum (one fetch, counted once).
        left2, right2 = SearchStats(), SearchStats()
        left2.note_objects_total(10)
        right2.note_objects_total(10)
        left2.merge(right2)
        assert left2.objects_total == 10
