"""Tests for the metrics, the harness, and the experiment registry."""

from __future__ import annotations

import pytest

from repro import TkPLQuery, kendall_coefficient, recall_at_k, run_method, run_methods
from repro.eval import ALL_METHODS, ground_truth_ranking, pruning_ratio
from repro.eval.metrics import extend_rankings, rank_by_score
from repro.experiments import (
    EXPERIMENTS,
    QuerySetting,
    evaluate,
    format_table,
    run_experiment,
)


class TestMetrics:
    def test_recall(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3]) == 1.0
        assert recall_at_k([1, 4, 5], [1, 2, 3]) == pytest.approx(1 / 3)
        assert recall_at_k([], [1, 2]) == 0.0
        assert recall_at_k([1], []) == 1.0

    def test_kendall_identical_and_reversed(self):
        assert kendall_coefficient([1, 2, 3], [1, 2, 3]) == 1.0
        assert kendall_coefficient([3, 2, 1], [1, 2, 3]) == -1.0

    def test_kendall_bounded(self):
        assert -1.0 <= kendall_coefficient([1, 2, 3], [4, 5, 6]) <= 1.0
        assert -1.0 <= kendall_coefficient([1, 5, 2], [2, 3, 4]) <= 1.0

    def test_kendall_paper_extension_example(self):
        """The paper's example: ϕr = <A,B,C>, ϕg = <B,D,E> extend to 5 elements."""
        result_rank, truth_rank = extend_rankings(["A", "B", "C"], ["B", "D", "E"])
        assert result_rank["D"] == result_rank["E"] == 4.0
        assert truth_rank["A"] == truth_rank["C"] == 4.0
        assert truth_rank["B"] == 1.0

    def test_pruning_ratio(self):
        assert pruning_ratio(10, 4) == pytest.approx(0.6)
        assert pruning_ratio(0, 0) == 0.0

    def test_rank_by_score(self):
        assert rank_by_score({1: 0.5, 2: 0.9, 3: 0.5}, 2) == [2, 1]


class TestHarness:
    def test_run_method_on_all_core_methods(self, small_real_scenario):
        scenario = small_real_scenario
        query_set = scenario.pick_query_slocations(0.5, seed=1)
        query = TkPLQuery.build(query_set, 2, scenario.start_time, scenario.end_time)
        for method in ("bf", "nl", "sc", "sc-rho", "mc"):
            outcome = run_method(scenario, method, query, mc_rounds=15)
            assert outcome.method == method
            assert len(outcome.ranking) == 2
            assert -1.0 <= outcome.kendall <= 1.0
            assert 0.0 <= outcome.recall <= 1.0
            assert outcome.elapsed_seconds >= 0.0

    def test_run_methods_shares_ground_truth(self, small_real_scenario):
        scenario = small_real_scenario
        query_set = scenario.pick_query_slocations(0.5, seed=2)
        query = TkPLQuery.build(query_set, 2, scenario.start_time, scenario.end_time)
        outcomes = run_methods(scenario, ["bf", "sc"], query, mc_rounds=10)
        assert [outcome.method for outcome in outcomes] == ["bf", "sc"]

    def test_unknown_method_rejected(self, small_real_scenario):
        scenario = small_real_scenario
        query = TkPLQuery.build(
            scenario.slocation_ids(), 1, scenario.start_time, scenario.end_time
        )
        with pytest.raises(ValueError):
            run_method(scenario, "unknown", query)

    def test_rfid_methods_require_rfid_data(self, small_real_scenario):
        scenario = small_real_scenario
        assert scenario.rfid is None
        query = TkPLQuery.build(
            scenario.slocation_ids(), 1, scenario.start_time, scenario.end_time
        )
        with pytest.raises(ValueError):
            run_method(scenario, "scc", query)

    def test_rfid_methods_on_synth_scenario(self, small_synth_scenario):
        scenario = small_synth_scenario
        query = TkPLQuery.build(
            scenario.slocation_ids(), 2, scenario.start_time, scenario.end_time
        )
        for method in ("scc", "ur"):
            outcome = run_method(scenario, method, query)
            assert len(outcome.ranking) == 2

    def test_ground_truth_ranking_ordering(self, small_real_scenario):
        scenario = small_real_scenario
        query_set = scenario.slocation_ids()
        truth = ground_truth_ranking(
            scenario.trajectories,
            scenario.plan,
            scenario.start_time,
            scenario.end_time,
            query_set,
            len(query_set),
        )
        counts = scenario.ground_truth_flows(scenario.start_time, scenario.end_time)
        values = [counts[sloc_id] for sloc_id in truth]
        assert values == sorted(values, reverse=True)


class TestExperiments:
    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "table4", "table5", "table7",
            "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "ablation_reduction", "ablation_indexes", "ablation_algorithms",
            "ablation_storage", "ablation_continuous",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_ablation_indexes_rows(self):
        rows = run_experiment("ablation_indexes")
        variants = {row["variant"] for row in rows}
        assert {"1dr-tree", "bplus-tree", "raw NxN", "merged MxM"} <= variants
        matrix_rows = {row["variant"]: row for row in rows if "dimension" in row}
        assert matrix_rows["merged MxM"]["dimension"] <= matrix_rows["raw NxN"]["dimension"]

    def test_ablation_reduction_rows(self):
        rows = run_experiment("ablation_reduction")
        by_config = {row["configuration"]: row for row in rows}
        assert by_config["full (paper)"]["candidate_paths_after"] <= (
            by_config["none"]["candidate_paths_after"]
        )

    def test_evaluate_produces_rows(self, small_real_scenario):
        setting = QuerySetting(k=2, q_fraction=0.5, delta_seconds=120.0, repeats=1, mc_rounds=10)
        rows = evaluate(small_real_scenario, ["bf", "sc"], setting, extra={"label": "x"})
        assert len(rows) == 2
        assert all(row["label"] == "x" for row in rows)
        assert set(rows[0]) >= {"method", "time_s", "kendall", "recall", "pruning_ratio"}

    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        assert "a" in text and "22" in text
        assert format_table([]) == "(no rows)"

    def test_methods_constant_consistency(self):
        assert set(ALL_METHODS) >= {"bf", "nl", "naive", "sc", "sc-rho", "mc", "scc", "ur"}
