"""The example scripts must run end to end (they are part of the public API surface)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example script {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_runs_and_ranks_locations(capsys):
    output = _run_example("quickstart.py", capsys)
    assert "Top-2 most popular semantic locations" in output
    assert "flow" in output


def test_exhibition_analytics_runs(capsys):
    output = _run_example("exhibition_analytics.py", capsys)
    assert "Top-5 exhibition areas" in output
    assert "Kendall tau" in output


def test_mall_rental_ranking_runs(capsys):
    output = _run_example("mall_rental_ranking.py", capsys)
    assert "Suggested rental tiers" in output
    assert "All exact algorithms agree" in output


def test_algorithm_comparison_runs(capsys):
    output = _run_example("algorithm_comparison.py", capsys)
    assert "Fastest exact method" in output
    assert "bf" in output


def test_batch_queries_runs_and_strategies_agree(capsys):
    output = _run_example("batch_queries.py", capsys)
    assert "batched single pass" in output
    assert "All strategies agree on every ranking" in output


def test_streaming_ingest_runs_and_demonstrates_invalidation(capsys):
    output = _run_example("streaming_ingest.py", capsys)
    assert "cache hits, 0 misses" in output
    assert "query into evicted history refused" in output


def test_live_dashboard_runs_and_maintains_standing_queries(capsys):
    output = _run_example("live_dashboard.py", capsys)
    assert "registered 2 standing top-3 queries" in output
    assert "churn" in output
    assert "historical refreshes skipped" in output
    assert "re-keyed" in output
    assert "historical standing query now refuses" in output
    assert "live standing query still serving" in output


def test_query_server_runs_and_pushes_over_the_wire(capsys):
    output = _run_example("query_server.py", capsys)
    assert "query service serving on" in output
    assert "one-shot top-3" in output
    assert "registered standing top-3" in output
    assert "push #1 to dashboard" in output
    assert "service stats:" in output
    assert "service drained and stopped" in output


def test_durable_restart_runs_and_recovers_bit_identically(capsys):
    output = _run_example("durable_restart.py", capsys)
    assert "logged shards" in output
    assert "WAL frames replayed" in output
    assert "recovered top-3 is bit-identical" in output
    assert "survived the second restart" in output
    assert "query below the watermark still fails loudly" in output


def test_examples_directory_contains_at_least_three_scripts():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert "quickstart.py" in scripts
