"""Durable storage: WAL framing, snapshots, recovery, and the crash harness.

The centrepiece is the **differential crash-recovery harness**
(:class:`TestCrashRecoveryDifferential`): a seeded random workload of
``ingest_batch`` / ``evict_before`` / ``checkpoint`` operations runs against
a :class:`~repro.storage.durable.DurableRecordStore` whose fault-injection
hook kills it at an arbitrary WAL frame boundary, while an in-memory
:class:`~repro.storage.sharded.ShardedRecordStore` oracle mirrors exactly
the operations that *returned successfully*.  Recovering the directory must
reproduce the oracle bit-for-bit: records, ``range_query`` answers,
per-shard versions (and therefore ``version_token`` values), the retention
watermark, and TkPLQ rankings computed through a real engine.  The service
layer's restart path (subscription-manifest restore + ``resume``) is covered
at the bottom.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro import (
    FloorPlan,
    IUPT,
    PartitionKind,
    Point,
    QueryEngine,
    QueryService,
    Rect,
    SampleSet,
    ServiceClient,
    ServiceError,
)
from repro.data.records import PositioningRecord
from repro.service import protocol
from repro.space import IndoorLocationMatrix, IndoorSpaceLocationGraph
from repro.storage import (
    DurabilityConfig,
    DurableRecordStore,
    EvictedRangeError,
    ShardedRecordStore,
    SimulatedCrashError,
    decode_wal_frames,
    encode_wal_frame,
)

SHARD_SECONDS = 10.0


def _record(object_id: int, ploc: int, timestamp: float) -> PositioningRecord:
    return PositioningRecord(
        object_id,
        SampleSet.from_pairs([(ploc, 0.625), (ploc + 1, 0.375)]),
        timestamp,
    )


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
class TestWalFraming:
    def test_round_trip(self):
        payloads = [{"seq": 1, "records": [[1, 2.5, [[3, 1.0]]]]}, {"kind": "commit"}]
        data = b"".join(encode_wal_frame(p) for p in payloads)
        frames, valid = decode_wal_frames(data)
        assert frames == payloads
        assert valid == len(data)

    def test_torn_tail_is_detected_at_frame_boundary(self):
        good = encode_wal_frame({"seq": 1})
        torn = encode_wal_frame({"seq": 2, "records": [[1, 2.0, [[3, 1.0]]]]})
        for cut in (1, 5, len(torn) - 1):
            frames, valid = decode_wal_frames(good + torn[:cut])
            assert frames == [{"seq": 1}]
            assert valid == len(good)

    def test_corrupt_body_stops_parsing(self):
        good = encode_wal_frame({"seq": 1})
        bad = bytearray(encode_wal_frame({"seq": 2}))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
        frames, valid = decode_wal_frames(good + bytes(bad))
        assert frames == [{"seq": 1}]
        assert valid == len(good)

    def test_float_payloads_round_trip_bit_exactly(self):
        timestamp = 0.1 + 0.2  # not representable prettily
        frames, _ = decode_wal_frames(encode_wal_frame({"t": timestamp}))
        assert frames[0]["t"] == timestamp


class TestDurabilityConfig:
    def test_validates_fsync_kind(self):
        with pytest.raises(ValueError):
            DurabilityConfig(fsync="sometimes")

    def test_validates_cadence_and_fault_budget(self):
        with pytest.raises(ValueError):
            DurabilityConfig(snapshot_every_batches=0)
        with pytest.raises(ValueError):
            DurabilityConfig(fail_after_writes=-1)


# ----------------------------------------------------------------------
# Plain persistence
# ----------------------------------------------------------------------
def _batches(count: int = 8, objects: int = 4):
    batches = []
    for index in range(count):
        base = index * 7.0
        batches.append(
            [_record(oid, (oid + index) % 5, base + oid * 0.25) for oid in range(objects)]
        )
    return batches


class TestDurableRoundTrip:
    def test_recovery_reproduces_records_and_tokens(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        oracle = ShardedRecordStore(shard_seconds=SHARD_SECONDS)
        for batch in _batches():
            store.ingest_batch(batch)
            oracle.ingest_batch(batch)
        token = store.version_token()
        window_token = store.version_token(5.0, 25.0)
        store.close()

        recovered = DurableRecordStore(tmp_path)
        assert recovered.shard_seconds == SHARD_SECONDS  # manifest wins
        assert list(recovered.records_in_time_order()) == list(
            oracle.records_in_time_order()
        )
        assert recovered.shard_versions() == oracle.shard_versions()
        # Tokens are bit-identical across the restart: the persisted store
        # identity makes the recovered store the SAME logical store.
        assert recovered.version_token() == token
        assert recovered.version_token(5.0, 25.0) == window_token
        assert recovered.range_query(3.0, 33.0) == oracle.range_query(3.0, 33.0)
        recovered.close()

    def test_closed_store_refuses_mutations(self, tmp_path):
        store = DurableRecordStore(tmp_path)
        store.close()
        with pytest.raises(ValueError):
            store.ingest_batch([_record(1, 1, 0.0)])

    def test_empty_batch_leaves_no_wal_trace(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        store.ingest_batch([_record(1, 1, 0.0)])
        wal_bytes = sum(
            p.stat().st_size for p in (tmp_path / "wal").glob("segment-*.wal")
        )
        token = store.version_token()
        receipt = store.ingest_batch([])
        assert receipt.records_ingested == 0
        assert store.version_token() == token
        assert (
            sum(p.stat().st_size for p in (tmp_path / "wal").glob("segment-*.wal"))
            == wal_bytes
        )
        store.close()

    def test_iupt_durable_facade(self, tmp_path):
        iupt = IUPT.durable(tmp_path, shard_seconds=SHARD_SECONDS)
        iupt.ingest_batch([_record(1, 2, 3.0), _record(2, 4, 17.0)])
        key = iupt.data_key_for(0.0, 5.0)
        iupt.store.close()
        reopened = IUPT.durable(tmp_path)
        assert reopened.store.kind == "durable"
        assert len(reopened) == 2
        assert reopened.data_key_for(0.0, 5.0) == key
        # Derived tables of a durable table are volatile sharded clones.
        derived = reopened.filtered_to_objects([1])
        assert derived.store.kind == "sharded"
        assert len(derived) == 1
        reopened.store.close()


class TestSnapshots:
    def test_checkpoint_compacts_segments(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        for batch in _batches():
            store.ingest_batch(batch)
        assert list((tmp_path / "wal").glob("segment-*.wal"))
        summary = store.checkpoint()
        assert summary["snapshots_written"] == store.shard_count > 0
        assert not list((tmp_path / "wal").glob("segment-*.wal"))
        store.close()

        recovered = DurableRecordStore(tmp_path)
        report = recovered.recovery_report
        assert report["shards_from_snapshot"] == recovered.shard_count
        assert report["frames_replayed"] == 0
        recovered.close()

    def test_recovery_replays_only_post_snapshot_frames(self, tmp_path):
        batches = _batches(10)
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        oracle = ShardedRecordStore(shard_seconds=SHARD_SECONDS)
        for batch in batches[:6]:
            store.ingest_batch(batch)
            oracle.ingest_batch(batch)
        store.checkpoint()
        for batch in batches[6:]:
            store.ingest_batch(batch)
            oracle.ingest_batch(batch)
        store.close()
        recovered = DurableRecordStore(tmp_path)
        assert recovered.recovery_report["shards_from_snapshot"] > 0
        assert 0 < recovered.recovery_report["frames_replayed"] < len(batches)
        assert list(recovered.records_in_time_order()) == list(
            oracle.records_in_time_order()
        )
        assert recovered.shard_versions() == oracle.shard_versions()
        recovered.close()

    def test_automatic_snapshot_cadence(self, tmp_path):
        config = DurabilityConfig(snapshot_every_batches=3)
        store = DurableRecordStore(
            tmp_path, shard_seconds=SHARD_SECONDS, config=config
        )
        for batch in _batches(6):
            store.ingest_batch(batch)
        assert list((tmp_path / "snapshots").glob("shard-*.snap"))
        assert not list((tmp_path / "wal").glob("segment-*.wal"))
        store.close()


class TestDurableEviction:
    def test_watermark_survives_restart_and_boundary_semantics(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        store.ingest_batch([_record(1, 1, float(t)) for t in range(0, 40)])
        dropped = store.evict_before(20.0)
        assert dropped == 20
        store.close()

        recovered = DurableRecordStore(tmp_path)
        assert recovered.eviction_watermark == 20.0
        # A window starting exactly at the recovered watermark answers …
        assert len(recovered.range_query(20.0, 39.0)) == 20
        # … and one below raises, exactly as before the restart.
        with pytest.raises(EvictedRangeError):
            recovered.range_query(19.5, 39.0)
        with pytest.raises(ValueError):
            recovered.ingest_batch([_record(1, 1, 5.0)])
        # The evicted shards' files are gone.
        assert not any(
            int(p.stem.split("-", 1)[1]) < 2
            for p in (tmp_path / "snapshots").glob("shard-*.snap")
        )
        recovered.close()

    def test_crashed_store_stays_dead(self, tmp_path):
        config = DurabilityConfig(fail_after_writes=2)
        store = DurableRecordStore(
            tmp_path, shard_seconds=SHARD_SECONDS, config=config
        )
        store.ingest_batch([_record(1, 1, 0.0)])  # 2 writes: frame + commit
        with pytest.raises(SimulatedCrashError):
            store.ingest_batch([_record(1, 1, 1.0)])
        with pytest.raises(SimulatedCrashError):
            store.ingest_batch([_record(1, 1, 2.0)])
        with pytest.raises(SimulatedCrashError):
            store.checkpoint()


# ----------------------------------------------------------------------
# The differential crash-recovery harness
# ----------------------------------------------------------------------
def _mini_space():
    """A tiny room+hall space whose engine ranks the workload's P-locations."""
    plan = FloorPlan()
    room = plan.add_partition(Rect(0, 0, 6, 6), PartitionKind.ROOM, name="room")
    hall = plan.add_partition(Rect(0, 6, 12, 10), PartitionKind.HALLWAY, name="hall")
    door = plan.add_door(Point(3.0, 6.0), (room, hall))
    plan.add_partitioning_plocation(Point(3.0, 6.0), door)
    plan.add_presence_plocation(Point(3.0, 3.0), room)
    plan.add_presence_plocation(Point(9.0, 8.0), hall)
    for partition in (room, hall):
        plan.add_slocation_for_partition(partition)
    plan.freeze()
    graph = IndoorSpaceLocationGraph.from_floorplan(plan)
    matrix = IndoorLocationMatrix.from_graph(graph).merged(graph)
    return graph, matrix


def _workload_record(rng: random.Random, object_id: int, timestamp: float):
    ploc = rng.randrange(0, 3)  # the mini space has P-locations 0..2
    others = [p for p in range(3) if p != ploc]
    second = rng.choice(others)
    weight = rng.choice([0.5, 0.625, 0.75, 1.0])
    if weight == 1.0:
        pairs = [(ploc, 1.0)]
    else:
        pairs = [(ploc, weight), (second, 1.0 - weight)]
    return PositioningRecord(object_id, SampleSet.from_pairs(pairs), timestamp)


def _random_ops(rng: random.Random, horizon: float = 120.0):
    """A seeded op tape: mostly ingests, some shard-aligned evictions, a
    checkpoint or two, timestamps dense enough for timestamp ties."""
    ops = []
    frontier = 0.0
    for _step in range(rng.randint(14, 22)):
        roll = rng.random()
        if roll < 0.72 or frontier < SHARD_SECONDS:
            batch = []
            width = rng.uniform(4.0, 18.0)
            for oid in range(rng.randint(1, 5)):
                for _ in range(rng.randint(1, 3)):
                    t = round(frontier + rng.uniform(0.0, width), 1)
                    batch.append(_workload_record(rng, oid, min(t, horizon)))
            frontier = min(frontier + width * 0.6, horizon)
            ops.append(("ingest", batch))
        elif roll < 0.9:
            cut = rng.randrange(1, max(2, int(frontier / SHARD_SECONDS)))
            ops.append(("evict", cut * SHARD_SECONDS))
        else:
            ops.append(("checkpoint", None))
    return ops


SEEDS = (11, 23, 37, 41, 59, 73)  # the fixed CI seed matrix


def _build_oracle(tape) -> ShardedRecordStore:
    """Apply an op tape to a fresh volatile sharded store."""
    oracle = ShardedRecordStore(shard_seconds=SHARD_SECONDS)
    for op, arg in tape:
        if op == "ingest":
            oracle.ingest_batch(arg)
        elif op == "evict":
            oracle.evict_before(arg)
    return oracle


def _state_matches(recovered: DurableRecordStore, oracle: ShardedRecordStore) -> bool:
    return (
        list(recovered.records_in_time_order()) == list(oracle.records_in_time_order())
        and recovered.shard_versions() == oracle.shard_versions()
        and recovered.eviction_watermark == oracle.eviction_watermark
    )


class TestCrashRecoveryDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovered_state_is_bit_identical_to_oracle(self, seed, tmp_path):
        rng = random.Random(seed)
        ops = _random_ops(rng)
        fail_after = rng.randint(2, 45)
        fsync = rng.choice(["never", "batch", "always"])
        cadence = rng.choice([None, 2, 4])
        store = DurableRecordStore(
            tmp_path,
            shard_seconds=SHARD_SECONDS,
            config=DurabilityConfig(
                fsync=fsync,
                snapshot_every_batches=cadence,
                fail_after_writes=fail_after,
            ),
        )

        applied = []
        crashed_op = None
        last_token = store.version_token()
        for op, arg in ops:
            try:
                if op == "ingest":
                    store.ingest_batch(arg)
                elif op == "evict":
                    store.evict_before(arg)
                else:
                    store.checkpoint()
            except SimulatedCrashError:
                crashed_op = (op, arg)
                break
            applied.append((op, arg))
            last_token = store.version_token()

        recovered = DurableRecordStore(tmp_path)
        # The op in flight at the crash is allowed to land on either side of
        # its commit point (e.g. the crash may hit the auto-checkpoint right
        # AFTER the batch's commit record became durable) — but the recovered
        # state must be bit-identical to exactly one of the two legal states.
        candidates = [("rolled-back", _build_oracle(applied))]
        if crashed_op is not None and crashed_op[0] in ("ingest", "evict"):
            candidates.append(("committed", _build_oracle(applied + [crashed_op])))
        matches = [
            (label, oracle)
            for label, oracle in candidates
            if _state_matches(recovered, oracle)
        ]
        assert matches, (
            f"recovered state matches neither the rolled-back nor the "
            f"committed oracle (seed {seed}, crashed op: "
            f"{crashed_op and crashed_op[0]})"
        )
        label, oracle = matches[0]
        if label == "rolled-back":
            # No partially-committed op: the recovered whole-table token is
            # bit-identical to the last token the pre-crash store reported.
            assert recovered.version_token() == last_token
        else:
            # The in-flight op committed: the persisted identity still makes
            # the token line up with the matching oracle's shard versions.
            assert recovered.version_token()[0] == last_token[0]
            assert recovered.version_token()[1] == oracle.version_token()[1]

        watermark = max(0.0, oracle.eviction_watermark)
        for lo, hi in ((watermark, 120.0), (watermark + 3.3, watermark + 41.0)):
            assert recovered.range_query(lo, hi) == oracle.range_query(lo, hi)
            assert (
                recovered.version_token(lo, hi)[1] == oracle.version_token(lo, hi)[1]
            )
        if oracle.eviction_watermark > 0.0:
            with pytest.raises(EvictedRangeError):
                recovered.range_query(oracle.eviction_watermark - 1e-6, 120.0)

        # Top-k through a real engine: recovered table ≡ oracle table.
        graph, matrix = _mini_space()
        recovered_iupt = IUPT(store=recovered)
        oracle_iupt = IUPT(store=oracle)
        slocs = sorted(graph.slocation_to_cell)
        window = (watermark, 120.0)
        ranking_recovered = QueryEngine(graph, matrix).top_k(
            recovered_iupt, slocs, 2, *window
        )
        ranking_oracle = QueryEngine(graph, matrix).top_k(
            oracle_iupt, slocs, 2, *window
        )
        assert [
            (entry.sloc_id, entry.flow) for entry in ranking_recovered.ranking
        ] == [(entry.sloc_id, entry.flow) for entry in ranking_oracle.ranking]
        assert ranking_recovered.flows == ranking_oracle.flows

        # The recovered store keeps working: ingest once more on both sides,
        # then recover a SECOND time — sequence-number reuse after the first
        # recovery (e.g. a regressed counter colliding with compacted
        # sequences) only materialises on the next replay.
        tail = [_workload_record(rng, 9, 123.0 + i) for i in range(3)]
        recovered.ingest_batch(tail)
        oracle.ingest_batch(tail)
        assert recovered.shard_versions() == oracle.shard_versions()
        recovered.close()
        second = DurableRecordStore(tmp_path)
        assert list(second.records_in_time_order()) == list(
            oracle.records_in_time_order()
        )
        assert second.shard_versions() == oracle.shard_versions()
        second.close()

    def test_crash_mid_multi_shard_batch_rolls_back_whole_batch(self, tmp_path):
        """A batch spanning 3 shards dies after 2 segment frames: recovery
        must not resurrect the half-written batch (commit never landed)."""
        store = DurableRecordStore(
            tmp_path,
            shard_seconds=SHARD_SECONDS,
            config=DurabilityConfig(fail_after_writes=4),
        )
        oracle = ShardedRecordStore(shard_seconds=SHARD_SECONDS)
        first = [_record(1, 1, 2.0)]
        store.ingest_batch(first)  # writes 2: one frame + one commit
        oracle.ingest_batch(first)
        spanning = [_record(2, 1, 5.0), _record(2, 2, 15.0), _record(2, 0, 25.0)]
        with pytest.raises(SimulatedCrashError):
            store.ingest_batch(spanning)  # dies on its 3rd frame
        recovered = DurableRecordStore(tmp_path)
        assert recovered.recovery_report["frames_skipped_uncommitted"] == 2
        assert list(recovered.records_in_time_order()) == list(
            oracle.records_in_time_order()
        )
        assert recovered.shard_versions() == oracle.shard_versions()
        recovered.close()

    @pytest.mark.parametrize("fail_after,evicted", [(6, False), (7, True)])
    def test_crash_straddling_the_eviction_commit_point(
        self, tmp_path, fail_after, evicted
    ):
        """The watermark record is the eviction's commit: a crash before it
        rolls the eviction back entirely; a crash after it (mid file
        deletion) must recover with the eviction fully applied."""
        store = DurableRecordStore(
            tmp_path,
            shard_seconds=SHARD_SECONDS,
            config=DurabilityConfig(fail_after_writes=fail_after),
        )
        for shard in range(3):  # 2 writes each: one frame + one commit
            store.ingest_batch([_record(1, 1, shard * SHARD_SECONDS + 1.0)])
        with pytest.raises(SimulatedCrashError):
            store.evict_before(2 * SHARD_SECONDS)  # write 7 is the watermark
        recovered = DurableRecordStore(tmp_path)
        if evicted:
            assert recovered.eviction_watermark == 2 * SHARD_SECONDS
            assert len(recovered) == 1
            with pytest.raises(EvictedRangeError):
                recovered.range_query(1.0, 30.0)
        else:
            assert recovered.eviction_watermark == float("-inf")
            assert len(recovered) == 3
            assert len(recovered.range_query(0.0, 30.0)) == 3
        recovered.close()

    def test_crash_mid_checkpoint_does_not_regress_the_sequence_counter(
        self, tmp_path
    ):
        """Regression: a crash after checkpoint deleted the segments but
        before it wrote the compacted control log leaves the snapshots'
        ``through`` values as the only witnesses of the highest committed
        sequence.  Recovery must resume above them — resuming below would
        hand an acknowledged batch a recycled sequence that the NEXT
        recovery skips as already-compacted, silently losing the batch."""
        store = DurableRecordStore(
            tmp_path,
            shard_seconds=SHARD_SECONDS,
            # 2 ingests cost 4 writes; checkpoint then spends 1 (snapshot)
            # + 1 (segment delete) and dies on the control-log rewrite.
            config=DurabilityConfig(fail_after_writes=6),
        )
        store.ingest_batch([_record(1, 1, 1.0)])
        store.ingest_batch([_record(1, 2, 2.0)])
        with pytest.raises(SimulatedCrashError):
            store.checkpoint()

        recovered = DurableRecordStore(tmp_path)
        acknowledged = [_record(2, 1, 3.0)]
        recovered.ingest_batch(acknowledged)  # must NOT reuse sequence 1 or 2
        recovered.close()
        final = DurableRecordStore(tmp_path)
        assert len(final) == 3
        assert [r.object_id for r in final.records_in_time_order()] == [1, 1, 2]
        final.close()

    def test_checkpoint_on_recover_purges_uncommitted_orphan_segments(
        self, tmp_path
    ):
        """Regression: a segment whose only frames are uncommitted crash
        garbage (the shard never loaded) must be purged by the recovery
        checkpoint, not re-scanned by every future recovery."""
        store = DurableRecordStore(
            tmp_path,
            shard_seconds=SHARD_SECONDS,
            config=DurabilityConfig(fail_after_writes=1),
        )
        with pytest.raises(SimulatedCrashError):
            store.ingest_batch([_record(1, 1, 1.0)])  # frame lands, commit doesn't
        recovered = DurableRecordStore(tmp_path)
        assert recovered.recovery_report["frames_skipped_uncommitted"] == 1
        assert not list((tmp_path / "wal").glob("segment-*.wal"))
        recovered.close()
        clean = DurableRecordStore(tmp_path)
        assert clean.recovery_report["segments_seen"] == 0
        clean.close()

    def test_torn_tail_truncation(self, tmp_path):
        """Bytes of a half-written frame at a segment tail are discarded."""
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        store.ingest_batch([_record(1, 1, 2.0)])
        store.close()
        segment = next((tmp_path / "wal").glob("segment-*.wal"))
        with open(segment, "ab") as handle:
            handle.write(encode_wal_frame({"seq": 99, "records": []})[:-3])
        recovered = DurableRecordStore(tmp_path)
        assert recovered.recovery_report["torn_tails_truncated"] == 1
        assert len(recovered) == 1
        recovered.close()


# ----------------------------------------------------------------------
# Service restart: manifest restore + resume
# ----------------------------------------------------------------------
class TestServiceRestart:
    def test_restarted_service_resumes_subscriptions_with_correct_pushes(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario
        records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
        history = [r for r in records if r.timestamp < 120.0]
        live = [r for r in records if r.timestamp >= 120.0]
        midpoint = 120.0 + (240.0 - 120.0) / 2
        first = [r for r in live if r.timestamp < midpoint]
        second = [r for r in live if r.timestamp >= midpoint]
        slocs = scenario.slocation_ids()

        def make_engine():
            return QueryEngine(scenario.system.graph, scenario.system.matrix)

        state = {}

        async def phase_one():
            iupt = IUPT.durable(tmp_path, shard_seconds=60.0)
            service = QueryService(make_engine(), iupt)
            host, port = await service.start()
            loader = await ServiceClient.connect(host, port)
            subscriber = await ServiceClient.connect(host, port)
            await loader.ingest_batch(history)
            subscription = await subscriber.subscribe_top_k(slocs, 3, 120.0, 240.0)
            await loader.ingest_batch(first)
            push = await subscription.next_update(timeout=10.0)
            assert push["seq"] == 1
            state["sub_id"] = subscription.sub_id
            state["last_result"] = subscription.result
            # Stop while the subscriber is still connected: the drain closes
            # the connection server-side and must DETACH the standing query
            # (keeping it in the manifest), not unregister it.
            await service.stop()  # flush-on-drain
            await subscriber.close()
            await loader.close()
            iupt.store.close()
            # The manifest survived the drain (connections were closed by
            # the server, so the standing query was detached, not dropped).
            manifest = json.loads(
                (tmp_path / "subscriptions.json").read_text()
            )
            assert [entry["id"] for entry in manifest] == [subscription.sub_id]

        async def phase_two():
            iupt = IUPT.durable(tmp_path)
            service = QueryService(make_engine(), iupt)
            host, port = await service.start()
            # The standing query was restored before any client connected.
            assert [s.sub_id for s in service.continuous.subscriptions] == [
                state["sub_id"]
            ]
            subscriber = await ServiceClient.connect(host, port)
            loader = await ServiceClient.connect(host, port)
            resumed = await subscriber.resume_subscription(state["sub_id"])
            # The resumed snapshot is bit-identical to the pre-restart one.
            assert resumed.result == state["last_result"]
            # Resuming an attached subscription is refused.
            with pytest.raises(ServiceError) as excinfo:
                await loader.resume_subscription(state["sub_id"])
            assert excinfo.value.kind == "bad_request"

            await loader.ingest_batch(second)
            push = await resumed.next_update(timeout=10.0)
            # Per-connection sequences restart at 1 and stay contiguous.
            assert push["seq"] == 1
            # The pushed result is bit-identical to a fresh in-process
            # continuous registration over the same recovered table.
            fresh = make_engine().continuous(service.iupt)
            expected = fresh.register_top_k(slocs, 3, 120.0, 240.0)
            assert push["result"] == protocol.result_to_wire(expected.result)
            fresh.close()
            # checkpoint over the wire (durable stores only).
            summary = await loader.checkpoint()
            assert summary["shards"] >= 1
            await subscriber.close()
            await loader.close()
            await service.stop()
            iupt.store.close()

        asyncio.run(phase_one())
        asyncio.run(phase_two())

    def test_checkpoint_op_rejected_on_volatile_store(self, small_real_scenario):
        scenario = small_real_scenario

        async def run():
            iupt = IUPT.sharded(shard_seconds=60.0)
            service = QueryService(
                QueryEngine(scenario.system.graph, scenario.system.matrix), iupt
            )
            host, port = await service.start()
            async with await ServiceClient.connect(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    await client.checkpoint()
                assert excinfo.value.kind == "bad_request"
            await service.stop()

        asyncio.run(run())
