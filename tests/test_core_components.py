"""Unit tests for the core components: paths, presence, reduction, flow, queries."""

from __future__ import annotations

import pytest

from repro import DataReductionConfig, SampleSet, TkPLQuery
from repro.core import (
    DataReducer,
    FlowComputer,
    PresenceComputation,
    rank_top_k,
)
from repro.core.paths import (
    build_possible_paths,
    candidate_path_count,
    total_candidate_probability,
)
from repro.core.query import SearchStats
from repro.core.reduction import ReductionStats


class TestPathConstruction:
    def test_candidate_count(self, figure1, figure1_iupt):
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[2]
        assert candidate_path_count(sequence) == 2 * 2 * 3 * 3
        assert candidate_path_count([]) == 0

    def test_invalid_transitions_are_pruned(self, figure1):
        plocs, matrix = figure1["plocs"], figure1["matrix"]
        sequence = [
            SampleSet.from_pairs([(plocs["p3"], 1.0)]),
            SampleSet.from_pairs([(plocs["p4"], 0.5), (plocs["p2"], 0.5)]),
        ]
        paths = build_possible_paths(sequence, matrix)
        assert len(paths) == 1
        assert paths[0].plocations == (plocs["p3"], plocs["p2"])

    def test_equivalent_concrete_paths_are_grouped(self, figure1):
        plocs, matrix = figure1["plocs"], figure1["matrix"]
        # p6 and p8 are both presence P-locations of the hallway cell, so the
        # four concrete combinations collapse into one group per tail.
        sequence = [
            SampleSet.from_pairs([(plocs["p6"], 0.5), (plocs["p8"], 0.5)]),
            SampleSet.from_pairs([(plocs["p6"], 0.5), (plocs["p8"], 0.5)]),
        ]
        paths = build_possible_paths(sequence, matrix)
        assert len(paths) == 2
        assert sum(p.probability for p in paths) == pytest.approx(1.0)

    def test_max_paths_bound(self, figure1):
        plocs, matrix = figure1["plocs"], figure1["matrix"]
        sequence = [
            SampleSet.from_pairs([(plocs["p2"], 0.5), (plocs["p5"], 0.5)])
            for _ in range(6)
        ]
        unbounded = build_possible_paths(sequence, matrix)
        bounded = build_possible_paths(sequence, matrix, max_paths=4)
        assert len(bounded) <= 4 < len(unbounded)
        assert sum(p.probability for p in bounded) < sum(p.probability for p in unbounded)

    def test_single_report_path_uses_adjacent_cells(self, figure1):
        plocs, matrix = figure1["plocs"], figure1["matrix"]
        paths = build_possible_paths([SampleSet.certain(plocs["p7"])], matrix)
        assert len(paths) == 1
        assert paths[0].step_cells == (matrix.cells_adjacent(plocs["p7"]),)

    def test_total_candidate_probability(self):
        sequence = [SampleSet.from_pairs([(1, 0.5), (2, 0.5)]), SampleSet.certain(1)]
        assert total_candidate_probability(sequence) == pytest.approx(1.0)
        assert total_candidate_probability([]) == 0.0


class TestPresence:
    def test_presence_bounded_by_one(self, figure1, figure1_iupt, figure1_flow_exact):
        graph = figure1["graph"]
        for sequence in figure1_iupt.sequences_in(1.0, 8.0).values():
            presence = figure1_flow_exact.presence_computation(sequence)
            for cell_id in graph.cells:
                value = presence.presence_in_cell(cell_id)
                assert 0.0 <= value <= 1.0

    def test_presence_cache_consistency(self, figure1, figure1_iupt, figure1_flow_exact):
        graph, slocs = figure1["graph"], figure1["slocs"]
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[2]
        presence = figure1_flow_exact.presence_computation(sequence)
        cell = graph.parent_cell(slocs["r6"])
        assert presence.presence_in_cell(cell) == presence.presence_in_cell(cell)

    def test_unknown_cell_gives_zero(self, figure1, figure1_iupt, figure1_flow_exact):
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[1]
        presence = figure1_flow_exact.presence_computation(sequence)
        assert presence.presence_in_cell(None) == 0.0
        assert presence.presence_in_cell(999) == 0.0

    def test_empty_paths_presence_zero(self):
        computation = PresenceComputation([])
        assert computation.presence_in_cell(1) == 0.0


class TestDataReduction:
    def test_intra_merge_merges_equivalent_plocations(self, figure1):
        graph, matrix, plocs = figure1["graph"], figure1["matrix"], figure1["plocs"]
        reducer = DataReducer(graph, matrix, DataReductionConfig(True, False, False))
        sequence = [
            SampleSet.from_pairs(
                [(plocs["p5"], 0.3), (plocs["p6"], 0.6), (plocs["p8"], 0.1)]
            )
        ]
        reduced = reducer.reduce(sequence, None)
        merged_set = reduced.sequence[0]
        representative = min(plocs["p6"], plocs["p8"])
        assert merged_set.plocation_set() == {plocs["p5"], representative}
        assert merged_set.probability_of(representative) == pytest.approx(0.7)

    def test_inter_merge_averages_probabilities(self, figure1):
        """Reproduces the Figure 4 example: o2's sequence shrinks from 32 to 8 candidates."""
        graph, matrix, plocs = figure1["graph"], figure1["matrix"], figure1["plocs"]
        reducer = DataReducer(graph, matrix, DataReductionConfig.enabled())
        sequence = [
            SampleSet.from_pairs([(plocs["p1"], 0.5), (plocs["p2"], 0.5)]),
            SampleSet.from_pairs([(plocs["p2"], 0.7), (plocs["p4"], 0.3)]),
            SampleSet.from_pairs(
                [(plocs["p5"], 0.3), (plocs["p6"], 0.6), (plocs["p8"], 0.1)]
            ),
            SampleSet.from_pairs(
                [(plocs["p5"], 0.2), (plocs["p6"], 0.3), (plocs["p8"], 0.5)]
            ),
        ]
        assert candidate_path_count(sequence) == 36  # 2*2*3*3 before reduction
        reduced = reducer.reduce(sequence, None)
        assert len(reduced.sequence) == 3
        assert candidate_path_count(list(reduced.sequence)) == 8
        merged = reduced.sequence[-1]
        representative = min(plocs["p6"], plocs["p8"])
        assert merged.probability_of(plocs["p5"]) == pytest.approx(0.25)
        assert merged.probability_of(representative) == pytest.approx(0.75)

    def test_psl_pruning(self, figure1):
        graph, matrix, plocs, slocs = (
            figure1["graph"],
            figure1["matrix"],
            figure1["plocs"],
            figure1["slocs"],
        )
        reducer = DataReducer(graph, matrix, DataReductionConfig.enabled())
        sequence = [SampleSet.certain(plocs["p3"])]  # only touches r3 / r4 cells
        relevant = reducer.reduce(sequence, {slocs["r3"]})
        assert not relevant.pruned
        irrelevant = reducer.reduce(sequence, {slocs["r1"]})
        assert irrelevant.pruned

    def test_disabled_config_is_identity(self, figure1):
        graph, matrix, plocs = figure1["graph"], figure1["matrix"], figure1["plocs"]
        reducer = DataReducer(graph, matrix, DataReductionConfig.disabled())
        sequence = [
            SampleSet.from_pairs([(plocs["p6"], 0.5), (plocs["p8"], 0.5)]),
            SampleSet.from_pairs([(plocs["p6"], 0.5), (plocs["p8"], 0.5)]),
        ]
        reduced = reducer.reduce(sequence, None)
        assert list(reduced.sequence) == sequence
        assert not reduced.pruned

    def test_stats_accumulate(self, figure1, figure1_iupt):
        graph, matrix = figure1["graph"], figure1["matrix"]
        reducer = DataReducer(graph, matrix, DataReductionConfig.enabled())
        stats = ReductionStats()
        for sequence in figure1_iupt.sequences_in(1.0, 8.0).values():
            reducer.reduce(sequence, None, stats)
        assert stats.objects_seen == 3
        assert stats.candidate_paths_after <= stats.candidate_paths_before
        assert stats.sample_sets_after <= stats.sample_sets_before


class TestFlowComputer:
    def test_reduction_changes_flow_only_slightly(self, figure1, figure1_iupt):
        slocs = figure1["slocs"]
        exact = FlowComputer(
            figure1["graph"], figure1["matrix"], DataReductionConfig.disabled()
        )
        reduced = FlowComputer(
            figure1["graph"], figure1["matrix"], DataReductionConfig.enabled()
        )
        flow_exact = exact.flow(figure1_iupt, slocs["r6"], 1.0, 8.0).flow
        flow_reduced = reduced.flow(figure1_iupt, slocs["r6"], 1.0, 8.0).flow
        assert flow_reduced <= flow_exact + 1e-9
        assert flow_reduced == pytest.approx(flow_exact, abs=0.5)

    def test_flow_stats_populated(self, figure1, figure1_iupt, figure1_flow_exact):
        slocs = figure1["slocs"]
        result = figure1_flow_exact.flow(figure1_iupt, slocs["r6"], 1.0, 8.0)
        assert result.stats.objects_total == 3
        assert result.stats.objects_computed == 3
        assert result.stats.path_stats.valid_paths > 0

    def test_empty_window_gives_zero_flow(self, figure1, figure1_iupt, figure1_flow_exact):
        slocs = figure1["slocs"]
        result = figure1_flow_exact.flow(figure1_iupt, slocs["r6"], 100.0, 200.0)
        assert result.flow == 0.0

    def test_flows_for_all(self, figure1, figure1_iupt, figure1_flow_exact):
        slocs = figure1["slocs"]
        flows = figure1_flow_exact.flows_for_all(
            figure1_iupt, sorted(slocs.values()), 1.0, 8.0
        )
        assert flows[slocs["r6"]] >= flows[slocs["r1"]]


class TestQueryTypes:
    def test_query_validation(self):
        with pytest.raises(ValueError):
            TkPLQuery.build([], 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            TkPLQuery.build([1, 2], 3, 0.0, 1.0)
        with pytest.raises(ValueError):
            TkPLQuery.build([1, 2], 1, 5.0, 1.0)
        with pytest.raises(ValueError):
            TkPLQuery.build([1, 2], 0, 0.0, 1.0)

    def test_rank_top_k_ties_by_id(self):
        ranking = rank_top_k({3: 1.0, 1: 1.0, 2: 2.0}, 3)
        assert [entry.sloc_id for entry in ranking] == [2, 1, 3]

    def test_search_stats_pruning_ratio(self):
        stats = SearchStats(objects_total=10)
        for object_id in range(4):
            stats.note_object_computed(object_id)
        assert stats.pruning_ratio == pytest.approx(0.6)
        assert SearchStats().pruning_ratio == 0.0
