"""Unit tests for the geometry primitives."""

from __future__ import annotations

import math

import pytest

from repro.geometry import Ellipse, Point, Polygon, Rect, decompose_rectilinear, interpolate


class TestPoint:
    def test_distance_same_floor(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_across_floors_is_infinite(self):
        assert Point(0, 0, 0).distance_to(Point(0, 0, 1)) == math.inf

    def test_manhattan(self):
        assert Point(1, 1).manhattan_to(Point(4, 5)) == pytest.approx(7.0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_midpoint_across_floors_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0, 0).midpoint(Point(1, 1, 1))

    def test_interpolate_endpoints(self):
        start, end = Point(0, 0), Point(10, 0)
        assert interpolate(start, end, 0.0) == start
        assert interpolate(start, end, 1.0) == end
        assert interpolate(start, end, 0.25) == Point(2.5, 0)

    def test_translated(self):
        assert Point(1, 2, 3).translated(1, -2) == Point(2, 0, 3)


class TestRect:
    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_area_and_center(self):
        rect = Rect(0, 0, 4, 2)
        assert rect.area == pytest.approx(8.0)
        assert rect.center == Point(2, 1)

    def test_contains_point_boundary_inclusive(self):
        rect = Rect(0, 0, 1, 1)
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(1, 1))
        assert not rect.contains_point(Point(1.01, 0.5))
        assert not rect.contains_point(Point(0.5, 0.5, floor=1))

    def test_intersection(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)
        overlap = a.intersection(b)
        assert overlap == Rect(1, 1, 2, 2)
        assert a.intersection_area(b) == pytest.approx(1.0)
        assert a.intersection(Rect(5, 5, 6, 6)) is None

    def test_union_and_enlargement(self):
        a, b = Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)
        union = a.union(b)
        assert union == Rect(0, 0, 3, 3)
        assert a.enlargement(b) == pytest.approx(union.area - a.area)

    def test_union_across_floors_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1, 0).union(Rect(0, 0, 1, 1, 1))

    def test_distance_to_point(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.distance_to_point(Point(1, 1)) == 0.0
        assert rect.distance_to_point(Point(5, 2)) == pytest.approx(3.0)
        assert rect.distance_to_point(Point(5, 6)) == pytest.approx(5.0)

    def test_sample_grid_inside(self):
        rect = Rect(0, 0, 10, 10)
        points = list(rect.sample_grid(2.5))
        assert points
        assert all(rect.contains_point(p) for p in points)

    def test_from_points(self):
        rect = Rect.from_points([Point(1, 1), Point(3, 0), Point(2, 4)])
        assert rect == Rect(1, 0, 3, 4)
        with pytest.raises(ValueError):
            Rect.from_points([])


class TestPolygon:
    def test_area_of_square(self):
        square = Polygon.from_rect(Rect(0, 0, 2, 2))
        assert square.area == pytest.approx(4.0)

    def test_contains_point(self):
        triangle = Polygon([Point(0, 0), Point(4, 0), Point(0, 4)])
        assert triangle.contains_point(Point(1, 1))
        assert triangle.contains_point(Point(0, 0))
        assert not triangle.contains_point(Point(3, 3))

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_decompose_rectilinear_covers_area(self):
        shape = Polygon.from_rect(Rect(0, 0, 4, 4))
        pieces = decompose_rectilinear(shape, 1.0)
        assert len(pieces) == 16
        assert sum(p.area for p in pieces) == pytest.approx(16.0)


class TestEllipse:
    def test_degenerate_circle(self):
        circle = Ellipse(Point(0, 0), Point(0, 0), 4.0)
        assert circle.semi_major == pytest.approx(2.0)
        assert circle.semi_minor == pytest.approx(2.0)
        assert circle.area == pytest.approx(math.pi * 4.0)
        assert circle.contains_point(Point(1.9, 0))
        assert not circle.contains_point(Point(2.1, 0))

    def test_major_axis_must_cover_foci(self):
        with pytest.raises(ValueError):
            Ellipse(Point(0, 0), Point(10, 0), 5.0)

    def test_intersection_area_with_rect(self):
        circle = Ellipse(Point(0, 0), Point(0, 0), 4.0)
        full = circle.intersection_area_with_rect(Rect(-3, -3, 3, 3), resolution=24)
        assert full == pytest.approx(circle.area, rel=0.1)
        assert circle.intersection_area_with_rect(Rect(10, 10, 12, 12)) == 0.0
