"""Replication: WAL cursors, binary frames, replicas, and the router.

Four layers, each asserted **bit-identical** against a non-replicated
oracle:

* the durable store's replication cursor API (``committed_batches_after``
  must reproduce exactly the ingested batches; the replay floor moves with
  checkpoints and evictions; followers hold WAL compaction back),
* the binary wire framing (``"bin"``-length-prefixed RPK1 payloads through
  the sans-I/O :class:`~repro.service.protocol.FrameAssembler`),
* the :class:`~repro.service.replica.ReadReplica` catch-up-then-tail loop
  (live replay, snapshot catch-up, fault-injected primary crash + restart,
  mixed-codec WALs, array-backend decode), and
* the :class:`~repro.service.router.PartitionRouter` (routed reads equal
  primary reads, read-your-writes, fallback when a replica dies).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro import IUPT, QueryEngine, QueryService, SampleSet, ServiceClient, ServiceError
from repro.codec.packed import PackedRecordBatch, encode_batch
from repro.data.records import PositioningRecord
from repro.service import protocol
from repro.service.client import ReconnectPolicy
from repro.service.protocol import FrameAssembler, ProtocolError
from repro.service.replica import ReadReplica
from repro.service.router import PartitionRouter
from repro.storage import (
    DurabilityConfig,
    DurableRecordStore,
    SimulatedCrashError,
)
from repro.storage.durable import WalCommit, WalEviction

SHARD_SECONDS = 10.0


def _record(object_id: int, ploc: int, timestamp: float) -> PositioningRecord:
    return PositioningRecord(
        object_id,
        SampleSet.from_pairs([(ploc, 0.625), (ploc + 1, 0.375)]),
        timestamp,
    )


def _batch(base_time: float, count: int = 4) -> list:
    return sorted(
        (
            _record(100 + i, i % 3, base_time + i * 2.5)
            for i in range(count)
        ),
        key=lambda r: r.timestamp,
    )


# ----------------------------------------------------------------------
# The durable store's replication cursor API
# ----------------------------------------------------------------------
class TestWalCursorApi:
    def test_committed_batches_replay_bit_identically(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        batches = [_batch(i * 20.0) for i in range(5)]
        for batch in batches:
            store.ingest_batch(batch)
        replayed = store.committed_batches_after(0)
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4, 5]
        for (seq, records), original in zip(replayed, batches):
            assert records == original
        # Partial cursors replay exactly the suffix.
        suffix = store.committed_batches_after(3)
        assert [seq for seq, _ in suffix] == [4, 5]
        assert suffix[0][1] == batches[3]
        assert store.committed_batches_after(5) == []
        store.close()

    def test_checkpoint_advances_the_replay_floor(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        store.ingest_batch(_batch(0.0))
        store.ingest_batch(_batch(20.0))
        assert store.can_replay_from(0)
        store.checkpoint()
        assert store.wal_base_seq == store.last_committed_seq == 2
        assert not store.can_replay_from(0)
        assert store.can_replay_from(2)
        with pytest.raises(ValueError):
            store.committed_batches_after(0)
        # Frames committed after the checkpoint replay from the floor.
        store.ingest_batch(_batch(40.0))
        assert [seq for seq, _ in store.committed_batches_after(2)] == [3]
        store.close()

    def test_eviction_advances_the_replay_floor(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        store.ingest_batch(_batch(0.0))
        store.ingest_batch(_batch(50.0))
        store.evict_before(30.0)
        assert store.wal_base_seq == store.last_committed_seq
        assert not store.can_replay_from(0)
        store.close()

    def test_wal_inventory_reports_segments_and_bytes(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        store.ingest_batch(_batch(0.0) + _batch(20.0))
        inventory = store.wal_inventory()
        assert inventory["segments"] >= 2
        assert inventory["segment_bytes"] > 0
        assert inventory["control_bytes"] > 0
        assert inventory["base_seq"] == 0
        assert inventory["last_seq"] == 1
        assert set(inventory["compaction"]) == {
            "size_triggered", "held_back", "forced_past_laggard",
        }
        per_shard = inventory["per_shard_bytes"]
        assert sum(per_shard.values()) == inventory["segment_bytes"]
        store.close()

    def test_commit_listeners_see_commits_and_evictions_in_order(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        events = []
        token = store.add_commit_listener(events.append)
        first = _batch(0.0)
        store.ingest_batch(first)
        store.ingest_batch(_batch(50.0))
        store.evict_before(15.0)  # dooms whole shard 0 ([0, 10))
        assert isinstance(events[0], WalCommit)
        assert events[0].seq == 1 and list(events[0].records) == first
        # The cached payload is the canonical RPK1 encoding of the batch.
        assert events[0].payload() == encode_batch(first)
        assert events[0].payload() is events[0].payload()  # cached
        assert isinstance(events[1], WalCommit) and events[1].seq == 2
        assert isinstance(events[2], WalEviction)
        assert events[2].watermark == 10.0  # shard-aligned, not the request
        assert store.remove_commit_listener(token)
        store.ingest_batch(_batch(80.0))
        assert len(events) == 3  # removed listeners stay silent
        store.close()

    def test_follower_lag_tracking(self, tmp_path):
        store = DurableRecordStore(tmp_path, shard_seconds=SHARD_SECONDS)
        for i in range(4):
            store.ingest_batch(_batch(i * 20.0))
        store.register_follower("r0", 1)
        lags = store.follower_lags()
        assert lags["r0"]["cursor"] == 1
        assert lags["r0"]["frames_behind"] == 3
        store.ack_follower("r0", 4)
        assert store.follower_lags()["r0"]["frames_behind"] == 0
        store.ack_follower("r0", 2)  # never backwards
        assert store.follower_lags()["r0"]["cursor"] == 4
        store.unregister_follower("r0")
        assert store.follower_lags() == {}
        store.close()

    def test_size_compaction_holds_back_for_a_close_follower(self, tmp_path):
        config = DurabilityConfig(
            compact_above_bytes=1, follower_lag_cap_frames=100
        )
        store = DurableRecordStore(
            tmp_path, shard_seconds=SHARD_SECONDS, config=config
        )
        store.register_follower("r0", 0)
        store.ingest_batch(_batch(0.0))
        # The follower is 1 frame behind (within the cap): held back.
        assert store.compaction_stats["held_back"] >= 1
        assert store.compaction_stats["size_triggered"] == 0
        assert store.can_replay_from(0)
        store.close()

    def test_size_compaction_forces_past_a_laggard(self, tmp_path):
        config = DurabilityConfig(
            compact_above_bytes=1, follower_lag_cap_frames=2
        )
        store = DurableRecordStore(
            tmp_path, shard_seconds=SHARD_SECONDS, config=config
        )
        store.register_follower("r0", 0)
        for i in range(4):
            store.ingest_batch(_batch(i * 20.0))
        assert store.compaction_stats["forced_past_laggard"] >= 1
        assert store.compaction_stats["size_triggered"] >= 1
        assert not store.can_replay_from(0)  # the laggard must re-snapshot
        store.close()


# ----------------------------------------------------------------------
# Binary wire frames
# ----------------------------------------------------------------------
class TestBinaryFrames:
    def test_encode_frame_emits_length_prefixed_payload(self):
        payload = b"\x00\x01binary\nbytes\xff"
        wire = protocol.encode_frame(
            {"id": 7, "op": "ingest_batch", protocol.BIN_PAYLOAD: payload}
        )
        header, rest = wire.split(b"\n", 1)
        assert rest == payload  # payload is raw, no trailing newline
        frame = protocol.decode_frame(header)
        assert frame[protocol.BIN_LENGTH] == len(payload)
        assert protocol.BIN_PAYLOAD not in frame  # never JSON-encoded

    def test_assembler_reassembles_binary_frames_across_chunks(self):
        payload = bytes(range(256)) * 3
        wire = protocol.encode_frame(
            {"push": "wal", "seq": 4, protocol.BIN_PAYLOAD: payload}
        ) + protocol.encode_frame({"id": 1, "ok": True, "result": {"pong": True}})
        assembler = FrameAssembler()
        frames = []
        for i in range(0, len(wire), 7):  # drip-feed 7 bytes at a time
            frames.extend(assembler.feed(wire[i : i + 7]))
        assert len(frames) == 2
        assert frames[0]["seq"] == 4
        assert frames[0][protocol.BIN_PAYLOAD] == payload
        assert frames[1]["result"] == {"pong": True}
        assert assembler.pending_bytes == 0

    def test_assembler_rejects_oversized_declared_payloads(self):
        assembler = FrameAssembler(max_frame_bytes=64)
        wire = b'{"id": 1, "bin": 65}\n'
        with pytest.raises(ProtocolError):
            assembler.feed(wire)

    def test_record_payload_round_trip_is_bit_exact(self):
        records = _batch(0.0, count=9)
        payload = protocol.records_to_payload(records)
        assert protocol.records_from_payload(payload) == records
        # The stdlib-array backend decodes the same bytes to the same
        # records — a numpy primary can feed an array-backend replica.
        assert PackedRecordBatch.decode(payload, backend="array").to_records() == records

    def test_shard_sections_round_trip(self):
        sections = [
            (0, 3, encode_batch(_batch(0.0))),
            (2, 1, encode_batch(_batch(25.0))),
            (5, 7, b""),
        ]
        payload = protocol.encode_shard_sections(sections)
        assert protocol.decode_shard_sections(payload) == sections
        with pytest.raises(ProtocolError):
            protocol.decode_shard_sections(payload[:-1])  # truncated


# ----------------------------------------------------------------------
# Service-level fixtures (mirrors test_service's conventions)
# ----------------------------------------------------------------------
HISTORY = 120.0
DURATION = 240.0
SERVICE_SHARD_SECONDS = 60.0


def _split_stream(scenario):
    records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    history = [r for r in records if r.timestamp < HISTORY]
    live = [r for r in records if r.timestamp >= HISTORY]
    return history, live


def _make_engine(scenario) -> QueryEngine:
    return QueryEngine(scenario.system.graph, scenario.system.matrix)


async def _start_primary(scenario, tmp_path, preload=None, config=None, port=0):
    iupt = IUPT.durable(
        tmp_path, shard_seconds=SERVICE_SHARD_SECONDS, config=config
    )
    service = QueryService(
        _make_engine(scenario), iupt, port=port, query_workers=2
    )
    host, bound_port = await service.start()
    if preload:
        async with await ServiceClient.connect(host, bound_port) as client:
            await client.ingest_batch(preload)
    return service, host, bound_port


async def _assert_reads_match(primary_client, replica_client, slocs):
    for start, end in ((0.0, DURATION), (0.0, HISTORY), (30.0, 200.0)):
        assert await replica_client.top_k(slocs, 3, start, end) == \
            await primary_client.top_k(slocs, 3, start, end)
    assert await replica_client.flows(slocs[:4], 0.0, DURATION) == \
        await primary_client.flows(slocs[:4], 0.0, DURATION)


# ----------------------------------------------------------------------
# Binary ingest over the wire
# ----------------------------------------------------------------------
class TestBinaryIngest:
    def test_binary_and_json_ingest_build_identical_tables(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario
        history, _ = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            svc_a, host_a, port_a = await _start_primary(
                scenario, tmp_path / "bin"
            )
            svc_b, host_b, port_b = await _start_primary(
                scenario, tmp_path / "json"
            )
            async with await ServiceClient.connect(host_a, port_a) as a, \
                    await ServiceClient.connect(host_b, port_b) as b:
                receipt_bin = await a.ingest_batch(history, binary=True)
                receipt_json = await b.ingest_batch(history, binary=False)
                assert receipt_bin == receipt_json
                assert receipt_bin["seq"] == 1
                assert await a.top_k(slocs, 3, 0.0, HISTORY) == \
                    await b.top_k(slocs, 3, 0.0, HISTORY)
            # The tables are bit-identical down to their version maps.
            assert svc_a.iupt.store.shard_versions() == \
                svc_b.iupt.store.shard_versions()
            await svc_a.stop()
            await svc_b.stop()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Read replicas
# ----------------------------------------------------------------------
class TestReplicaConvergence:
    def test_live_tail_converges_bit_identically(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_primary(
                scenario, tmp_path, preload=history
            )
            replica = ReadReplica(_make_engine(scenario), host, port, name="r0")
            rhost, rport = await replica.start()
            assert replica.snapshot_catchups == 0  # cursor 0 was replayable
            seq = None
            async with await ServiceClient.connect(host, port) as primary:
                step = max(1, len(live) // 4)
                for i in range(0, len(live), step):
                    seq = (await primary.ingest_batch(live[i : i + step]))["seq"]
                await replica.wait_applied(seq)
                async with await ServiceClient.connect(rhost, rport) as rc:
                    await _assert_reads_match(primary, rc, slocs)
                    status = await rc.replica_status()
                    assert status["role"] == "replica"
                    assert status["read_only"] is True
                    assert status["applied_seq"] == seq
                    with pytest.raises(ServiceError) as excinfo:
                        await rc.evict_before(1.0)
                    assert excinfo.value.kind == "bad_request"
            # Same commit prefix, same store uid: equal version tokens.
            assert replica.iupt.store.shard_versions() == \
                service.iupt.store.shard_versions()
            assert replica.iupt.store.version_token() == \
                service.iupt.store.version_token()
            await replica.stop()
            await service.stop()

        asyncio.run(run())

    def test_snapshot_catch_up_when_the_floor_moved(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            # Aggressive checkpointing: the replay floor chases the head, so
            # a replica joining from cursor 0 must catch up via snapshot.
            service, host, port = await _start_primary(
                scenario,
                tmp_path,
                preload=history,
                config=DurabilityConfig(snapshot_every_batches=1),
            )
            async with await ServiceClient.connect(host, port) as primary:
                seq = (await primary.ingest_batch(live))["seq"]
                replica = ReadReplica(
                    _make_engine(scenario), host, port, name="late"
                )
                rhost, rport = await replica.start()
                assert replica.snapshot_catchups == 1
                await replica.wait_applied(seq)
                async with await ServiceClient.connect(rhost, rport) as rc:
                    await _assert_reads_match(primary, rc, slocs)
                assert replica.iupt.store.version_token() == \
                    service.iupt.store.version_token()
                await replica.stop()
            await service.stop()

        asyncio.run(run())

    def test_eviction_ships_to_the_replica(self, small_real_scenario, tmp_path):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_primary(
                scenario, tmp_path, preload=history
            )
            replica = ReadReplica(_make_engine(scenario), host, port, name="r0")
            rhost, rport = await replica.start()
            async with await ServiceClient.connect(host, port) as primary:
                seq = (await primary.ingest_batch(live))["seq"]
                await replica.wait_applied(seq)
                await primary.evict_before(HISTORY)
                deadline = asyncio.get_running_loop().time() + 10.0
                while replica.applied_evictions < 1:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                assert replica.iupt.store.eviction_watermark == \
                    service.iupt.store.eviction_watermark
                async with await ServiceClient.connect(rhost, rport) as rc:
                    assert await rc.top_k(slocs, 3, HISTORY, DURATION) == \
                        await primary.top_k(slocs, 3, HISTORY, DURATION)
            await replica.stop()
            await service.stop()

        asyncio.run(run())

    def test_mixed_codec_wal_tails_to_a_replica(
        self, small_real_scenario, tmp_path
    ):
        """A WAL holding both JSON and binary segments ships identically:
        the cursor API decodes whatever is on disk and re-encodes RPK1."""
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            # First epoch: JSON-codec WAL frames.
            iupt = IUPT.durable(
                tmp_path,
                shard_seconds=SERVICE_SHARD_SECONDS,
                config=DurabilityConfig(codec="json"),
            )
            iupt.ingest_batch(history)
            iupt.store.close()
            # Second epoch: the same directory reopened under the binary
            # codec — new frames are RPK1, old ones stay JSON.
            iupt = IUPT.durable(
                tmp_path,
                shard_seconds=SERVICE_SHARD_SECONDS,
                config=DurabilityConfig(codec="binary"),
            )
            service = QueryService(
                _make_engine(scenario), iupt, query_workers=2
            )
            host, port = await service.start()
            async with await ServiceClient.connect(host, port) as primary:
                seq = (await primary.ingest_batch(live))["seq"]
                replica = ReadReplica(
                    _make_engine(scenario), host, port, name="mixed"
                )
                rhost, rport = await replica.start()
                await replica.wait_applied(seq)
                async with await ServiceClient.connect(rhost, rport) as rc:
                    await _assert_reads_match(primary, rc, slocs)
                assert replica.iupt.store.version_token() == \
                    service.iupt.store.version_token()
                await replica.stop()
            await service.stop()

        asyncio.run(run())


class TestFaultInjectedCatchUpThenTail:
    def test_replica_survives_a_primary_crash_and_restart(
        self, small_real_scenario, tmp_path
    ):
        """Kill the primary mid-stream with the WAL fault hook, restart it
        from its directory on the same port, and require the replica to
        reconnect, re-handshake, and reconverge bit-identically."""
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()
        step = max(1, len(live) // 8)

        async def run():
            # Crash after a bounded number of WAL writes, mid-stream.
            iupt = IUPT.durable(
                tmp_path,
                shard_seconds=SERVICE_SHARD_SECONDS,
                config=DurabilityConfig(fail_after_writes=16),
            )
            iupt.ingest_batch(history)  # commit seq 1
            service = QueryService(
                _make_engine(scenario), iupt, query_workers=2
            )
            host, port = await service.start()
            replica = ReadReplica(
                _make_engine(scenario),
                host,
                port,
                name="survivor",
                reconnect=ReconnectPolicy(
                    max_retries=40, initial_backoff=0.05, max_backoff=0.25
                ),
            )
            rhost, rport = await replica.start()

            crashed = False
            async with await ServiceClient.connect(host, port) as primary:
                for i in range(0, len(live), step):
                    try:
                        await primary.ingest_batch(live[i : i + step])
                    except ServiceError as error:
                        assert error.kind == "internal"
                        crashed = True
                        break
            assert crashed, "the fault hook never fired"
            await service.stop()

            # Restart from the directory on the SAME port — recovery
            # truncates the torn tail; the replica applied only committed
            # batches, so its cursor is exactly the recovered head.
            iupt = IUPT.durable(tmp_path, shard_seconds=SERVICE_SHARD_SECONDS)
            service = QueryService(
                _make_engine(scenario), iupt, port=port, query_workers=2
            )
            await service.start()
            async with await ServiceClient.connect(host, port) as primary:
                # Resume the stream exactly after the last *committed* live
                # batch (batch k covered live[(k-1)*step : k*step]).
                status = await primary.replica_status()
                committed_live = int(status["last_seq"]) - 1
                remaining = live[committed_live * step :]
                assert remaining, "the crash left nothing to resume"
                seq = (await primary.ingest_batch(remaining))["seq"]
                await replica.wait_applied(seq, timeout=30.0)
                assert replica.healthy
                async with await ServiceClient.connect(rhost, rport) as rc:
                    await _assert_reads_match(primary, rc, slocs)
            assert replica.iupt.store.version_token() == \
                service.iupt.store.version_token()
            await replica.stop()
            await service.stop()

        asyncio.run(run())


# ----------------------------------------------------------------------
# The partition router
# ----------------------------------------------------------------------
class TestPartitionRouter:
    def test_routed_reads_are_bit_identical_and_spread(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_primary(
                scenario, tmp_path, preload=history
            )
            replicas = []
            for i in range(2):
                replica = ReadReplica(
                    _make_engine(scenario), host, port, name=f"r{i}"
                )
                address = await replica.start()
                replicas.append((replica, address))
            router = PartitionRouter(
                (host, port), [address for _, address in replicas]
            )
            rhost, rport = await router.start()
            async with await ServiceClient.connect(rhost, rport) as routed, \
                    await ServiceClient.connect(host, port) as primary:
                # Writes route to the primary and set the freshness bound.
                seq = (await routed.ingest_batch(live))["seq"]
                assert router.last_write_seq == seq
                windows = [
                    (0.0, 60.0), (60.0, 120.0), (120.0, 180.0),
                    (0.0, DURATION), (90.0, 210.0),
                ]
                for start, end in windows:
                    assert await routed.top_k(slocs, 3, start, end) == \
                        await primary.top_k(slocs, 3, start, end)
                assert await routed.flows(slocs[:4], 0.0, DURATION) == \
                    await primary.flows(slocs[:4], 0.0, DURATION)
                batch = [
                    {"q": slocs, "k": 2, "start": 0.0, "end": DURATION},
                    {"q": slocs[:5], "k": 1, "start": 30.0, "end": 90.0},
                ]
                assert await routed.batch(batch) == await primary.batch(batch)
                status = await routed.request("replica_status")
                spread = status["router"]["reads_by_backend"]
                # Partition affinity used both replicas; nothing fell back.
                assert spread[0] == 0 and spread[1] > 0 and spread[2] > 0
                assert status["router"]["primary_fallbacks"] == 0
            await router.stop()
            for replica, _ in replicas:
                await replica.stop()
            await service.stop()

        asyncio.run(run())

    def test_router_relays_subscription_pushes(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_primary(
                scenario, tmp_path, preload=history
            )
            replica = ReadReplica(_make_engine(scenario), host, port, name="r0")
            address = await replica.start()
            router = PartitionRouter((host, port), [address])
            rhost, rport = await router.start()
            async with await ServiceClient.connect(rhost, rport) as routed:
                subscription = await routed.subscribe_top_k(
                    slocs, 3, 0.0, DURATION
                )
                await routed.ingest_batch(live)
                update = await subscription.next_update(timeout=15.0)
                assert update["push"] == "update"
                assert update["subscription"] == subscription.sub_id
                assert await routed.unsubscribe(subscription)
            await router.stop()
            await replica.stop()
            await service.stop()

        asyncio.run(run())

    def test_router_falls_back_to_the_primary_when_a_replica_dies(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario
        history, _ = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_primary(
                scenario, tmp_path, preload=history
            )
            replica = ReadReplica(_make_engine(scenario), host, port, name="r0")
            address = await replica.start()
            router = PartitionRouter(
                (host, port), [address], freshness_timeout=0.5
            )
            rhost, rport = await router.start()
            async with await ServiceClient.connect(rhost, rport) as routed, \
                    await ServiceClient.connect(host, port) as primary:
                expected = await primary.top_k(slocs, 3, 0.0, HISTORY)
                assert await routed.top_k(slocs, 3, 0.0, HISTORY) == expected
                await replica.stop()  # the only replica goes dark
                assert await routed.top_k(slocs, 3, 0.0, HISTORY) == expected
                status = await routed.request("replica_status")
                assert status["router"]["primary_fallbacks"] >= 1
            await router.stop()
            await service.stop()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Client reconnection
# ----------------------------------------------------------------------
class TestClientReconnect:
    def test_bounded_reconnect_with_backoff(self, small_real_scenario, tmp_path):
        scenario = small_real_scenario

        async def run():
            service, host, port = await _start_primary(scenario, tmp_path)
            client = await ServiceClient.connect(
                host,
                port,
                reconnect=ReconnectPolicy(
                    max_retries=10, initial_backoff=0.05, max_backoff=0.25
                ),
            )
            assert (await client.ping())["pong"] is True
            await service.stop()
            # Restart on the same port while the client retries.
            service = QueryService(
                _make_engine(scenario),
                IUPT.durable(tmp_path, shard_seconds=SERVICE_SHARD_SECONDS),
                port=port,
                query_workers=2,
            )
            await service.start()
            assert (await client.ping())["pong"] is True
            assert client.reconnects >= 1
            await client.close()
            await service.stop()

        asyncio.run(run())

    def test_without_a_policy_a_dead_connection_raises(
        self, small_real_scenario, tmp_path
    ):
        scenario = small_real_scenario

        async def run():
            service, host, port = await _start_primary(scenario, tmp_path)
            client = await ServiceClient.connect(host, port)
            await service.stop()
            with pytest.raises(ConnectionError):
                await client.ping()
            await client.close()

        asyncio.run(run())
