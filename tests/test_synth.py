"""Tests for the synthetic data generators (building, movement, positioning, RFID)."""

from __future__ import annotations

import pytest

from repro.space import PartitionKind
from repro.synth import (
    BuildingConfig,
    GridBuildingGenerator,
    MovementConfig,
    PositioningConfig,
    RFIDSimulator,
    RandomWaypointSimulator,
    WkNNPositioningSimulator,
    build_university_floorplan,
    university_floor_statistics,
)


class TestBuildingGenerator:
    def test_single_floor_structure(self):
        building = GridBuildingGenerator(
            BuildingConfig(floors=1, room_rows=2, rooms_per_row=3)
        ).generate()
        plan = building.plan
        summary = plan.summary()
        # 6 rooms + 2 row hallways + 1 vertical hallway + 1 staircase.
        assert summary["partitions"] == 10
        assert summary["slocations"] == summary["partitions"]
        assert len(building.room_partitions) == 6
        assert len(building.staircase_partitions) == 1

    def test_multi_floor_staircases_connect_floors(self):
        building = GridBuildingGenerator(
            BuildingConfig(floors=3, room_rows=1, rooms_per_row=2)
        ).generate()
        plan = building.plan
        assert plan.floors == [0, 1, 2]
        cross_floor_doors = [
            door
            for door in plan.doors.values()
            if plan.partitions[door.partition_ids[0]].floor
            != plan.partitions[door.partition_ids[1]].floor
        ]
        assert len(cross_floor_doors) == 2

    def test_guard_fraction_zero_merges_rooms_into_hallway_cell(self):
        from repro.space import derive_cells

        guarded = GridBuildingGenerator(
            BuildingConfig(floors=1, room_rows=1, rooms_per_row=3, door_guard_fraction=1.0)
        ).generate()
        unguarded = GridBuildingGenerator(
            BuildingConfig(floors=1, room_rows=1, rooms_per_row=3, door_guard_fraction=0.0)
        ).generate()
        assert len(derive_cells(unguarded.plan)) < len(derive_cells(guarded.plan))

    def test_partitions_do_not_overlap(self):
        building = GridBuildingGenerator(
            BuildingConfig(floors=1, room_rows=2, rooms_per_row=3)
        ).generate()
        partitions = list(building.plan.partitions.values())
        for i, first in enumerate(partitions):
            for second in partitions[i + 1 :]:
                assert first.rect.intersection_area(second.rect) == pytest.approx(0.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BuildingConfig(floors=0)
        with pytest.raises(ValueError):
            BuildingConfig(door_guard_fraction=1.5)

    def test_clamped_lattice_covers_thin_and_degenerate_rects(self):
        from repro.geometry import Rect
        from repro.synth.building import clamped_lattice

        thin = clamped_lattice(Rect(0, 28, 60, 32, 1), 6.0)  # 4 m hallway
        assert thin and all(28 < p.y < 32 for p in thin)
        degenerate = clamped_lattice(Rect(5, 5, 5, 9), 6.0)  # zero width
        assert degenerate == [Rect(5, 5, 5, 9).center]

    def test_every_partition_has_presence_plocations(self):
        """Thin hallways must get reference points despite the coarse lattice.

        The default grid step (6 m) exceeds the 4 m hallway width; the
        un-clamped lattice used to leave every hallway without a single
        presence P-location, which made hallway-transiting positioning
        sequences topologically inconsistent and zeroed every flow.
        """
        building = GridBuildingGenerator(
            BuildingConfig(floors=2, room_rows=2, rooms_per_row=5)
        ).generate()
        plan = building.plan
        covered = {
            ploc.partition_id
            for ploc in plan.plocations.values()
            if not ploc.is_partitioning
        }
        assert covered == set(plan.partitions)


class TestDefaultSyntheticFlows:
    """Regression for the ROADMAP open item: the default grid must produce flows.

    The default synthetic scenario used to yield all-zero flows (no presence
    P-locations in the hallways + uniform-random WkNN sampling at a 10 m
    radius made every object's path construction die), so ranking
    comparisons on it were tie-order only.
    """

    def test_default_grid_produces_non_trivial_flows(self):
        from repro.synth import build_synthetic_scenario

        scenario = build_synthetic_scenario(num_objects=8, duration_seconds=300.0)
        flows = scenario.system.flows(
            scenario.iupt,
            scenario.slocation_ids(),
            scenario.start_time,
            scenario.end_time,
        )
        positive = [value for value in flows.values() if value > 1e-6]
        assert len(positive) >= 5, f"expected several non-trivial flows, got {flows}"
        # The ranking must be a real ordering, not a tie-break artefact:
        # the top flows must be meaningfully large and not all identical.
        assert max(positive) > 0.05
        assert len({round(value, 9) for value in positive}) > 1


class TestUniversityFloor:
    def test_structure_matches_paper(self):
        plan = build_university_floorplan()
        summary = university_floor_statistics(plan)
        assert summary["partitions"] == 14  # 9 offices + 5 hallway segments
        assert summary["slocations"] == 14
        assert summary["partitioning_plocations"] == 13
        assert summary["plocations"] > 30

    def test_every_room_reachable(self):
        from repro.space import DoorGraphRouter

        plan = build_university_floorplan()
        router = DoorGraphRouter(plan)
        assert router.reachable_partitions(0) == sorted(plan.partitions)


class TestMovementSimulator:
    def test_trajectories_cover_lifespan_and_stay_indoors(self):
        plan = build_university_floorplan()
        simulator = RandomWaypointSimulator(
            plan, MovementConfig(dwell_min_seconds=5, dwell_max_seconds=20), seed=1
        )
        store = simulator.simulate(object_count=3, start_time=0.0, duration_seconds=120.0)
        assert len(store) == 3
        for trajectory in store:
            assert len(trajectory) > 10
            start, end = trajectory.time_span()
            assert 0.0 <= start < end <= 121.0 + 20.0
            for point in trajectory.points:
                assert point.partition_id is not None

    def test_deterministic_with_seed(self):
        plan = build_university_floorplan()
        config = MovementConfig(dwell_min_seconds=5, dwell_max_seconds=20)
        first = RandomWaypointSimulator(plan, config, seed=5).simulate(2, 0.0, 60.0)
        second = RandomWaypointSimulator(plan, config, seed=5).simulate(2, 0.0, 60.0)
        for a, b in zip(first, second):
            assert a.points == b.points

    def test_invalid_arguments(self):
        plan = build_university_floorplan()
        simulator = RandomWaypointSimulator(plan, seed=1)
        with pytest.raises(ValueError):
            simulator.simulate(0, 0.0, 10.0)
        with pytest.raises(ValueError):
            simulator.simulate(1, 0.0, -5.0)


class TestPositioningSimulator:
    @pytest.fixture(scope="class")
    def trajectories(self):
        plan = build_university_floorplan()
        simulator = RandomWaypointSimulator(
            plan, MovementConfig(dwell_min_seconds=5, dwell_max_seconds=30), seed=3
        )
        return plan, simulator.simulate(4, 0.0, 120.0)

    def test_reports_respect_mss_and_period(self, trajectories):
        plan, store = trajectories
        config = PositioningConfig(max_sample_set_size=3, max_period_seconds=4.0)
        simulator = WkNNPositioningSimulator(plan, config, seed=7)
        iupt = simulator.generate(store)
        assert len(iupt) > 0
        for record in iupt.records:
            assert 1 <= len(record.sample_set) <= 3
            assert sum(s.prob for s in record.sample_set) == pytest.approx(1.0)
        for object_id in iupt.object_ids():
            timestamps = [r.timestamp for r in iupt.records_of_object(object_id)]
            gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
            assert all(gap <= 4.0 + 1e-6 for gap in gaps)

    def test_samples_are_nearby_reference_points(self, trajectories):
        plan, store = trajectories
        config = PositioningConfig(positioning_error=2.0, candidate_radius_factor=1.5)
        simulator = WkNNPositioningSimulator(plan, config, seed=9)
        trajectory = next(iter(store))
        for timestamp, sample_set in simulator.reports_for(trajectory):
            true_location = trajectory.location_at(timestamp)
            for sample in sample_set:
                ploc = plan.plocations[sample.ploc_id]
                assert ploc.position.distance_to(true_location) <= config.candidate_radius + 3.5

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PositioningConfig(max_sample_set_size=0)
        with pytest.raises(ValueError):
            PositioningConfig(min_period_seconds=5.0, max_period_seconds=1.0)


class TestRFIDSimulator:
    def test_reader_ranges_do_not_overlap(self, small_synth_scenario):
        readers = list(small_synth_scenario.rfid.readers.values())
        for i, first in enumerate(readers):
            for second in readers[i + 1 :]:
                if first.position.floor != second.position.floor:
                    continue
                distance = first.position.distance_to(second.position)
                assert distance >= first.detection_range + second.detection_range - 1e-9

    def test_records_reference_known_readers_and_objects(self, small_synth_scenario):
        scenario = small_synth_scenario
        table = scenario.rfid
        object_ids = set(scenario.trajectories.object_ids())
        for record in table.records:
            assert record.reader_id in table.readers
            assert record.object_id in object_ids
            assert record.te >= record.ts

    def test_detection_matches_ground_truth(self, small_synth_scenario):
        """Whenever a record says the object was at a reader, the trajectory agrees."""
        scenario = small_synth_scenario
        table = scenario.rfid
        for record in list(table.records)[:50]:
            reader = table.readers[record.reader_id]
            trajectory = scenario.trajectories.get(record.object_id)
            midpoint = trajectory.location_at((record.ts + record.te) / 2.0)
            assert midpoint is not None
            assert reader.position.distance_to(midpoint) <= reader.detection_range + 2.0
