"""The packed binary codec and its vectorized scoring kernels.

Three contracts under test:

* **round-trip bit-identity** — record → packed bytes → record preserves
  every object id, timestamp and probability bit-exactly, on both array
  backends, and both backends emit byte-identical blobs (hypothesis sweeps
  duplicate-ploc merging, ``normalise=True`` rescaling, sample-set
  truncation and float edge values through the same path);
* **kernel differential equality** — the vectorized
  :class:`~repro.codec.kernels.PresenceMatrix` kernels reproduce the
  scalar kernels' flows *bitwise* (``struct``-compared), the same
  rankings, and the same ``flow_evaluations``, on the flat, sharded and
  continuous engines;
* **durable-store codec compatibility** — binary WAL segments and
  snapshots recover bit-identically (including through the fault-injection
  crash harness), old JSON directories stay recoverable, and segments may
  mix JSON and binary frames across restarts.
"""

from __future__ import annotations

import json
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataReductionConfig, IUPT, SampleSet
from repro.codec import (
    PackedRecordBatch,
    PresenceMatrix,
    active_backend,
    codec_info,
    decode_batch,
    encode_batch,
    numpy_available,
    resolve_backend,
)
from repro.data.records import PositioningRecord, Sample
from repro.engine import BatchPlanner, EngineConfig, QueryEngine
from repro.engine.stages import accumulate_flows_over_entries
from repro.core.query import SearchStats, TkPLQuery
from repro.experiments.runner import overlapping_queries
from repro.storage.durable import (
    DurabilityConfig,
    DurableRecordStore,
    SimulatedCrashError,
    decode_wal_frames,
    encode_segment_frame,
    encode_wal_frame,
    record_to_payload,
)

BACKENDS = [
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(not numpy_available(), reason="numpy not installed"),
    ),
    pytest.param("array"),
]


def bits(value: float) -> bytes:
    """The raw IEEE-754 representation — equality means *bit* equality."""
    return struct.pack("<d", value)


def records_equal_bitwise(left, right) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if a.object_id != b.object_id or bits(a.timestamp) != bits(b.timestamp):
            return False
        if len(a.sample_set) != len(b.sample_set):
            return False
        for sa, sb in zip(a.sample_set, b.sample_set):
            if sa.ploc_id != sb.ploc_id or bits(sa.prob) != bits(sb.prob):
                return False
    return True


def make_records(count: int = 10):
    records = []
    for i in range(count):
        pairs = [(j, 1.0 / (2 + i % 3)) for j in range(2 + i % 3)]
        records.append(
            PositioningRecord(
                i % 4,
                SampleSet.from_pairs(pairs, normalise=True),
                0.5 + i * 1.25,
            )
        )
    return records


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestPackedRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_bit_identical(self, backend):
        records = make_records(25)
        blob = encode_batch(records, backend=backend)
        decoded = decode_batch(blob, backend=backend)
        assert records_equal_bitwise(records, decoded)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_batch(self, backend):
        blob = encode_batch([], backend=backend)
        batch = PackedRecordBatch.decode(blob, backend=backend)
        assert len(batch) == 0
        assert batch.to_records() == []

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_backends_emit_identical_bytes(self):
        records = make_records(40)
        assert encode_batch(records, backend="numpy") == encode_batch(
            records, backend="array"
        )

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_cross_backend_decode(self):
        # A blob written by either backend parses identically on the other.
        records = make_records(12)
        blob = encode_batch(records, backend="numpy")
        assert records_equal_bitwise(
            decode_batch(blob, backend="array"), records
        )
        blob = encode_batch(records, backend="array")
        assert records_equal_bitwise(
            decode_batch(blob, backend="numpy"), records
        )

    def test_reencode_is_byte_stable(self):
        records = make_records(15)
        blob = encode_batch(records)
        assert encode_batch(decode_batch(blob)) == blob

    def test_decode_rejects_corruption(self):
        blob = encode_batch(make_records(5))
        with pytest.raises(ValueError):
            PackedRecordBatch.decode(blob[: len(blob) - 3])
        with pytest.raises(ValueError):
            PackedRecordBatch.decode(b"XXXX" + blob[4:])
        with pytest.raises(ValueError):
            PackedRecordBatch.decode(blob[:4] + b"\x09" + blob[5:])

    def test_timestamps_list_matches_records(self):
        records = make_records(9)
        batch = PackedRecordBatch.from_records(records)
        assert batch.timestamps_list() == [r.timestamp for r in records]

    def test_resolve_backend_validates(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")
        assert resolve_backend(None) in ("numpy", "array")

    def test_codec_info_shape(self):
        info = codec_info()
        assert info["codec_version"] == 1
        assert info["backend"] in ("numpy", "array")
        assert isinstance(info["numpy_available"], bool)


finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
probs = st.one_of(
    st.floats(min_value=1e-9, max_value=1.0, allow_nan=False, width=64),
    st.sampled_from([5e-324, 1e-300, 0.25, 1.0 / 3.0, 0.9999999999999999]),
)


@st.composite
def record_batches(draw):
    size = draw(st.integers(min_value=0, max_value=12))
    records = []
    for _ in range(size):
        count = draw(st.integers(min_value=1, max_value=6))
        # Non-unique on purpose: SampleSet merges duplicate p-locations.
        plocs = draw(
            st.lists(
                st.integers(min_value=0, max_value=8), min_size=count, max_size=count
            )
        )
        weights = draw(st.lists(probs, min_size=count, max_size=count))
        sample_set = SampleSet.from_pairs(list(zip(plocs, weights)), normalise=True)
        truncate = draw(st.integers(min_value=0, max_value=3))
        if truncate:
            sample_set = sample_set.truncated(truncate)
        records.append(
            PositioningRecord(
                draw(st.integers(min_value=0, max_value=2**40)),
                sample_set,
                draw(finite_floats),
            )
        )
    return records


class TestPackedProperties:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(records=record_batches())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, records, backend):
        blob = encode_batch(records, backend=backend)
        assert records_equal_bitwise(decode_batch(blob, backend=backend), records)

    @given(records=record_batches())
    @settings(max_examples=40, deadline=None)
    def test_packed_matches_json_payload_semantics(self, records):
        # The codec and the JSON WAL payloads must rebuild the exact same
        # records: both go through Sample(int, float) into SampleSet.
        from repro.storage.durable import record_from_payload

        via_json = [
            record_from_payload(json.loads(json.dumps(record_to_payload(r))))
            for r in records
        ]
        via_packed = decode_batch(encode_batch(records))
        assert records_equal_bitwise(via_json, via_packed)


# ----------------------------------------------------------------------
# Vectorized kernels: differential equality against the scalar path
# ----------------------------------------------------------------------
def flows_bitwise_equal(left, right) -> bool:
    if set(left) != set(right):
        return False
    return all(bits(left[sloc]) == bits(right[sloc]) for sloc in left)


def kernel_configs(backend):
    scalar = EngineConfig(scoring_kernel="scalar")
    vectorized = EngineConfig(scoring_kernel="vectorized")
    return scalar, vectorized


class TestVectorizedKernels:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matrix_kernels_match_scalar_on_figure1(
        self, figure1, figure1_iupt, backend
    ):
        engine = QueryEngine(
            figure1["graph"],
            figure1["matrix"],
            DataReductionConfig.enabled(),
            config=EngineConfig(scoring_kernel="scalar"),
        )
        slocs = sorted(figure1["slocs"].values())
        pipeline = engine.pipeline
        ctx = pipeline.context((1.0, 8.0), frozenset(slocs))
        sequences = pipeline.fetch.run(ctx, figure1_iupt)
        entries = pipeline.presences(ctx, sequences)
        graph = pipeline.flow_computer.graph
        parent_cells = {sloc: graph.parent_cell(sloc) for sloc in slocs}

        matrix = PresenceMatrix(entries, slocs, parent_cells, backend=backend)

        # Query kernel: every k-subset window against the scalar fold.
        for query_slocs in (slocs, slocs[:3], slocs[2:5]):
            query = TkPLQuery(tuple(query_slocs), 2, 1.0, 8.0)
            from repro.engine.batch import score_query_over_entries

            scalar = score_query_over_entries(
                query, entries, parent_cells, len(sequences)
            )
            vector_flows, evaluations = matrix.score_flows(query.query_slocations)
            assert flows_bitwise_equal(scalar.flows, vector_flows)
            assert evaluations == scalar.stats.flow_evaluations

        # Flows kernel: evaluation counting includes parentless S-locations.
        scalar_stats = SearchStats()
        scalar_flows = accumulate_flows_over_entries(
            entries, slocs, parent_cells, scalar_stats, kernel="scalar"
        )
        vector_flows, evaluations = matrix.accumulate_flows(slocs)
        assert flows_bitwise_equal(scalar_flows, vector_flows)
        assert evaluations == scalar_stats.flow_evaluations

    def test_batched_queries_bit_identical_across_kernels(self, small_real_scenario):
        # Runs against whichever backend is active; the CI fallback leg
        # re-runs the whole suite with REPRO_CODEC_BACKEND=array.
        scenario = small_real_scenario
        queries = overlapping_queries(
            scenario, count=6, k=3, q_fraction=0.5, delta_seconds=120.0, seed=7
        )
        reports = {}
        for kernel in ("scalar", "vectorized"):
            engine = QueryEngine(
                scenario.system.graph,
                scenario.system.matrix,
                DataReductionConfig.enabled(),
                config=EngineConfig(scoring_kernel=kernel),
            )
            reports[kernel] = engine.batch(scenario.iupt, queries)
        for scalar, vectorized in zip(
            reports["scalar"].results, reports["vectorized"].results
        ):
            assert flows_bitwise_equal(scalar.flows, vectorized.flows)
            assert scalar.top_k_ids() == vectorized.top_k_ids()
            assert (
                scalar.stats.flow_evaluations == vectorized.stats.flow_evaluations
            )

    @pytest.mark.parametrize("store_kind", ["flat", "sharded"])
    def test_flows_for_all_bit_identical_across_kernels(
        self, small_real_scenario, store_kind
    ):
        scenario = small_real_scenario
        if store_kind == "sharded":
            iupt = IUPT.sharded(shard_seconds=60.0)
            iupt.ingest_batch(scenario.iupt.records)
        else:
            iupt = scenario.iupt
        slocs = scenario.slocation_ids()
        start, end = scenario.query_interval(delta_seconds=180.0)
        flows = {}
        for kernel in ("scalar", "vectorized"):
            engine = QueryEngine(
                scenario.system.graph,
                scenario.system.matrix,
                DataReductionConfig.enabled(),
                config=EngineConfig(scoring_kernel=kernel),
            )
            flows[kernel] = engine.flows(iupt, slocs, start, end)
        assert flows_bitwise_equal(flows["scalar"], flows["vectorized"])

    def test_continuous_results_bit_identical_across_kernels(
        self, small_real_scenario
    ):
        scenario = small_real_scenario
        records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
        half = len(records) // 2
        slocs = scenario.slocation_ids()
        start, end = records[0].timestamp, records[-1].timestamp
        results = {}
        for kernel in ("scalar", "vectorized"):
            iupt = IUPT.sharded(shard_seconds=60.0)
            iupt.ingest_batch(records[:half])
            engine = QueryEngine(
                scenario.system.graph,
                scenario.system.matrix,
                DataReductionConfig.enabled(),
                config=EngineConfig(scoring_kernel=kernel),
            )
            continuous = engine.continuous(iupt)
            top = continuous.register_top_k(slocs, 3, start, end)
            flo = continuous.register_flows(slocs[:4], start, end)
            iupt.ingest_batch(records[half:])
            results[kernel] = (
                top.result.top_k_ids(),
                dict(top.result.flows),
                dict(flo.result),
            )
            continuous.close()
        assert results["scalar"][0] == results["vectorized"][0]
        assert flows_bitwise_equal(results["scalar"][1], results["vectorized"][1])
        assert flows_bitwise_equal(results["scalar"][2], results["vectorized"][2])

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=15, deadline=None)
    def test_property_random_queries_bit_identical(
        self, figure1, figure1_iupt, seed
    ):
        import random

        rng = random.Random(seed)
        slocs = sorted(figure1["slocs"].values())
        chosen = rng.sample(slocs, rng.randint(1, len(slocs)))
        k = rng.randint(1, len(chosen))
        start = rng.uniform(0.0, 4.0)
        end = start + rng.uniform(0.5, 6.0)
        query = TkPLQuery(tuple(chosen), k, start, end)
        answers = {}
        for kernel in ("scalar", "vectorized"):
            engine = QueryEngine(
                figure1["graph"],
                figure1["matrix"],
                DataReductionConfig.enabled(),
                config=EngineConfig(scoring_kernel=kernel),
            )
            report = BatchPlanner(engine.pipeline).execute(figure1_iupt, [query])
            answers[kernel] = report.results[0]
        assert answers["scalar"].top_k_ids() == answers["vectorized"].top_k_ids()
        assert flows_bitwise_equal(
            answers["scalar"].flows, answers["vectorized"].flows
        )

    def test_auto_kernel_resolution(self):
        config = EngineConfig()
        assert config.scoring_kernel == "auto"
        expected = "vectorized" if active_backend() == "numpy" else "scalar"
        assert config.resolved_scoring_kernel == expected
        assert EngineConfig(scoring_kernel="scalar").resolved_scoring_kernel == "scalar"
        with pytest.raises(ValueError):
            EngineConfig(scoring_kernel="simd")


# ----------------------------------------------------------------------
# Durable store: binary WAL + snapshots, mixed-codec recovery, crash harness
# ----------------------------------------------------------------------
def _stream(num_objects=6, ticks=40, period=7.5):
    records = []
    for tick in range(ticks):
        for obj in range(num_objects):
            t = tick * period + obj * 0.01
            pairs = [(obj % 5, 0.25), ((obj + tick) % 5 + 5, 0.75)]
            records.append(
                PositioningRecord(obj, SampleSet.from_pairs(pairs), t)
            )
    return records


def _batches(records, size=30):
    return [records[i : i + size] for i in range(0, len(records), size)]


class TestDurableBinaryCodec:
    def test_config_validates_codec(self):
        with pytest.raises(ValueError):
            DurabilityConfig(codec="protobuf")
        assert DurabilityConfig().codec == "binary"

    def test_binary_segments_and_snapshots_recover_bit_identically(self, tmp_path):
        records = _stream()
        oracle = IUPT.sharded(shard_seconds=120.0)
        store = DurableRecordStore(tmp_path / "t", shard_seconds=120.0)
        for batch in _batches(records):
            store.ingest_batch(batch)
            oracle.ingest_batch(batch)
        store.checkpoint()  # binary snapshots
        store.ingest_batch(records[-1:])  # plus one binary segment frame
        oracle.ingest_batch(records[-1:])
        tokens = store.version_token()
        store.close()

        recovered = DurableRecordStore(
            tmp_path / "t", config=DurabilityConfig(checkpoint_on_recover=False)
        )
        assert records_equal_bitwise(
            recovered.records_in_time_order(), oracle.store.records_in_time_order()
        )
        assert recovered.version_token() == tokens
        assert recovered.describe()["codec"] == "binary"
        recovered.close()

    def test_snapshot_recovery_is_lazy_until_queried(self, tmp_path):
        records = _stream()
        with DurableRecordStore(tmp_path / "t", shard_seconds=120.0) as store:
            store.ingest_batch(records)
            store.checkpoint()
            span = store.time_span()
            total = len(store)

        recovered = DurableRecordStore(
            tmp_path / "t", config=DurabilityConfig(checkpoint_on_recover=False)
        )
        report = recovered.recovery_report
        assert report["shards_loaded_lazily"] == recovered.shard_count > 0
        # Introspection that needs no record objects keeps shards packed.
        assert len(recovered) == total
        assert recovered.time_span() == span
        assert recovered.inner.unmaterialised_shard_count() == recovered.shard_count
        # A window query materialises exactly the shards it touches.
        results = recovered.range_query(0.0, 119.0)
        assert [r.timestamp for r in results] == [
            r.timestamp for r in records if r.timestamp <= 119.0
        ]
        assert recovered.inner.unmaterialised_shard_count() < recovered.shard_count
        recovered.close()

    def test_old_json_directory_recovers_under_binary_default(self, tmp_path):
        records = _stream()
        json_config = DurabilityConfig(codec="json")
        store = DurableRecordStore(
            tmp_path / "t", shard_seconds=120.0, config=json_config
        )
        for batch in _batches(records):
            store.ingest_batch(batch)
        store.checkpoint()
        store.ingest_batch(records[-2:])
        expected = store.records_in_time_order()
        tokens = store.version_token()
        store.close()

        # Default (binary) config reads the JSON directory unchanged.
        recovered = DurableRecordStore(
            tmp_path / "t", config=DurabilityConfig(checkpoint_on_recover=False)
        )
        assert records_equal_bitwise(recovered.records_in_time_order(), expected)
        assert recovered.version_token() == tokens
        recovered.close()

    def test_mixed_codec_segments_recover(self, tmp_path):
        """One segment file carrying JSON frames then binary frames replays
        both: codec dispatch is per frame, not per file."""
        records = _stream(num_objects=4, ticks=20)
        half = len(records) // 2
        store = DurableRecordStore(
            tmp_path / "t",
            shard_seconds=1e9,  # one shard: both codecs land in one segment
            config=DurabilityConfig(codec="json"),
        )
        store.ingest_batch(records[:half])
        store.close()
        store = DurableRecordStore(
            tmp_path / "t",
            config=DurabilityConfig(codec="binary", checkpoint_on_recover=False),
        )
        store.ingest_batch(records[half:])
        expected = store.records_in_time_order()
        store.close()

        segment = next((tmp_path / "t" / "wal").glob("segment-*.wal"))
        frames, _ = decode_wal_frames(segment.read_bytes())
        assert any("records" in frame for frame in frames)  # JSON era
        assert any("packed" in frame for frame in frames)  # binary era

        recovered = DurableRecordStore(
            tmp_path / "t", config=DurabilityConfig(checkpoint_on_recover=False)
        )
        assert records_equal_bitwise(recovered.records_in_time_order(), expected)
        recovered.close()

    def test_binary_frame_torn_tail_is_truncated(self, tmp_path):
        records = _stream(num_objects=3, ticks=6)
        frame = encode_segment_frame(1, records)
        good = encode_wal_frame({"kind": "noop"})
        data = frame + frame[: len(frame) // 2]
        frames, valid = decode_wal_frames(data)
        assert len(frames) == 1
        assert valid == len(frame)
        # A corrupt binary body (CRC valid, magic mangled) stops the parse.
        body_start = 8  # >II header
        mangled = bytearray(frame)
        mangled[body_start : body_start + 4] = b"RSGX"
        import zlib as _zlib

        mangled[4:8] = struct.pack(
            ">I", _zlib.crc32(bytes(mangled[body_start:]))
        )
        frames, valid = decode_wal_frames(bytes(mangled) + good)
        assert frames == []
        assert valid == 0

    def test_crash_harness_sweep_on_binary_wal(self, tmp_path):
        """The fault-injection sweep of tests/test_durable.py, aimed at the
        binary codec: at every write budget the recovered store equals an
        oracle that applied exactly the committed batches."""
        records = _stream(num_objects=4, ticks=12, period=33.0)
        batches = _batches(records, size=16)
        budget = 0
        sweep_saw_partial = False
        while True:
            directory = tmp_path / f"crash-{budget}"
            store = DurableRecordStore(
                directory,
                shard_seconds=120.0,
                config=DurabilityConfig(fail_after_writes=budget),
            )
            applied = []
            crashed = False
            for batch in batches:
                try:
                    store.ingest_batch(batch)
                    applied.append(batch)
                except SimulatedCrashError:
                    crashed = True
                    break
            if not crashed:
                store.close()

            recovered = DurableRecordStore(directory)
            oracle = IUPT.sharded(shard_seconds=120.0)
            for batch in applied:
                oracle.ingest_batch(batch)
            assert records_equal_bitwise(
                recovered.records_in_time_order(),
                oracle.store.records_in_time_order(),
            )
            recovered.close()
            if crashed and applied:
                sweep_saw_partial = True
            if not crashed:
                break
            budget += 1
        assert sweep_saw_partial  # the sweep actually exercised mid-stream crashes
