"""Tests for the SC / SC-ρ, MC, SCC, and UR comparison baselines."""

from __future__ import annotations

import pytest

from repro import (
    MonteCarlo,
    SemiConstrainedCounting,
    SimpleCounting,
    TkPLQuery,
    UncertaintyRegionFlow,
)
from repro.core import DataReductionConfig, FlowComputer


class TestSimpleCounting:
    def test_counts_objects_once_per_location(self, figure1, figure1_iupt):
        plan, slocs = figure1["plan"], figure1["slocs"]
        query = TkPLQuery.build(sorted(slocs.values()), 2, 1.0, 8.0)
        result = SimpleCounting(plan).search(figure1_iupt, query)
        # Flows are integer counts bounded by the number of objects (3).
        for flow in result.flows.values():
            assert flow == int(flow)
            assert 0 <= flow <= 3

    def test_threshold_variant_counts_more_samples(self, figure1, figure1_iupt):
        plan, slocs = figure1["plan"], figure1["slocs"]
        query = TkPLQuery.build(sorted(slocs.values()), 2, 1.0, 8.0)
        plain = SimpleCounting(plan).search(figure1_iupt, query)
        thresholded = SimpleCounting(plan, threshold=0.05).search(figure1_iupt, query)
        assert sum(thresholded.flows.values()) >= sum(plain.flows.values())

    def test_invalid_threshold(self, figure1):
        with pytest.raises(ValueError):
            SimpleCounting(figure1["plan"], threshold=1.5)

    def test_runs_on_scenario(self, small_real_scenario):
        scenario = small_real_scenario
        query = TkPLQuery.build(
            scenario.slocation_ids(), 3, scenario.start_time, scenario.end_time
        )
        result = SimpleCounting(scenario.plan).search(scenario.iupt, query)
        assert len(result.ranking) == 3


class TestMonteCarlo:
    def test_deterministic_with_seed(self, figure1, figure1_iupt):
        computer = FlowComputer(
            figure1["graph"], figure1["matrix"], DataReductionConfig.disabled()
        )
        slocs = figure1["slocs"]
        query = TkPLQuery.build(sorted(slocs.values()), 2, 1.0, 8.0)
        first = MonteCarlo(computer, rounds=50, seed=3).search(figure1_iupt, query)
        second = MonteCarlo(computer, rounds=50, seed=3).search(figure1_iupt, query)
        assert first.flows == second.flows

    def test_converges_towards_exact_flow(self, figure1, figure1_iupt, figure1_flow_exact):
        slocs = figure1["slocs"]
        query = TkPLQuery.build(sorted(slocs.values()), 2, 1.0, 8.0)
        computer = FlowComputer(
            figure1["graph"], figure1["matrix"], DataReductionConfig.disabled()
        )
        mc = MonteCarlo(computer, rounds=400, seed=11).search(figure1_iupt, query)
        exact_r6 = figure1_flow_exact.flow(figure1_iupt, slocs["r6"], 1.0, 8.0).flow
        assert mc.flows[slocs["r6"]] == pytest.approx(exact_r6, abs=0.35)
        assert mc.top_k_ids()[0] == slocs["r6"]

    def test_rounds_validation(self, figure1):
        computer = FlowComputer(figure1["graph"], figure1["matrix"])
        with pytest.raises(ValueError):
            MonteCarlo(computer, rounds=0)


class TestRFIDBaselines:
    def test_scc_counts_detected_objects(self, small_synth_scenario):
        scenario = small_synth_scenario
        assert scenario.rfid is not None and len(scenario.rfid.readers) > 0
        query = TkPLQuery.build(
            scenario.slocation_ids(), 3, scenario.start_time, scenario.end_time
        )
        result = SemiConstrainedCounting(scenario.plan, scenario.rfid).search(query)
        assert len(result.ranking) == 3
        assert all(flow == int(flow) for flow in result.flows.values())
        assert max(result.flows.values()) <= len(scenario.trajectories)

    def test_scc_reader_mapping(self, small_synth_scenario):
        scenario = small_synth_scenario
        scc = SemiConstrainedCounting(scenario.plan, scenario.rfid)
        mapped_readers = set()
        for sloc_id in scenario.slocation_ids():
            mapped_readers |= scc.readers_of(sloc_id)
        assert mapped_readers <= set(scenario.rfid.readers)

    def test_ur_presence_bounded(self, small_synth_scenario):
        scenario = small_synth_scenario
        query = TkPLQuery.build(
            scenario.slocation_ids(), 3, scenario.start_time, scenario.end_time
        )
        result = UncertaintyRegionFlow(scenario.plan, scenario.rfid).search(query)
        objects = len(scenario.rfid.records_by_object(query.start, query.end))
        for flow in result.flows.values():
            assert 0.0 <= flow <= objects + 1e-9

    def test_ur_requires_positive_speed(self, small_synth_scenario):
        scenario = small_synth_scenario
        with pytest.raises(ValueError):
            UncertaintyRegionFlow(scenario.plan, scenario.rfid, max_speed=0.0)
