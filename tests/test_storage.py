"""Tests for the storage layer: flat/sharded equivalence, versioning, eviction.

The property the whole layer hangs on: a sharded table is *indistinguishable*
from a flat one through every query path — range queries, per-object
sequences, flows, and TkPLQ rankings must be bit-identical — while ingestion
versions advance per shard and window queries prune to overlapping shards.
"""

from __future__ import annotations

import random

import pytest

from repro import EngineConfig, IUPT, QueryEngine, SampleSet
from repro.data.records import PositioningRecord
from repro.storage import (
    EvictedRangeError,
    InMemoryRecordStore,
    ShardedRecordStore,
    make_store,
)


def _record(object_id: int, ploc: int, timestamp: float) -> PositioningRecord:
    return PositioningRecord(object_id, SampleSet.certain(ploc), timestamp)


def _mixed_records(count: int = 120, seed: int = 5):
    """Deterministic records spanning several 10-second shards, with ties."""
    rng = random.Random(seed)
    records = []
    for i in range(count):
        timestamp = round(rng.uniform(0.0, 60.0), 1)  # ties are likely
        records.append(_record(i % 7, (i * 3) % 9, timestamp))
    return records


class TestStoreEquivalence:
    @pytest.fixture()
    def pair(self):
        flat = IUPT()
        sharded = IUPT.sharded(shard_seconds=10.0)
        records = _mixed_records()
        flat.extend(records)
        sharded.ingest_batch(records)
        return flat, sharded

    @pytest.mark.parametrize(
        "window",
        [
            (0.0, 60.0),  # everything
            (9.5, 10.5),  # straddles one shard boundary
            (5.0, 35.0),  # straddles several boundaries
            (10.0, 20.0),  # exactly one shard (inclusive right boundary)
            (17.3, 17.3),  # point query
            (100.0, 200.0),  # empty
        ],
    )
    def test_range_query_identical(self, pair, window):
        flat, sharded = pair
        flat_result = [
            (r.object_id, r.timestamp, r.sample_set)
            for r in flat.range_query(*window)
        ]
        sharded_result = [
            (r.object_id, r.timestamp, r.sample_set)
            for r in sharded.range_query(*window)
        ]
        assert flat_result == sharded_result

    def test_sequences_identical_across_boundaries(self, pair):
        flat, sharded = pair
        for window in ((0.0, 60.0), (9.0, 31.0), (19.9, 20.1)):
            assert flat.sequences_in(*window) == sharded.sequences_in(*window)

    def test_introspection_matches(self, pair):
        flat, sharded = pair
        assert len(flat) == len(sharded)
        assert flat.object_ids() == sharded.object_ids()
        assert flat.time_span() == sharded.time_span()
        assert flat.summary()["records"] == sharded.summary()["records"]

    def test_transformations_preserve_store_kind(self, pair):
        _, sharded = pair
        truncated = sharded.with_max_sample_set_size(1)
        filtered = sharded.filtered_to_objects([0, 1])
        assert isinstance(truncated.store, ShardedRecordStore)
        assert isinstance(filtered.store, ShardedRecordStore)
        assert truncated.store.shard_seconds == sharded.store.shard_seconds
        assert filtered.object_ids() == [0, 1]


class TestShardedStore:
    def test_shard_pruning_probes_only_overlapping_shards(self):
        store = ShardedRecordStore(shard_seconds=10.0)
        store.ingest_batch([_record(1, 1, float(t)) for t in range(0, 60)])
        assert store.shard_count == 6
        assert store.overlapping_shard_keys(25.0, 34.9) == [2, 3]
        before = store.shards_probed
        store.range_query(25.0, 34.9)
        assert store.shards_probed - before == 2

    def test_batch_slices_bump_only_touched_shards(self):
        store = ShardedRecordStore(shard_seconds=10.0)
        store.ingest_batch([_record(1, 1, float(t)) for t in (1.0, 11.0, 21.0)])
        assert store.shard_versions() == {0: 1, 1: 1, 2: 1}
        receipt = store.ingest_batch([_record(2, 2, 15.0), _record(2, 2, 16.0)])
        assert receipt.shards_touched == (1,)
        assert store.shard_versions() == {0: 1, 1: 2, 2: 1}

    def test_version_token_scoped_to_window(self):
        store = ShardedRecordStore(shard_seconds=10.0)
        store.ingest_batch([_record(1, 1, 5.0), _record(1, 1, 15.0)])
        early = store.version_token(0.0, 9.0)
        late = store.version_token(10.0, 19.0)
        store.ingest_batch([_record(2, 2, 17.0)])
        assert store.version_token(0.0, 9.0) == early
        assert store.version_token(10.0, 19.0) != late

    def test_new_shard_invalidates_window_that_now_overlaps_it(self):
        store = ShardedRecordStore(shard_seconds=10.0)
        store.ingest_batch([_record(1, 1, 5.0)])
        token = store.version_token(0.0, 25.0)
        store.ingest_batch([_record(2, 2, 15.0)])
        assert store.version_token(0.0, 25.0) != token

    def test_tokens_differ_between_instances(self):
        a = ShardedRecordStore(shard_seconds=10.0)
        b = ShardedRecordStore(shard_seconds=10.0)
        record = _record(1, 1, 5.0)
        a.ingest_batch([record])
        b.ingest_batch([record])
        assert a.version_token() != b.version_token()

    def test_negative_timestamps_shard_correctly(self):
        store = ShardedRecordStore(shard_seconds=10.0)
        store.ingest_batch([_record(1, 1, -5.0), _record(1, 2, 5.0)])
        assert [r.timestamp for r in store.range_query(-10.0, 0.0)] == [-5.0]
        assert len(store.range_query(-10.0, 10.0)) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardedRecordStore(shard_seconds=0.0)
        with pytest.raises(ValueError):
            ShardedRecordStore(index_kind="hash")
        with pytest.raises(ValueError):
            make_store(kind="replicated")

    def test_bplus_index_kind_answers_identically(self):
        records = _mixed_records(count=80, seed=9)
        rtree_store = ShardedRecordStore(shard_seconds=10.0, index_kind="1dr-tree")
        bplus_store = ShardedRecordStore(shard_seconds=10.0, index_kind="bplus-tree")
        rtree_store.ingest_batch(records)
        bplus_store.ingest_batch(records)
        for window in ((0.0, 60.0), (7.5, 42.5)):
            assert [
                (r.object_id, r.timestamp) for r in rtree_store.range_query(*window)
            ] == [
                (r.object_id, r.timestamp) for r in bplus_store.range_query(*window)
            ]


class TestEviction:
    def _store(self) -> ShardedRecordStore:
        store = ShardedRecordStore(shard_seconds=10.0)
        store.ingest_batch([_record(1, 1, float(t)) for t in range(0, 50)])
        return store

    def test_evicts_whole_shards_only(self):
        store = self._store()
        dropped = store.evict_before(25.0)  # shards [0,10) and [10,20) go
        assert dropped == 20
        assert store.eviction_watermark == 20.0
        assert len(store) == 30

    def test_query_into_evicted_range_raises(self):
        store = self._store()
        store.evict_before(25.0)
        with pytest.raises(EvictedRangeError) as excinfo:
            store.range_query(5.0, 45.0)
        assert "evicted" in str(excinfo.value)
        # Queries entirely above the watermark still work.
        assert len(store.range_query(20.0, 45.0)) == 26

    def test_flow_on_evicted_window_raises_not_partial(self):
        """An engine query reaching evicted history fails loudly.

        A silently partial flow would look exactly like a small real flow;
        the storage layer must make the truncation impossible to miss.
        """
        iupt, engine = _figure_like_table(sharded=True)
        iupt.evict_before(15.0)
        with pytest.raises(EvictedRangeError):
            engine.flow(iupt, 0, 0.0, 30.0)
        # A window in the surviving range still answers.
        engine.flow(iupt, 0, 20.0, 30.0)

    def test_refilling_evicted_range_rejected(self):
        store = self._store()
        store.evict_before(25.0)
        with pytest.raises(ValueError):
            store.ingest_batch([_record(9, 1, 5.0)])

    def test_flat_store_evicts_strictly_below_cutoff(self):
        flat = InMemoryRecordStore()
        flat.ingest_batch([_record(1, 1, float(t)) for t in range(0, 50)])
        dropped = flat.evict_before(25.0)
        assert dropped == 25
        assert flat.eviction_watermark == 25.0
        assert len(flat) == 25
        # The survivor set starts exactly at the cut-off (inclusive).
        assert flat.records_in_time_order()[0].timestamp == 25.0
        with pytest.raises(EvictedRangeError):
            flat.range_query(5.0, 45.0)
        with pytest.raises(ValueError):
            flat.ingest_batch([_record(9, 1, 5.0)])  # no refilling history
        # Windows starting at the watermark still answer; both index kinds
        # were rebuilt consistently.
        assert len(flat.range_query(25.0, 49.0)) == 25

    def test_flat_eviction_bumps_version_and_notifies(self):
        flat = InMemoryRecordStore()
        flat.ingest_batch([_record(1, 1, float(t)) for t in range(10)])
        events = []
        flat.subscribe(events.append)
        token = flat.version_token()
        assert flat.evict_before(5.0) == 5
        assert flat.version_token() != token  # cached artefacts must die
        assert len(events) == 1 and events[0].records_dropped == 5
        # Dropping nothing is a no-op: no event, no watermark movement.
        assert flat.evict_before(3.0) == 0
        assert len(events) == 1
        assert flat.eviction_watermark == 5.0

    def test_eviction_below_a_window_keeps_its_token(self):
        """Routine retention must not invalidate cached windows above it."""
        store = self._store()
        token = store.version_token(30.0, 45.0)
        store.evict_before(25.0)
        assert store.version_token(30.0, 45.0) == token


class TestEvictionBoundaryParity:
    """The retention boundary contract of ``storage/base.py``, flat vs sharded.

    With the cut-off exactly on a shard boundary the two backends must be
    observationally identical: a record with ``timestamp == cutoff`` always
    survives, the watermark lands on the cut-off, and a window starting
    exactly at the watermark never raises.
    """

    CUTOFF = 20.0  # == a shard boundary for shard_seconds=10

    def _pair(self):
        records = [_record(1, 1, float(t)) for t in range(0, 40, 2)]
        boundary = _record(2, 3, self.CUTOFF)  # timestamp == cutoff
        flat = InMemoryRecordStore()
        sharded = ShardedRecordStore(shard_seconds=10.0)
        for store in (flat, sharded):
            store.ingest_batch(records + [boundary])
        return flat, sharded

    def test_record_at_cutoff_survives_on_both(self):
        flat, sharded = self._pair()
        for store in (flat, sharded):
            dropped = store.evict_before(self.CUTOFF)
            assert dropped == 10  # strictly-below records only
            survivors = [r.timestamp for r in store.records_in_time_order()]
            assert min(survivors) == self.CUTOFF
            assert sum(1 for t in survivors if t == self.CUTOFF) == 2

    def test_watermark_and_boundary_queries_identical(self):
        flat, sharded = self._pair()
        for store in (flat, sharded):
            store.evict_before(self.CUTOFF)
            assert store.eviction_watermark == self.CUTOFF
            # A window starting exactly at the watermark must not raise …
            at_watermark = store.range_query(self.CUTOFF, 40.0)
            assert [r.timestamp for r in at_watermark][0] == self.CUTOFF
            # … while one epsilon below must.
            with pytest.raises(EvictedRangeError):
                store.range_query(self.CUTOFF - 1e-9, 40.0)

    def test_post_eviction_answers_identical(self):
        flat, sharded = self._pair()
        for store in (flat, sharded):
            store.evict_before(self.CUTOFF)
        for window in ((20.0, 40.0), (20.0, 20.0), (25.0, 31.0)):
            flat_rows = [
                (r.object_id, r.timestamp, r.sample_set)
                for r in flat.range_query(*window)
            ]
            sharded_rows = [
                (r.object_id, r.timestamp, r.sample_set)
                for r in sharded.range_query(*window)
            ]
            assert flat_rows == sharded_rows

    def test_ingest_at_watermark_accepted_below_rejected_on_both(self):
        flat, sharded = self._pair()
        for store in (flat, sharded):
            store.evict_before(self.CUTOFF)
            store.ingest_batch([_record(7, 1, self.CUTOFF)])  # at watermark: ok
            with pytest.raises(ValueError):
                store.ingest_batch([_record(7, 1, self.CUTOFF - 0.5)])


class TestEmptyBatchParity:
    """An empty ``ingest_batch`` must be a no-op on every path.

    Regression for the flat store taking the lock and building receipts for
    empty batches while the sharded store short-circuited: neither may bump
    any version token, fire events, or trigger continuous refreshes.
    """

    @pytest.mark.parametrize("store_kind", ["flat", "sharded"])
    def test_no_version_bump_no_events(self, store_kind):
        store = make_store(store_kind, shard_seconds=10.0)
        store.ingest_batch([_record(1, 1, 5.0)])
        events = []
        store.subscribe(events.append)
        token = store.version_token()
        receipt = store.ingest_batch([])
        assert receipt.records_ingested == 0
        assert receipt.shards_touched == ()
        assert receipt.object_spans == ()
        assert store.version_token() == token
        assert events == []

    @pytest.mark.parametrize("store_kind", ["flat", "sharded"])
    def test_no_continuous_refresh(self, store_kind):
        iupt, engine = _figure_like_table(sharded=(store_kind == "sharded"))
        continuous = engine.continuous(iupt)
        subscription = continuous.register_top_k([0, 1], 1, 0.0, 30.0)
        refreshes = subscription.stats.refreshes
        iupt.ingest_batch([])
        assert subscription.stats.refreshes == refreshes
        assert subscription.stats.skipped == 0  # not even a skipped event
        continuous.close()


class TestBatchVersioning:
    def test_flat_extend_bumps_version_once_per_batch(self):
        iupt = IUPT()
        before = iupt.data_key
        iupt.extend([_record(1, 1, float(t)) for t in range(10)])
        after = iupt.data_key
        assert after[1] - before[1] == 1

    def test_flat_append_bumps_per_record(self):
        iupt = IUPT()
        before = iupt.data_key
        iupt.append(_record(1, 1, 0.0))
        iupt.append(_record(1, 1, 1.0))
        assert iupt.data_key[1] - before[1] == 2

    def test_ingest_receipt_reports_touched_shards(self):
        iupt = IUPT.sharded(shard_seconds=10.0)
        receipt = iupt.ingest_batch(
            [_record(1, 1, 5.0), _record(1, 1, 15.0), _record(1, 1, 17.0)]
        )
        assert receipt.records_ingested == 3
        assert receipt.shards_touched == (0, 1)


def _figure_like_table(sharded: bool):
    """A tiny two-room space plus an engine, for storage/engine integration."""
    from repro import FloorPlan, PartitionKind, Point, Rect
    from repro.space import IndoorLocationMatrix, IndoorSpaceLocationGraph

    plan = FloorPlan()
    room = plan.add_partition(Rect(0, 0, 6, 6), PartitionKind.ROOM, name="room")
    hall = plan.add_partition(Rect(0, 6, 12, 10), PartitionKind.HALLWAY, name="hall")
    door = plan.add_door(Point(3.0, 6.0), (room, hall))
    door_ploc = plan.add_partitioning_plocation(Point(3.0, 6.0), door)
    room_ploc = plan.add_presence_plocation(Point(3.0, 3.0), room)
    hall_ploc = plan.add_presence_plocation(Point(9.0, 8.0), hall)
    for partition in (room, hall):
        plan.add_slocation_for_partition(partition)
    plan.freeze()
    graph = IndoorSpaceLocationGraph.from_floorplan(plan)
    matrix = IndoorLocationMatrix.from_graph(graph).merged(graph)
    engine = QueryEngine(graph, matrix)

    iupt = IUPT.sharded(shard_seconds=10.0) if sharded else IUPT()
    for t in range(0, 30, 2):
        ploc = room_ploc if (t // 10) % 2 == 0 else hall_ploc
        iupt.report(1, SampleSet.from_pairs([(ploc, 0.7), (door_ploc, 0.3)]), float(t))
    return iupt, engine


class TestShardGranularInvalidation:
    """Regression: one ingest_batch invalidates at most the overlapping entries."""

    def test_ingest_preserves_cache_hits_for_non_overlapping_windows(self):
        iupt, engine = _figure_like_table(sharded=True)
        early, late = (0.0, 9.0), (20.0, 29.0)

        engine.flow(iupt, 0, *early)
        engine.flow(iupt, 0, *late)
        warm_baseline = engine.store.stats.hits
        engine.flow(iupt, 0, *early)
        assert engine.store.stats.hits > warm_baseline  # cache is warm

        # Stream a batch into the late shard only.
        iupt.ingest_batch(
            [_record(1, 1, 25.0)]
        )

        hits_before = engine.store.stats.hits
        misses_before = engine.store.stats.misses
        early_again = engine.flow(iupt, 0, *early)
        assert engine.store.stats.hits > hits_before, (
            "a batch touching only the late shard must not invalidate the "
            "early window's cached presences"
        )
        assert engine.store.stats.misses == misses_before
        del early_again

        # The overlapping window, by contrast, must recompute.
        misses_before = engine.store.stats.misses
        engine.flow(iupt, 0, *late)
        assert engine.store.stats.misses > misses_before

    def test_flat_store_invalidates_everything(self):
        iupt, engine = _figure_like_table(sharded=False)
        early, late = (0.0, 9.0), (20.0, 29.0)
        engine.flow(iupt, 0, *early)
        iupt.ingest_batch([_record(1, 1, 25.0)])
        misses_before = engine.store.stats.misses
        engine.flow(iupt, 0, *early)
        assert engine.store.stats.misses > misses_before, (
            "the flat store keys by whole-table version; any ingestion "
            "invalidates every cached window"
        )

    def test_whole_table_keys_opt_out(self):
        """shard_scoped_cache_keys=False reproduces invalidate-everything."""
        iupt, engine_default = _figure_like_table(sharded=True)
        # Rebuild an engine with shard-scoped keys disabled over the same space.
        engine = QueryEngine(
            engine_default.flow_computer.graph,
            engine_default.flow_computer.matrix,
            config=EngineConfig(shard_scoped_cache_keys=False),
        )
        early = (0.0, 9.0)
        engine.flow(iupt, 0, *early)
        iupt.ingest_batch([_record(1, 1, 25.0)])
        misses_before = engine.store.stats.misses
        engine.flow(iupt, 0, *early)
        assert engine.store.stats.misses > misses_before


class TestEngineEquivalenceOnScenario:
    """Sharded and flat scenarios answer TkPLQ bit-identically."""

    def test_rankings_bit_identical_across_stores(self, small_real_scenario):
        scenario = small_real_scenario
        flat_iupt = scenario.iupt
        sharded_iupt = IUPT.sharded(shard_seconds=60.0)
        sharded_iupt.ingest_batch(flat_iupt.records)

        slocs = scenario.slocation_ids()
        # Windows chosen to straddle the 60-second shard boundaries.
        windows = [(30.0, 90.0), (0.0, 240.0), (59.0, 61.0)]
        for window in windows:
            flat_flows = scenario.system.flows(flat_iupt, slocs, *window)
            sharded_flows = scenario.system.flows(sharded_iupt, slocs, *window)
            assert flat_flows == sharded_flows  # exact float equality

        for algorithm in ("naive", "nested-loop", "best-first"):
            flat_result = scenario.system.top_k(
                flat_iupt, slocs, k=3, start=30.0, end=90.0, algorithm=algorithm
            )
            sharded_result = scenario.system.top_k(
                sharded_iupt, slocs, k=3, start=30.0, end=90.0, algorithm=algorithm
            )
            assert flat_result.top_k_ids() == sharded_result.top_k_ids()
            assert [e.flow for e in flat_result.ranking] == [
                e.flow for e in sharded_result.ranking
            ]
