"""Reproduce the worked examples of the paper (Examples 1-4, Figure 3) exactly."""

from __future__ import annotations

import pytest

from repro import TkPLQuery
from repro.core import BestFirstTkPLQ, NaiveTkPLQ, NestedLoopTkPLQ
from repro.core.paths import build_possible_paths


def _cells(figure1, *room_names):
    graph = figure1["graph"]
    rooms = figure1["rooms"]
    return {graph.cell_of_partition[rooms[name]] for name in room_names}


class TestFigure1Topology:
    def test_cells_match_example_1(self, figure1):
        """r1 and r2 fuse into one cell; every other partition is its own cell."""
        graph = figure1["graph"]
        rooms = figure1["rooms"]
        assert graph.cell_of_partition[rooms["r1"]] == graph.cell_of_partition[rooms["r2"]]
        singles = {graph.cell_of_partition[rooms[name]] for name in ("r3", "r4", "r5", "r6")}
        assert len(singles) == 4
        assert graph.vertex_count == 5

    def test_plocation_adjacency_matches_figure_3_diagonal(self, figure1):
        graph, plocs = figure1["graph"], figure1["plocs"]
        assert graph.cells_of(plocs["p1"]) == frozenset(_cells(figure1, "r4", "r5"))
        assert graph.cells_of(plocs["p2"]) == frozenset(_cells(figure1, "r4", "r6"))
        assert graph.cells_of(plocs["p3"]) == frozenset(_cells(figure1, "r3", "r4"))
        assert graph.cells_of(plocs["p4"]) == frozenset(_cells(figure1, "r1", "r6"))
        assert graph.cells_of(plocs["p5"]) == frozenset(_cells(figure1, "r5", "r6"))
        assert graph.cells_of(plocs["p6"]) == frozenset(_cells(figure1, "r6"))
        assert graph.cells_of(plocs["p7"]) == frozenset(_cells(figure1, "r1"))
        assert graph.cells_of(plocs["p8"]) == frozenset(_cells(figure1, "r6"))
        assert graph.cells_of(plocs["p9"]) == frozenset(_cells(figure1, "r1", "r6"))


class TestFigure3Matrix:
    def test_p4_p9_connected_through_two_cells(self, figure1):
        matrix, plocs = figure1["matrix"], figure1["plocs"]
        assert matrix.cells_between(plocs["p4"], plocs["p9"]) == frozenset(
            _cells(figure1, "r1", "r6")
        )

    def test_p3_p4_not_directly_connected(self, figure1):
        matrix, plocs = figure1["matrix"], figure1["plocs"]
        assert matrix.cells_between(plocs["p3"], plocs["p4"]) == frozenset()

    def test_p8_contained_in_hallway_cell(self, figure1):
        matrix, plocs = figure1["matrix"], figure1["plocs"]
        assert matrix.cells_adjacent(plocs["p8"]) == frozenset(_cells(figure1, "r6"))

    def test_figure_3_row_p1(self, figure1):
        matrix, plocs = figure1["matrix"], figure1["plocs"]
        expected = {
            "p2": _cells(figure1, "r4"),
            "p3": _cells(figure1, "r4"),
            "p4": set(),
            "p5": _cells(figure1, "r5"),
            "p6": set(),
            "p7": set(),
            "p8": set(),
            "p9": set(),
        }
        for other, cells in expected.items():
            assert matrix.cells_between(plocs["p1"], plocs[other]) == frozenset(cells), other

    def test_equivalent_plocations(self, figure1):
        """p6 ≡ p8 (both presence in r6) and p4 ≡ p9 (both doors of cell c1 to r6)."""
        matrix, plocs = figure1["matrix"], figure1["plocs"]
        assert matrix.equivalent(plocs["p6"], plocs["p8"])
        assert matrix.equivalent(plocs["p4"], plocs["p9"])
        assert not matrix.equivalent(plocs["p2"], plocs["p5"])

    def test_merged_matrix_is_smaller(self, figure1):
        matrix = figure1["matrix"]
        merged = matrix.merged(figure1["graph"])
        assert merged.is_merged
        assert merged.dimension < matrix.dimension
        # Merged lookups agree with the raw matrix.
        plocs = figure1["plocs"]
        assert merged.cells_between(plocs["p4"], plocs["p9"]) == matrix.cells_between(
            plocs["p4"], plocs["p9"]
        )
        assert merged.cells_between(plocs["p3"], plocs["p4"]) == matrix.cells_between(
            plocs["p3"], plocs["p4"]
        )


class TestExample2ObjectPresence:
    def test_o3_has_four_possible_paths(self, figure1, figure1_iupt):
        matrix = figure1["matrix"]
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[3]
        paths = build_possible_paths(sequence, matrix)
        assert len(paths) == 4
        assert pytest.approx(sum(p.probability for p in paths)) == 1.0
        probabilities = sorted(round(p.probability, 2) for p in paths)
        assert probabilities == [0.16, 0.24, 0.24, 0.36]

    def test_o3_presence_in_r6_is_012(self, figure1, figure1_iupt, figure1_flow_exact):
        graph, slocs = figure1["graph"], figure1["slocs"]
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[3]
        presence = figure1_flow_exact.presence_computation(sequence)
        cell_r6 = graph.parent_cell(slocs["r6"])
        assert presence.presence_in_cell(cell_r6) == pytest.approx(0.12)

    def test_o3_presence_in_r1_is_zero(self, figure1, figure1_iupt, figure1_flow_exact):
        graph, slocs = figure1["graph"], figure1["slocs"]
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[3]
        presence = figure1_flow_exact.presence_computation(sequence)
        assert presence.presence_in_cell(graph.parent_cell(slocs["r1"])) == 0.0


class TestExample3IndoorFlow:
    def test_o1_presences(self, figure1, figure1_iupt, figure1_flow_exact):
        graph, slocs = figure1["graph"], figure1["slocs"]
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[1]
        presence = figure1_flow_exact.presence_computation(sequence)
        assert presence.presence_in_cell(graph.parent_cell(slocs["r1"])) == pytest.approx(0.5)
        assert presence.presence_in_cell(graph.parent_cell(slocs["r6"])) == pytest.approx(1.0)

    def test_o2_presences(self, figure1, figure1_iupt, figure1_flow_exact):
        graph, slocs = figure1["graph"], figure1["slocs"]
        sequence = figure1_iupt.sequences_in(1.0, 8.0)[2]
        presence = figure1_flow_exact.presence_computation(sequence)
        assert presence.presence_in_cell(graph.parent_cell(slocs["r1"])) == pytest.approx(0.0)
        assert presence.presence_in_cell(graph.parent_cell(slocs["r6"])) == pytest.approx(0.85)

    def test_flow_values_of_r6_and_r1(self, figure1, figure1_iupt, figure1_flow_exact):
        slocs = figure1["slocs"]
        flow_r6 = figure1_flow_exact.flow(figure1_iupt, slocs["r6"], 1.0, 8.0).flow
        flow_r1 = figure1_flow_exact.flow(figure1_iupt, slocs["r1"], 1.0, 8.0).flow
        assert flow_r6 == pytest.approx(1.97)
        assert flow_r1 == pytest.approx(0.5)


class TestExample4TopK:
    def test_top1_is_r6(self, figure1, figure1_iupt, figure1_flow_exact):
        slocs = figure1["slocs"]
        query = TkPLQuery.build([slocs["r1"], slocs["r6"]], 1, 1.0, 8.0)
        for algorithm in (NaiveTkPLQ, NestedLoopTkPLQ, BestFirstTkPLQ):
            result = algorithm(figure1_flow_exact).search(figure1_iupt, query)
            assert result.top_k_ids() == [slocs["r6"]]

    def test_all_algorithms_agree_on_full_ranking(
        self, figure1, figure1_iupt, figure1_flow_exact
    ):
        slocs = figure1["slocs"]
        query_set = sorted(slocs.values())
        query = TkPLQuery.build(query_set, len(query_set), 1.0, 8.0)
        rankings = []
        for algorithm in (NaiveTkPLQ, NestedLoopTkPLQ, BestFirstTkPLQ):
            result = algorithm(figure1_flow_exact).search(figure1_iupt, query)
            rankings.append(result.top_k_ids())
        assert rankings[0] == rankings[1] == rankings[2]
