"""The query service layer: protocol, admission, metrics, server, client.

The unit tests drive the sans-I/O pieces (wire protocol, admission
controller, latency histograms, client core) with no sockets at all; the
integration tests start a real :class:`~repro.service.server.QueryService`
on a loopback port inside ``asyncio.run`` and talk to it through
:class:`~repro.service.client.ServiceClient` connections, covering the
failure paths the wire exposes: malformed frames, queries into evicted
history, clients disconnecting mid-subscription, load shedding, and
graceful drain.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import (
    IUPT,
    QueryEngine,
    QueryService,
    ServiceClient,
    ServiceError,
    TkPLQuery,
)
from repro.service import protocol
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    REASON_CAPACITY,
    REASON_DRAINING,
    REASON_RATE,
)
from repro.service.client import ClientCore
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import FrameSplitter, ProtocolError
from repro.storage import EvictedRangeError


# ----------------------------------------------------------------------
# Protocol (sans-I/O)
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        frame = {"id": 7, "op": "top_k", "q": [1, 2], "k": 1, "start": 0.0, "end": 9.5}
        line = protocol.encode_frame(frame)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert protocol.decode_frame(line[:-1]) == frame

    def test_malformed_frame_raises_bad_frame(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_frame(b"{not json at all")
        assert excinfo.value.kind == "bad_frame"

    def test_non_object_frame_raises_bad_frame(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_frame(b"[1, 2, 3]")
        assert excinfo.value.kind == "bad_frame"

    def test_record_round_trip_is_bit_exact(self, figure1_iupt):
        records = list(figure1_iupt.records)
        wire = protocol.records_to_wire(records)
        rebuilt = protocol.records_from_wire(json.loads(json.dumps(wire)))
        assert rebuilt == records  # PositioningRecord/SampleSet equality

    def test_malformed_record_raises_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.records_from_wire([[1, "not-a-time", "nope"]])
        assert excinfo.value.kind == "bad_request"
        with pytest.raises(ProtocolError):
            protocol.records_from_wire({"records": []})

    def test_query_from_wire_validates(self):
        query = protocol.query_from_wire(
            {"q": [3, 1, 2], "k": 2, "start": 0, "end": 10}
        )
        assert query == TkPLQuery.build([3, 1, 2], 2, 0.0, 10.0)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.query_from_wire({"q": [1], "k": 5, "start": 0, "end": 10})
        assert excinfo.value.kind == "bad_request"
        with pytest.raises(ProtocolError):
            protocol.query_from_wire({"k": 1, "start": 0, "end": 10})

    def test_flows_round_trip_preserves_floats_exactly(self):
        flows = {5: 0.1 + 0.2, 2: 1.0 / 3.0, 9: 0.0}
        pairs = protocol.flows_to_wire(flows)
        assert [sloc for sloc, _ in pairs] == [2, 5, 9]
        decoded = protocol.flows_from_wire(json.loads(json.dumps(pairs)))
        assert decoded == flows  # exact: json round-trips doubles bit-for-bit

    def test_error_frame_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            protocol.error_frame(1, "made-up-kind", "boom")

    def test_evicted_error_frame_is_structured(self):
        frame = protocol.evicted_error_frame(4, EvictedRangeError(0.0, 60.0, 120.0))
        assert frame["ok"] is False
        error = frame["error"]
        assert error["kind"] == "evicted_range"
        assert (error["start"], error["end"], error["watermark"]) == (0.0, 60.0, 120.0)

    def test_frame_splitter_handles_partial_chunks(self):
        splitter = FrameSplitter()
        assert splitter.feed(b'{"a":') == []
        assert splitter.pending_bytes > 0
        lines = splitter.feed(b'1}\n{"b":2}\n{"tail"')
        assert lines == [b'{"a":1}', b'{"b":2}']
        assert splitter.feed(b":3}\n") == [b'{"tail":3}']
        assert splitter.pending_bytes == 0


# ----------------------------------------------------------------------
# Admission control (sans-I/O)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_capacity_bound_sheds_then_recovers(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=2))
        assert controller.admit("a") is None
        assert controller.admit("a") is None
        reason, _message = controller.admit("a")
        assert reason == REASON_CAPACITY
        controller.release()
        assert controller.admit("a") is None
        assert controller.stats.shed_capacity == 1
        assert controller.stats.peak_inflight == 2

    def test_release_without_admit_raises(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            controller.release()

    def test_rate_limit_is_per_client_and_refills(self):
        now = [0.0]
        controller = AdmissionController(
            AdmissionConfig(max_inflight=100, rate_per_second=1.0, burst=2),
            clock=lambda: now[0],
        )
        # Burst of 2 admitted, third shed; a different client is unaffected.
        assert controller.admit("a") is None
        assert controller.admit("a") is None
        reason, _ = controller.admit("a")
        assert reason == REASON_RATE
        assert controller.admit("b") is None
        # One second refills one token.
        now[0] = 1.0
        assert controller.admit("a") is None
        reason, _ = controller.admit("a")
        assert reason == REASON_RATE
        assert controller.stats.shed_rate == 2

    def test_draining_refuses_everything_new(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=4))
        assert controller.admit("a") is None
        controller.begin_drain()
        reason, _ = controller.admit("a")
        assert reason == REASON_DRAINING
        # The admitted request still owns its slot.
        assert controller.inflight == 1
        controller.release()
        assert controller.inflight == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(rate_per_second=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(burst=0)

    def test_as_dict_reports_state(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=3))
        controller.admit("a")
        summary = controller.as_dict()
        assert summary["inflight"] == 1
        assert summary["max_inflight"] == 3
        assert summary["admitted"] == 1
        assert summary["draining"] is False


# ----------------------------------------------------------------------
# Metrics (sans-I/O)
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_quantiles_and_overflow(self):
        histogram = LatencyHistogram()
        for _ in range(98):
            histogram.observe(0.002)
        histogram.observe(0.2)
        histogram.observe(99.0)  # beyond the last bound -> overflow bucket
        assert histogram.count == 100
        assert histogram.quantile(0.5) == 0.0025  # bucket upper bound
        assert histogram.quantile(0.99) == 0.25
        assert histogram.quantile(1.0) == 99.0  # falls through to max
        assert histogram.overflow == 1
        summary = histogram.as_dict()
        assert summary["count"] == 100
        assert summary["max_ms"] == 99000.0

    def test_quantile_validation_and_empty(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_registry_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.observe_request("top_k", 0.01)
        metrics.observe_request("top_k", 0.02, error_kind="bad_request")
        metrics.note_push()
        metrics.note_connection_opened()
        snapshot = metrics.snapshot(
            cache_stats={"hit_rate": 0.5},
            continuous_summary={"subscriptions": 1},
            admission={"inflight": 0},
        )
        assert snapshot["requests"] == {"total": 2, "by_op": {"top_k": 2}}
        assert snapshot["errors"]["by_kind"] == {"bad_request": 1}
        assert snapshot["latency_ms_by_op"]["top_k"]["count"] == 2
        assert snapshot["pushes"]["sent"] == 1
        assert snapshot["connections"]["active"] == 1
        assert snapshot["cache"]["hit_rate"] == 0.5
        assert snapshot["continuous"]["subscriptions"] == 1


# ----------------------------------------------------------------------
# Client core (sans-I/O)
# ----------------------------------------------------------------------
class TestClientCore:
    def test_requests_get_fresh_ids_and_classify_responses(self):
        core = ClientCore()
        id_a, wire_a = core.build_request("ping")
        id_b, _wire_b = core.build_request("stats")
        assert id_a != id_b
        assert json.loads(wire_a.decode())["op"] == "ping"
        events = core.feed_bytes(
            protocol.encode_frame({"id": id_a, "ok": True, "result": {"pong": True}})
        )
        assert events == [
            ("response", id_a, {"id": id_a, "ok": True, "result": {"pong": True}})
        ]
        assert id_a not in core.pending and id_b in core.pending

    def test_push_frames_are_classified_as_pushes(self):
        core = ClientCore()
        frame = protocol.push_update_frame(3, 1, "top_k", {"ranking": []})
        ((tag, received),) = core.feed_bytes(protocol.encode_frame(frame))
        assert tag == "push"
        assert received["subscription"] == 3

    def test_unwrap_raises_typed_service_error(self):
        with pytest.raises(ServiceError) as excinfo:
            ClientCore.unwrap(
                protocol.error_frame(1, "overloaded", "slow down", reason="rate")
            )
        assert excinfo.value.kind == "overloaded"
        assert excinfo.value.details["reason"] == "rate"


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------
HISTORY = 120.0
DURATION = 240.0
SHARD_SECONDS = 60.0


def _split_stream(scenario):
    records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    history = [r for r in records if r.timestamp < HISTORY]
    live = [r for r in records if r.timestamp >= HISTORY]
    return history, live


def _make_engine(scenario) -> QueryEngine:
    return QueryEngine(scenario.system.graph, scenario.system.matrix)


async def _start_service(scenario, preload, admission=None, query_workers=4):
    iupt = IUPT.sharded(shard_seconds=SHARD_SECONDS)
    if preload:
        iupt.ingest_batch(preload)
    service = QueryService(
        _make_engine(scenario), iupt, admission=admission, query_workers=query_workers
    )
    host, port = await service.start()
    return service, host, port


class TestServerIntegration:
    def test_queries_bit_identical_to_direct_engine_calls(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            reference = _make_engine(scenario)
            async with await ServiceClient.connect(host, port) as client:
                served = await client.top_k(slocs, 3, 0.0, HISTORY)
                direct = reference.top_k(service.iupt, slocs, 3, 0.0, HISTORY)
                assert served == protocol.result_to_wire(direct)

                served_flows = await client.flows(slocs[:4], 0.0, HISTORY)
                direct_flows = reference.flows(service.iupt, slocs[:4], 0.0, HISTORY)
                assert served_flows == {
                    "flows": protocol.flows_to_wire(direct_flows)
                }

                sloc = slocs[0]
                served_flow = await client.flow(sloc, 0.0, HISTORY)
                direct_flow = reference.flow(service.iupt, sloc, 0.0, HISTORY)
                assert served_flow == {"sloc": sloc, "flow": direct_flow.flow}

                queries = [
                    {"q": slocs, "k": 2, "start": 0.0, "end": HISTORY},
                    {"q": slocs[:5], "k": 1, "start": 30.0, "end": 90.0},
                ]
                served_batch = await client.batch(queries)
                direct_batch = reference.batch_top_k(
                    service.iupt,
                    [protocol.query_from_wire(query) for query in queries],
                )
                assert served_batch == {
                    "results": [protocol.result_to_wire(r) for r in direct_batch]
                }
            await service.stop()

        asyncio.run(run())

    def test_malformed_frame_gets_error_and_connection_survives(
        self, small_real_scenario
    ):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)

        async def run():
            service, host, port = await _start_service(scenario, history)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is { not json\n")
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["ok"] is False
            assert frame["error"]["kind"] == "bad_frame"
            assert frame["id"] is None
            # The connection is still serviceable after the bad frame.
            writer.write(protocol.encode_frame({"id": 9, "op": "ping"}))
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["id"] == 9 and frame["ok"] is True
            writer.close()
            await writer.wait_closed()
            await service.stop()

        asyncio.run(run())

    def test_oversized_frame_fails_structurally_not_silently(
        self, small_real_scenario, monkeypatch
    ):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 4096)

        async def run():
            service, host, port = await _start_service(scenario, history)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"id": 1, "op": "ping", "pad": "' + b"x" * 8192 + b'"}\n')
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["ok"] is False
            assert frame["error"]["kind"] == "bad_frame"
            assert "limit" in frame["error"]["message"]
            # The stream cannot be resynchronised: the server closes it.
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            await service.stop()

        asyncio.run(run())

    def test_unknown_op_and_bad_request_errors(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)

        async def run():
            service, host, port = await _start_service(scenario, history)
            async with await ServiceClient.connect(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    await client.request("teleport")
                assert excinfo.value.kind == "unknown_op"
                with pytest.raises(ServiceError) as excinfo:
                    await client.top_k([], 1, 0.0, 10.0)
                assert excinfo.value.kind == "bad_request"
                with pytest.raises(ServiceError) as excinfo:
                    await client.top_k(scenario.slocation_ids(), 1, 50.0, 10.0)
                assert excinfo.value.kind == "bad_request"
            await service.stop()

        asyncio.run(run())

    def test_query_into_evicted_history_is_a_structured_error(
        self, small_real_scenario
    ):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)

        async def run():
            service, host, port = await _start_service(scenario, history + live)
            slocs = scenario.slocation_ids()
            async with await ServiceClient.connect(host, port) as client:
                evicted = await client.evict_before(HISTORY)
                assert evicted["records_dropped"] > 0
                watermark = evicted["watermark"]
                with pytest.raises(ServiceError) as excinfo:
                    await client.flows(slocs, 0.0, DURATION)
                error = excinfo.value
                assert error.kind == "evicted_range"
                assert error.details["watermark"] == watermark
                assert error.details["start"] == 0.0
                # Narrowing to surviving history works on the same connection.
                payload = await client.flows(slocs, watermark, DURATION)
                assert payload["flows"]
            await service.stop()

        asyncio.run(run())

    def test_ingest_on_one_client_pushes_to_anothers_subscription(
        self, small_real_scenario
    ):
        """The acceptance path: a standing subscription receives push frames
        caused purely by ANOTHER client's ``ingest_batch`` — the subscriber
        issues no request after subscribing."""
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            subscriber = await ServiceClient.connect(host, port)
            loader = await ServiceClient.connect(host, port)

            subscription = await subscriber.subscribe_top_k(
                slocs, 3, HISTORY, DURATION
            )
            # The live window is still empty: every ranked flow is zero.
            assert all(flow == 0.0 for _s, flow in subscription.result["ranking"])

            midpoint = HISTORY + (DURATION - HISTORY) / 2
            first = [r for r in live if r.timestamp < midpoint]
            second = [r for r in live if r.timestamp >= midpoint]

            await loader.ingest_batch(first)
            push_one = await subscription.next_update(timeout=10.0)
            assert push_one["push"] == "update"
            assert push_one["seq"] == 1

            await loader.ingest_batch(second)
            push_two = await subscription.next_update(timeout=10.0)
            assert push_two["seq"] == 2

            # The pushed result is bit-identical to what a fresh in-process
            # continuous engine computes over the same final table.
            fresh = _make_engine(scenario).continuous(service.iupt)
            expected = fresh.register_top_k(slocs, 3, HISTORY, DURATION)
            assert push_two["result"] == protocol.result_to_wire(expected.result)
            fresh.close()

            assert subscription.result == push_two["result"]
            await subscriber.close()
            await loader.close()
            await service.stop()

        asyncio.run(run())

    def test_flows_subscription_pushes_flow_updates(self, small_real_scenario):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()[:4]

        async def run():
            service, host, port = await _start_service(scenario, history)
            async with await ServiceClient.connect(host, port) as subscriber:
                async with await ServiceClient.connect(host, port) as loader:
                    subscription = await subscriber.subscribe_flows(
                        slocs, 0.0, DURATION
                    )
                    await loader.ingest_batch(live)
                    push = await subscription.next_update(timeout=10.0)
                    assert push["kind"] == "flows"
                    direct = _make_engine(scenario).flows(
                        service.iupt, slocs, 0.0, DURATION
                    )
                    assert push["result"] == {
                        "flows": protocol.flows_to_wire(direct)
                    }
            await service.stop()

        asyncio.run(run())

    def test_unsubscribe_stops_pushes(self, small_real_scenario):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            async with await ServiceClient.connect(host, port) as client:
                subscription = await client.subscribe_top_k(
                    slocs, 3, HISTORY, DURATION
                )
                assert await client.unsubscribe(subscription) is True
                assert service.continuous.subscriptions == []
                await client.ingest_batch(live)
                assert service.metrics.pushes_sent == 0
                assert subscription.updates.empty()
            await service.stop()

        asyncio.run(run())

    def test_eviction_pushes_structured_evicted_frame(self, small_real_scenario):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history + live)
            async with await ServiceClient.connect(host, port) as client:
                subscription = await client.subscribe_top_k(slocs, 3, 0.0, HISTORY)
                await client.evict_before(HISTORY)
                push = await subscription.next_update(timeout=10.0)
                assert push["push"] == "evicted"
                assert push["error"]["kind"] == "evicted_range"
                assert subscription.active is False
                assert subscription.eviction["watermark"] >= HISTORY
            await service.stop()

        asyncio.run(run())

    def test_disconnect_mid_subscription_cleans_up_server_state(
        self, small_real_scenario
    ):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            client = await ServiceClient.connect(host, port)
            await client.subscribe_top_k(slocs, 3, 0.0, HISTORY)
            await client.subscribe_flows(slocs[:3], 0.0, HISTORY)
            assert len(service.continuous.subscriptions) == 2
            # Abrupt disconnect: no unsubscribe is ever sent.
            await client.close()
            deadline = asyncio.get_running_loop().time() + 5.0
            while service.continuous.subscriptions:
                assert asyncio.get_running_loop().time() < deadline, (
                    "server did not clean up the departed client's subscriptions"
                )
                await asyncio.sleep(0.01)
            assert service.metrics.connections_active == 0
            await service.stop()

        asyncio.run(run())

    def test_shutdown_drains_inflight_requests(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(
                scenario, history, query_workers=2
            )
            client = await ServiceClient.connect(host, port)
            queries = [
                {"q": slocs, "k": 3, "start": 0.0, "end": HISTORY},
                {"q": slocs[:6], "k": 2, "start": 10.0, "end": HISTORY},
                {"q": slocs[:4], "k": 1, "start": 20.0, "end": HISTORY},
            ]
            inflight = asyncio.ensure_future(client.batch(queries))
            deadline = asyncio.get_running_loop().time() + 5.0
            while service.admission.inflight == 0 and not inflight.done():
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.002)
            # Drain: the admitted batch must still be answered and flushed.
            await service.stop()
            result = await inflight
            direct = _make_engine(scenario).batch_top_k(
                service.iupt, [protocol.query_from_wire(q) for q in queries]
            )
            assert result == {
                "results": [protocol.result_to_wire(r) for r in direct]
            }
            # The listener is closed: fresh connections are refused.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            await client.close()

        asyncio.run(run())

    def test_draining_service_sheds_new_requests(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)

        async def run():
            service, host, port = await _start_service(scenario, history)
            async with await ServiceClient.connect(host, port) as client:
                service.admission.begin_drain()
                with pytest.raises(ServiceError) as excinfo:
                    await client.flows(scenario.slocation_ids(), 0.0, HISTORY)
                assert excinfo.value.kind == "overloaded"
                assert excinfo.value.details["reason"] == REASON_DRAINING
                # Introspection stays available while draining.
                assert (await client.ping())["pong"] is True
            await service.stop()

        asyncio.run(run())

    def test_disconnect_during_drain_keeps_standing_subscriptions(
        self, small_real_scenario
    ):
        """A drain begun via the admission controller alone (no ``stop()``)
        must behave like a shutdown for departing clients: their standing
        subscriptions stay registered for the successor process's manifest
        instead of being unregistered by the disconnect cleanup."""
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            client = await ServiceClient.connect(host, port)
            await client.subscribe_top_k(slocs, 3, 0.0, HISTORY)
            await client.subscribe_flows(slocs[:3], 0.0, HISTORY)
            assert len(service.continuous.subscriptions) == 2

            service.admission.begin_drain()
            # Abrupt disconnect mid-drain: no unsubscribe is ever sent.
            await client.close()
            deadline = asyncio.get_running_loop().time() + 5.0
            while service._connections:
                assert asyncio.get_running_loop().time() < deadline, (
                    "server never observed the client departing"
                )
                await asyncio.sleep(0.01)

            # The subscriptions survived the departure …
            assert len(service.continuous.subscriptions) == 2
            # … detached from the dead connection's push callbacks.
            for subscription in service.continuous.subscriptions:
                assert subscription.on_update is None
                assert subscription.on_evicted is None
            await service.stop()

        asyncio.run(run())

    def test_rate_limited_client_gets_overloaded_error(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(
                scenario,
                history,
                admission=AdmissionConfig(rate_per_second=0.001, burst=1),
            )
            async with await ServiceClient.connect(host, port) as client:
                await client.flows(slocs[:2], 0.0, HISTORY)  # burst token
                with pytest.raises(ServiceError) as excinfo:
                    await client.flows(slocs[:2], 0.0, HISTORY)
                assert excinfo.value.kind == "overloaded"
                assert excinfo.value.details["reason"] == REASON_RATE
            stats = service.admission.stats
            assert stats.shed_rate == 1
            await service.stop()

        asyncio.run(run())

    def test_stats_op_reports_cache_latency_and_admission(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            async with await ServiceClient.connect(host, port) as client:
                await client.top_k(slocs, 3, 0.0, HISTORY)
                await client.top_k(slocs, 3, 0.0, HISTORY)  # cache-warm repeat
                stats = await client.stats()
                assert stats["requests"]["by_op"]["top_k"] == 2
                assert stats["latency_ms_by_op"]["top_k"]["count"] == 2
                assert stats["cache"]["enabled"] == 1.0
                assert stats["cache"]["hits"] > 0
                assert stats["admission"]["admitted"] == 2
                assert stats["connections"]["active"] == 1
                assert stats["continuous"]["subscriptions"] == 0
                # Operators can see which codec backend and scoring kernel
                # this process actually resolved to.
                assert stats["codec"]["backend"] in ("numpy", "array")
                assert stats["codec"]["codec_version"] == 1
                assert stats["codec"]["scoring_kernel"] in ("scalar", "vectorized")
            await service.stop()

        asyncio.run(run())

    def test_ingest_over_the_wire_is_immediately_queryable(
        self, small_real_scenario
    ):
        scenario = small_real_scenario
        history, live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            async with await ServiceClient.connect(host, port) as client:
                before = await client.ping()
                receipt = await client.ingest_batch(live)
                assert receipt["records_ingested"] == len(live)
                after = await client.ping()
                assert after["records"] == before["records"] + len(live)
                served = await client.top_k(slocs, 3, HISTORY, DURATION)
                direct = _make_engine(scenario).top_k(
                    service.iupt, slocs, 3, HISTORY, DURATION
                )
                assert served == protocol.result_to_wire(direct)
            await service.stop()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Frame-size boundary contract (MAX_FRAME_BYTES is inclusive, newline excl.)
# ----------------------------------------------------------------------
class TestFrameSizeBoundary:
    def test_splitter_accepts_exactly_the_limit(self):
        splitter = FrameSplitter(max_line_bytes=16)
        assert splitter.feed(b"x" * 16 + b"\n") == [b"x" * 16]

    def test_splitter_rejects_one_byte_over(self):
        splitter = FrameSplitter(max_line_bytes=16)
        with pytest.raises(ProtocolError) as excinfo:
            splitter.feed(b"x" * 17 + b"\n")
        assert excinfo.value.kind == "bad_frame"

    def test_splitter_rejects_terminatorless_flood_early(self):
        """A stream with no newline must fail as soon as it cannot fit."""
        splitter = FrameSplitter(max_line_bytes=8)
        splitter.feed(b"x" * 8)  # could still become a max-size line
        with pytest.raises(ProtocolError):
            splitter.feed(b"x")  # now it cannot

    def test_splitter_unlimited_when_unconfigured(self):
        splitter = FrameSplitter()
        assert splitter.feed(b"x" * 1024 + b"\n") == [b"x" * 1024]

    def test_client_core_enforces_the_wire_limit(self):
        core = ClientCore(max_frame_bytes=64)
        with pytest.raises(ProtocolError):
            core.feed_bytes(b"{" + b"x" * 64 + b"}\n")

    def test_server_accepts_a_frame_of_exactly_the_limit(
        self, small_real_scenario, monkeypatch
    ):
        """The inclusive boundary on the real read loop: a ping padded to
        exactly MAX_FRAME_BYTES answers, one more byte is a bad_frame."""
        scenario = small_real_scenario
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 4096)

        def padded_ping(line_bytes: int) -> bytes:
            skeleton = b'{"id": 1, "op": "ping", "pad": ""}'
            pad = line_bytes - len(skeleton)
            return skeleton[:-2] + b"y" * pad + b'"}'

        async def run():
            service, host, port = await _start_service(scenario, [])
            # Exactly at the limit: accepted and answered.
            reader, writer = await asyncio.open_connection(
                host, port, limit=protocol.MAX_FRAME_BYTES
            )
            wire = padded_ping(protocol.MAX_FRAME_BYTES)
            assert len(wire) == protocol.MAX_FRAME_BYTES
            writer.write(wire + b"\n")
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["ok"] is True and frame["result"]["pong"] is True
            writer.close()
            await writer.wait_closed()

            # One byte over: structured bad_frame, then the stream closes.
            reader, writer = await asyncio.open_connection(
                host, port, limit=2 * protocol.MAX_FRAME_BYTES
            )
            writer.write(padded_ping(protocol.MAX_FRAME_BYTES + 1) + b"\n")
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["ok"] is False
            assert frame["error"]["kind"] == "bad_frame"
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()
            await service.stop()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Read-only ops bypass admission (they observe drains and overloads)
# ----------------------------------------------------------------------
class TestReadOnlyOpsBypassAdmission:
    def test_draining_server_still_answers_stats_and_ping(
        self, small_real_scenario
    ):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)

        async def run():
            service, host, port = await _start_service(scenario, history)
            async with await ServiceClient.connect(host, port) as client:
                service.admission.begin_drain()
                # Engine work is shed …
                with pytest.raises(ServiceError) as excinfo:
                    await client.flows(scenario.slocation_ids()[:2], 0.0, HISTORY)
                assert excinfo.value.details["reason"] == REASON_DRAINING
                # … but the operator's view of the drain stays available.
                stats = await client.stats()
                assert stats["admission"]["draining"] is True
                assert stats["admission"]["shed_draining"] == 1
                assert (await client.ping())["pong"] is True
            await service.stop()

        asyncio.run(run())

    def test_rate_limited_client_still_observes_stats(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(
                scenario,
                history,
                admission=AdmissionConfig(rate_per_second=0.001, burst=1),
            )
            async with await ServiceClient.connect(host, port) as client:
                await client.flows(slocs[:2], 0.0, HISTORY)  # burns the burst
                with pytest.raises(ServiceError):
                    await client.flows(slocs[:2], 0.0, HISTORY)
                # stats/ping never consume rate tokens and never get shed.
                for _ in range(3):
                    stats = await client.stats()
                    assert (await client.ping())["pong"] is True
                assert stats["admission"]["shed_rate"] == 1
            await service.stop()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Empty-batch parity over the wire
# ----------------------------------------------------------------------
class TestEmptyIngestOverTheWire:
    def test_empty_ingest_is_a_complete_no_op(self, small_real_scenario):
        scenario = small_real_scenario
        history, _live = _split_stream(scenario)
        slocs = scenario.slocation_ids()

        async def run():
            service, host, port = await _start_service(scenario, history)
            subscriber = await ServiceClient.connect(host, port)
            loader = await ServiceClient.connect(host, port)
            subscription = await subscriber.subscribe_top_k(
                slocs, 3, 0.0, DURATION
            )
            token = service.iupt.data_key
            receipt = await loader.ingest_batch([])
            assert receipt["records_ingested"] == 0
            assert receipt["shards_touched"] == []
            # No version bump, no refresh, no push.
            assert service.iupt.data_key == token
            assert service.metrics.pushes_sent == 0
            assert subscription.updates.empty()
            engine_sub = service.continuous.subscriptions[0]
            assert engine_sub.stats.refreshes == 1  # the initial compute only
            await subscriber.close()
            await loader.close()
            await service.stop()

        asyncio.run(run())
