"""Unit tests for the mobility data models (samples, IUPT, trajectories, RFID)."""

from __future__ import annotations

import pytest

from repro.data import (
    IUPT,
    PositioningRecord,
    RFIDReader,
    RFIDRecord,
    RFIDTable,
    Sample,
    SampleSet,
    Trajectory,
    TrajectoryPoint,
    TrajectoryStore,
)
from repro.geometry import Point


class TestSampleSet:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SampleSet.from_pairs([(1, 0.3), (2, 0.3)])

    def test_normalise_rescales(self):
        sample_set = SampleSet.from_pairs([(1, 2.0), (2, 2.0)], normalise=True)
        assert sample_set.probability_of(1) == pytest.approx(0.5)

    def test_duplicate_locations_are_merged(self):
        sample_set = SampleSet.from_pairs([(1, 0.4), (1, 0.2), (2, 0.4)])
        assert len(sample_set) == 2
        assert sample_set.probability_of(1) == pytest.approx(0.6)

    def test_most_probable(self):
        sample_set = SampleSet.from_pairs([(1, 0.2), (2, 0.5), (3, 0.3)])
        assert sample_set.most_probable().ploc_id == 2

    def test_above_threshold(self):
        sample_set = SampleSet.from_pairs([(1, 0.2), (2, 0.5), (3, 0.3)])
        assert [s.ploc_id for s in sample_set.above_threshold(0.25)] == [2, 3]

    def test_truncated_keeps_top_and_renormalises(self):
        sample_set = SampleSet.from_pairs([(1, 0.5), (2, 0.3), (3, 0.2)])
        truncated = sample_set.truncated(2)
        assert truncated.plocation_set() == {1, 2}
        assert sum(s.prob for s in truncated) == pytest.approx(1.0)
        assert truncated.probability_of(1) == pytest.approx(0.625)

    def test_truncated_noop_when_small_enough(self):
        sample_set = SampleSet.certain(4)
        assert sample_set.truncated(3) is sample_set

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SampleSet([])

    def test_equality_and_hash(self):
        a = SampleSet.from_pairs([(1, 0.5), (2, 0.5)])
        b = SampleSet.from_pairs([(2, 0.5), (1, 0.5)])
        assert a == b
        assert hash(a) == hash(b)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            Sample(1, -0.2)


class TestIUPT:
    def _build(self, index_kind="1dr-tree") -> IUPT:
        iupt = IUPT(index_kind=index_kind)
        for t in range(10):
            iupt.report(object_id=t % 3, sample_set=SampleSet.certain(t), timestamp=float(t))
        return iupt

    def test_range_query_both_indexes_agree(self):
        rtree_table = self._build("1dr-tree")
        bplus_table = self._build("bplus-tree")
        for window in ((0, 9), (2, 5), (7, 7)):
            a = [(r.object_id, r.timestamp) for r in rtree_table.range_query(*window)]
            b = [(r.object_id, r.timestamp) for r in bplus_table.range_query(*window)]
            assert a == b

    def test_sequences_in_groups_by_object_in_time_order(self):
        iupt = self._build()
        sequences = iupt.sequences_in(0, 9)
        assert set(sequences) == {0, 1, 2}
        assert len(sequences[0]) == 4  # reports at t = 0, 3, 6, 9

    def test_with_max_sample_set_size(self):
        iupt = IUPT()
        iupt.report(1, SampleSet.from_pairs([(1, 0.5), (2, 0.3), (3, 0.2)]), 0.0)
        truncated = iupt.with_max_sample_set_size(1)
        record = truncated.range_query(0, 1)[0]
        assert record.plocation_set() == {1}
        assert len(iupt.range_query(0, 1)[0].sample_set) == 3  # original untouched

    def test_unknown_index_kind(self):
        with pytest.raises(ValueError):
            IUPT(index_kind="hash")

    def test_summary_and_span(self):
        iupt = self._build()
        summary = iupt.summary()
        assert summary["records"] == 10
        assert summary["objects"] == 3
        assert iupt.time_span() == (0.0, 9.0)

    def test_filtered_to_objects(self):
        iupt = self._build()
        only_zero = iupt.filtered_to_objects([0])
        assert only_zero.object_ids() == [0]


class TestTrajectory:
    def _trajectory(self) -> Trajectory:
        return Trajectory(
            7,
            [
                TrajectoryPoint(0.0, Point(1, 1), partition_id=0),
                TrajectoryPoint(1.0, Point(2, 1), partition_id=0),
                TrajectoryPoint(2.0, Point(6, 1), partition_id=1),
            ],
        )

    def test_location_at(self):
        trajectory = self._trajectory()
        assert trajectory.location_at(-1.0) is None
        assert trajectory.location_at(0.5) == Point(1, 1)
        assert trajectory.location_at(5.0) == Point(6, 1)

    def test_points_in_and_partitions_visited(self):
        trajectory = self._trajectory()
        assert len(trajectory.points_in(0.5, 2.0)) == 2
        assert trajectory.partitions_visited(0.0, 2.0) == {0, 1}

    def test_append_out_of_order_rejected(self):
        trajectory = self._trajectory()
        with pytest.raises(ValueError):
            trajectory.append(TrajectoryPoint(1.5, Point(0, 0)))

    def test_store_visit_counts(self):
        plan_points = [Point(1, 1), Point(6, 1)]
        from tests.test_space import two_room_plan

        plan = two_room_plan().freeze()
        store = TrajectoryStore()
        store.add(self._trajectory())
        counts = store.true_visit_counts(plan, 0.0, 2.0)
        assert counts[0] == 1 and counts[1] == 1
        del plan_points


class TestRFID:
    def test_record_validation(self):
        with pytest.raises(ValueError):
            RFIDRecord(1, 1, ts=5.0, te=1.0)

    def test_table_requires_known_reader(self):
        table = RFIDTable()
        with pytest.raises(ValueError):
            table.append(RFIDRecord(1, 99, 0.0, 1.0))

    def test_records_by_object_sorted(self):
        reader = RFIDReader(0, Point(0, 0), 3.0)
        table = RFIDTable([reader])
        table.extend(
            [
                RFIDRecord(1, 0, 5.0, 6.0),
                RFIDRecord(1, 0, 1.0, 2.0),
                RFIDRecord(2, 0, 0.0, 0.5),
            ]
        )
        grouped = table.records_by_object(0.0, 10.0)
        assert [r.ts for r in grouped[1]] == [1.0, 5.0]
        assert table.object_ids() == [1, 2]

    def test_reader_detects_within_range(self):
        reader = RFIDReader(0, Point(0, 0), 3.0)
        assert reader.detects(Point(2.9, 0))
        assert not reader.detects(Point(3.5, 0))
        assert not reader.detects(Point(0, 0, floor=1))

    def test_records_in_overlap_semantics(self):
        reader = RFIDReader(0, Point(0, 0), 3.0)
        table = RFIDTable([reader])
        table.append(RFIDRecord(1, 0, 10.0, 20.0))
        assert table.records_in(0.0, 9.9) == []
        assert len(table.records_in(15.0, 30.0)) == 1
