"""Shared fixtures: the paper's Figure 1 running example and small scenarios."""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro import (
    DataReductionConfig,
    FloorPlan,
    FlowComputer,
    IndoorFlowSystem,
    IUPT,
    PartitionKind,
    Point,
    Rect,
    SampleSet,
)
from repro.space import IndoorLocationMatrix, IndoorSpaceLocationGraph
from repro.synth import build_real_scenario, build_synthetic_scenario


@pytest.fixture(scope="session")
def figure1() -> Dict[str, object]:
    """The indoor space of Figure 1 / Table 2 of the paper.

    Partitions r1..r6 (r6 is the hallway), doors guarded so that the cells are
    c(r1, r2), c(r3), c(r4), c(r5), c(r6), and P-locations labelled p1..p9
    exactly as in the paper:

    * p1: door r4-r5, p2: door r4-r6, p3: door r3-r4, p4: door r1-r6,
      p5: door r5-r6, p9: door r2-r6 (partitioning);
    * p6, p8: presence in r6; p7: presence in r2 (cell of r1, r2).
    """
    plan = FloorPlan()
    rooms = {}
    rooms["r1"] = plan.add_partition(Rect(20, 12, 30, 20), PartitionKind.ROOM, name="r1")
    rooms["r2"] = plan.add_partition(Rect(10, 12, 20, 20), PartitionKind.ROOM, name="r2")
    rooms["r3"] = plan.add_partition(Rect(0, 12, 10, 20), PartitionKind.ROOM, name="r3")
    rooms["r4"] = plan.add_partition(Rect(0, 0, 10, 8), PartitionKind.ROOM, name="r4")
    rooms["r5"] = plan.add_partition(Rect(10, 0, 20, 8), PartitionKind.ROOM, name="r5")
    rooms["r6"] = plan.add_partition(Rect(0, 8, 30, 12), PartitionKind.HALLWAY, name="r6")

    doors = {}
    doors["r1r2"] = plan.add_door(Point(20, 16), (rooms["r1"], rooms["r2"]))
    doors["r1r6"] = plan.add_door(Point(25, 12), (rooms["r1"], rooms["r6"]))
    doors["r2r6"] = plan.add_door(Point(15, 12), (rooms["r2"], rooms["r6"]))
    doors["r4r6"] = plan.add_door(Point(5, 8), (rooms["r4"], rooms["r6"]))
    doors["r5r6"] = plan.add_door(Point(15, 8), (rooms["r5"], rooms["r6"]))
    doors["r4r5"] = plan.add_door(Point(10, 4), (rooms["r4"], rooms["r5"]))
    doors["r3r4"] = plan.add_door(Point(1, 10), (rooms["r3"], rooms["r4"]))

    plocs = {}
    plocs["p1"] = plan.add_partitioning_plocation(Point(10, 4), doors["r4r5"], name="p1")
    plocs["p2"] = plan.add_partitioning_plocation(Point(5, 8), doors["r4r6"], name="p2")
    plocs["p3"] = plan.add_partitioning_plocation(Point(1, 10), doors["r3r4"], name="p3")
    plocs["p4"] = plan.add_partitioning_plocation(Point(25, 12), doors["r1r6"], name="p4")
    plocs["p5"] = plan.add_partitioning_plocation(Point(15, 8), doors["r5r6"], name="p5")
    plocs["p6"] = plan.add_presence_plocation(Point(8, 10), rooms["r6"], name="p6")
    plocs["p7"] = plan.add_presence_plocation(Point(12, 18), rooms["r2"], name="p7")
    plocs["p8"] = plan.add_presence_plocation(Point(22, 10), rooms["r6"], name="p8")
    plocs["p9"] = plan.add_partitioning_plocation(Point(15, 12), doors["r2r6"], name="p9")

    slocs = {}
    for name, partition_id in rooms.items():
        slocs[name] = plan.add_slocation_for_partition(partition_id, name=name)

    plan.freeze()
    graph = IndoorSpaceLocationGraph.from_floorplan(plan)
    matrix = IndoorLocationMatrix.from_graph(graph)
    return {
        "plan": plan,
        "graph": graph,
        "matrix": matrix,
        "rooms": rooms,
        "doors": doors,
        "plocs": plocs,
        "slocs": slocs,
    }


@pytest.fixture(scope="session")
def figure1_iupt(figure1) -> IUPT:
    """The IUPT of Table 2 over the Figure 1 space (timestamps t1..t8 = 1..8)."""
    p = figure1["plocs"]
    iupt = IUPT()
    iupt.report(1, SampleSet.from_pairs([(p["p4"], 1.0)]), 1.0)
    iupt.report(2, SampleSet.from_pairs([(p["p1"], 0.5), (p["p2"], 0.5)]), 1.0)
    iupt.report(3, SampleSet.from_pairs([(p["p2"], 0.6), (p["p3"], 0.4)]), 2.0)
    iupt.report(1, SampleSet.from_pairs([(p["p9"], 1.0)]), 3.0)
    iupt.report(2, SampleSet.from_pairs([(p["p2"], 0.7), (p["p4"], 0.3)]), 3.0)
    iupt.report(1, SampleSet.from_pairs([(p["p8"], 1.0)]), 4.0)
    iupt.report(2, SampleSet.from_pairs([(p["p5"], 0.3), (p["p6"], 0.6), (p["p8"], 0.1)]), 5.0)
    iupt.report(3, SampleSet.from_pairs([(p["p2"], 0.4), (p["p3"], 0.6)]), 5.0)
    iupt.report(2, SampleSet.from_pairs([(p["p5"], 0.2), (p["p6"], 0.3), (p["p8"], 0.5)]), 6.0)
    iupt.report(3, SampleSet.from_pairs([(p["p3"], 1.0)]), 8.0)
    return iupt


@pytest.fixture(scope="session")
def figure1_flow_exact(figure1) -> FlowComputer:
    """A flow computer over Figure 1 with data reduction disabled.

    The worked Examples 2-4 of the paper are computed on the raw sample sets,
    so exact reproduction requires the reduction to be off.
    """
    return FlowComputer(
        figure1["graph"], figure1["matrix"], DataReductionConfig.disabled()
    )


@pytest.fixture(scope="session")
def small_real_scenario():
    """A small but complete university-floor scenario for integration tests."""
    return build_real_scenario(num_users=8, duration_seconds=240.0, seed=41)


@pytest.fixture(scope="session")
def small_synth_scenario():
    """A small synthetic multi-floor scenario with RFID data."""
    return build_synthetic_scenario(
        num_objects=10,
        floors=2,
        room_rows=1,
        rooms_per_row=3,
        duration_seconds=240.0,
        seed=17,
        with_rfid=True,
    )
