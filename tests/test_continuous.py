"""Continuous queries: differential correctness, delta maintenance, eviction.

The subsystem's contract is *exactness*: a standing query's maintained result
must be bit-identical — flows, ranking, tie-breaks — to what a fresh engine
would compute from scratch over the table's current contents, after every
interleaved ``ingest_batch`` / ``evict_before``.  The differential harness
here (`run_differential_interleaving`, also driven by the hypothesis test in
``test_property_based.py``) asserts that over seeded-random interleavings on
both store kinds; the unit tests pin the delta-maintenance mechanics (skips,
re-keys, recomputes) and the eviction semantics.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro import (
    FloorPlan,
    IUPT,
    PartitionKind,
    Point,
    QueryEngine,
    Rect,
    SampleSet,
)
from repro.data.records import PositioningRecord
from repro.space import IndoorLocationMatrix, IndoorSpaceLocationGraph
from repro.storage import EvictedRangeError, EvictionEvent, IngestEvent

STORE_KINDS = ("flat", "sharded")
SHARD_SECONDS = 10.0
SPAN = 60.0


# ----------------------------------------------------------------------
# A small three-partition space with enough P-locations for real flows
# ----------------------------------------------------------------------
def _small_space():
    plan = FloorPlan()
    room_a = plan.add_partition(Rect(0, 0, 6, 6), PartitionKind.ROOM, name="a")
    room_b = plan.add_partition(Rect(6, 0, 12, 6), PartitionKind.ROOM, name="b")
    hall = plan.add_partition(Rect(0, 6, 12, 10), PartitionKind.HALLWAY, name="hall")
    door_a = plan.add_door(Point(3.0, 6.0), (room_a, hall))
    door_b = plan.add_door(Point(9.0, 6.0), (room_b, hall))
    door_ab = plan.add_door(Point(6.0, 3.0), (room_a, room_b))
    plocs = [
        plan.add_partitioning_plocation(Point(3.0, 6.0), door_a),
        plan.add_partitioning_plocation(Point(9.0, 6.0), door_b),
        plan.add_partitioning_plocation(Point(6.0, 3.0), door_ab),
        plan.add_presence_plocation(Point(2.0, 3.0), room_a),
        plan.add_presence_plocation(Point(10.0, 3.0), room_b),
        plan.add_presence_plocation(Point(6.0, 8.0), hall),
    ]
    slocs = [
        plan.add_slocation_for_partition(partition)
        for partition in (room_a, room_b, hall)
    ]
    plan.freeze()
    graph = IndoorSpaceLocationGraph.from_floorplan(plan)
    matrix = IndoorLocationMatrix.from_graph(graph).merged(graph)
    return graph, matrix, plocs, slocs


def _fresh_engine(engine: QueryEngine) -> QueryEngine:
    """A cold engine over the same indoor model (the differential oracle)."""
    return QueryEngine(engine.flow_computer.graph, engine.flow_computer.matrix)


def _stream(
    seed: int, plocs: List[int], objects: int = 5, count: int = 60
) -> List[PositioningRecord]:
    """A deterministic random report stream over ``[0, SPAN)``."""
    rng = random.Random(seed)
    records = []
    for _ in range(count):
        timestamp = round(rng.uniform(0.0, SPAN - 0.1), 1)
        object_id = rng.randrange(objects)
        chosen = rng.sample(plocs, rng.randint(1, 3))
        pairs = [(ploc, rng.uniform(0.1, 1.0)) for ploc in chosen]
        records.append(
            PositioningRecord(
                object_id, SampleSet.from_pairs(pairs, normalise=True), timestamp
            )
        )
    records.sort(key=lambda record: record.timestamp)
    return records


def _batches(records: List[PositioningRecord]) -> List[List[PositioningRecord]]:
    """Slice a time-ordered stream at the shard boundaries."""
    sliced: List[List[PositioningRecord]] = [[] for _ in range(int(SPAN / SHARD_SECONDS))]
    for record in records:
        sliced[min(int(record.timestamp // SHARD_SECONDS), len(sliced) - 1)].append(
            record
        )
    return sliced


def _make_table(store_kind: str) -> IUPT:
    if store_kind == "sharded":
        return IUPT.sharded(shard_seconds=SHARD_SECONDS)
    return IUPT()


# ----------------------------------------------------------------------
# The differential harness (also driven by test_property_based.py)
# ----------------------------------------------------------------------
def _check_subscription(engine: QueryEngine, iupt: IUPT, kind: str, sub) -> int:
    """Compare one standing result against a fresh engine's full recompute.

    Returns the number of non-zero flow values seen (the vacuity guard of
    the calling tests).  Evicted subscriptions must agree with the oracle on
    *raising*: the fresh recompute of the same window must refuse too.
    """
    fresh = _fresh_engine(engine)
    if kind == "top-k":
        if not sub.active:
            with pytest.raises(EvictedRangeError):
                fresh.search(iupt, sub.query, "nested-loop")
            return 0
        reference = fresh.search(iupt, sub.query, "nested-loop")
        assert sub.result.flows == reference.flows
        assert sub.top_k_ids() == reference.top_k_ids()
        assert [entry.flow for entry in sub.result.ranking] == [
            entry.flow for entry in reference.ranking
        ]
        return sum(1 for flow in reference.flows.values() if flow > 0.0)
    if not sub.active:
        with pytest.raises(EvictedRangeError):
            fresh.flows(iupt, list(sub.sloc_ids), *sub.window)
        return 0
    reference = fresh.flows(iupt, list(sub.sloc_ids), *sub.window)
    assert sub.result == reference
    return sum(1 for flow in reference.values() if flow > 0.0)


def run_differential_interleaving(
    seed: int, store_kind: str, refresh: str = "incremental"
) -> int:
    """One seeded interleaving of ingest / evict / reads, checked exhaustively.

    Registers four standing queries (two historical windows, one mid-stream,
    one covering the live edge), then streams the remaining batches in with
    seeded-random evictions interleaved (sharded store only), asserting after
    every step that every subscription is bit-identical to a fresh engine's
    full recompute — or, once evicted, that both sides raise.  Returns the
    number of non-zero flows observed (callers guard against vacuous runs).
    """
    graph, matrix, plocs, slocs = _small_space()
    engine = QueryEngine(graph, matrix)
    iupt = _make_table(store_kind)
    batches = _batches(_stream(seed, plocs))
    iupt.ingest_batch(batches[0])
    iupt.ingest_batch(batches[1])

    continuous = engine.continuous(iupt, refresh=refresh)
    subscriptions: List[Tuple[str, object]] = [
        ("top-k", continuous.register_top_k(slocs, k=2, start=0.0, end=19.0)),
        ("top-k", continuous.register_top_k(slocs[:2], k=1, start=0.0, end=SPAN)),
        ("flows", continuous.register_flows(slocs, 10.0, 35.0)),
        ("top-k", continuous.register_top_k(slocs, k=3, start=35.0, end=SPAN)),
    ]

    rng = random.Random(seed + 1000)
    nonzero = 0
    frontier = 2 * SHARD_SECONDS
    for batch in batches[2:]:
        iupt.ingest_batch(batch)
        frontier += SHARD_SECONDS
        if store_kind == "sharded" and rng.random() < 0.3:
            iupt.evict_before(rng.uniform(SHARD_SECONDS, frontier - SHARD_SECONDS))
        for kind, sub in subscriptions:
            nonzero += _check_subscription(engine, iupt, kind, sub)

    if store_kind == "sharded":
        # Final eviction reaching into the historical windows.
        iupt.evict_before(15.0)
        for kind, sub in subscriptions:
            nonzero += _check_subscription(engine, iupt, kind, sub)
    continuous.close()
    return nonzero


class TestDifferentialHarness:
    """Incremental maintenance ≡ full recompute, over random interleavings."""

    @pytest.mark.parametrize("store_kind", STORE_KINDS)
    def test_five_seeds_bit_identical(self, store_kind):
        nonzero = 0
        for seed in range(5):
            nonzero += run_differential_interleaving(seed, store_kind)
        assert nonzero > 0, (
            "every standing query saw only zero flows across all seeds; "
            "the bit-identity assertions were vacuous"
        )

    @pytest.mark.parametrize("store_kind", STORE_KINDS)
    def test_recompute_mode_also_exact(self, store_kind):
        # The benchmark baseline must be *correct* too — it is only slower.
        assert run_differential_interleaving(7, store_kind, refresh="recompute") >= 0


# ----------------------------------------------------------------------
# Delta-maintenance mechanics
# ----------------------------------------------------------------------
def _continuous_setup(store_kind: str, seed: int = 3):
    graph, matrix, plocs, slocs = _small_space()
    engine = QueryEngine(graph, matrix)
    iupt = _make_table(store_kind)
    batches = _batches(_stream(seed, plocs))
    for batch in batches[:3]:
        iupt.ingest_batch(batch)
    return engine, iupt, plocs, slocs, batches


class TestDeltaMaintenance:
    def test_disjoint_batch_skips_refresh_on_sharded_store(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        sub = continuous.register_top_k(slocs, k=2, start=0.0, end=19.0)
        result_before = sub.result
        iupt.ingest_batch(batches[4])  # lands in shard [40, 50) only
        assert sub.stats.skipped == 1
        assert sub.stats.refreshes == 1  # just the registration compute
        assert sub.result is result_before  # not even re-scored

    def test_disjoint_batch_rekeys_untouched_objects_on_flat_store(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("flat")
        continuous = engine.continuous(iupt)
        sub = continuous.register_top_k(slocs, k=2, start=0.0, end=19.0)
        computed_after_register = sub.stats.objects_recomputed
        window_objects = len(sub._object_ids)
        assert window_objects > 0

        # The flat store's token churns on ANY ingestion, but none of these
        # records overlap the window — every artefact must be re-keyed, none
        # recomputed.
        iupt.ingest_batch(batches[4])
        assert sub.stats.skipped == 0
        assert sub.stats.refreshes == 2
        assert sub.stats.objects_rekeyed == window_objects
        assert sub.stats.objects_recomputed == computed_after_register
        assert engine.store.stats.rekeys >= window_objects

    def test_overlapping_batch_recomputes_only_touched_objects(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        sub = continuous.register_top_k(slocs, k=2, start=0.0, end=29.0)
        computed_after_register = sub.stats.objects_recomputed
        window_objects = len(sub._object_ids)
        assert window_objects >= 2

        # One new record for one object, inside the window: that object is
        # recomputed, the others are re-keyed.
        iupt.ingest_batch(
            [PositioningRecord(0, SampleSet.certain(plocs[3]), 25.0)]
        )
        assert sub.stats.objects_rekeyed == window_objects - 1
        assert sub.stats.objects_recomputed == computed_after_register + 1

    def test_refresh_result_tracks_new_data(self):
        engine, iupt, plocs, slocs, _ = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        sub = continuous.register_flows(slocs, 0.0, 29.0)
        flow_before = sub.result[slocs[0]]
        # Stream an object dwelling in room a within the window.
        iupt.ingest_batch(
            [
                PositioningRecord(9, SampleSet.certain(plocs[3]), t)
                for t in (25.0, 26.0, 27.0)
            ]
        )
        assert sub.result[slocs[0]] > flow_before

    def test_churn_counts_ranking_changes(self):
        graph, matrix, plocs, slocs = _small_space()
        engine = QueryEngine(graph, matrix)
        iupt = _make_table("sharded")
        # One object firmly in room a.
        iupt.ingest_batch(
            [PositioningRecord(1, SampleSet.certain(plocs[3]), t) for t in (1.0, 2.0)]
        )
        continuous = engine.continuous(iupt)
        sub = continuous.register_top_k([slocs[0], slocs[1]], k=1, start=0.0, end=9.0)
        assert sub.top_k_ids() == [slocs[0]]
        # Three objects land in room b: the top-1 flips and churn records it.
        iupt.ingest_batch(
            [
                PositioningRecord(oid, SampleSet.certain(plocs[4]), 5.0)
                for oid in (2, 3, 4)
            ]
        )
        assert sub.top_k_ids() == [slocs[1]]
        assert sub.stats.last_churn == 1
        assert sub.stats.churn_total >= 1

    def test_unregister_and_close_stop_refreshes(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        sub = continuous.register_top_k(slocs, k=2, start=0.0, end=SPAN)
        assert continuous.unregister(sub)
        assert not continuous.unregister(sub)
        iupt.ingest_batch(batches[3])
        assert sub.stats.refreshes == 1  # only the registration compute

        kept = continuous.register_top_k(slocs, k=2, start=0.0, end=SPAN)
        continuous.close()
        iupt.ingest_batch(batches[4])
        assert kept.stats.refreshes == 1
        assert iupt.store.listener_count == 0

    def test_recompute_mode_never_skips(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt, refresh="recompute")
        sub = continuous.register_top_k(slocs, k=2, start=0.0, end=19.0)
        iupt.ingest_batch(batches[4])  # disjoint from the window
        assert sub.stats.skipped == 0
        assert sub.stats.refreshes == 2

    def test_rejects_unknown_refresh_kind(self):
        engine, iupt, _, _, _ = _continuous_setup("flat")
        with pytest.raises(ValueError):
            engine.continuous(iupt, refresh="lazy")


# ----------------------------------------------------------------------
# Eviction semantics
# ----------------------------------------------------------------------
class TestContinuousEviction:
    def test_eviction_into_window_marks_subscription(self):
        engine, iupt, plocs, slocs, _ = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        early = continuous.register_top_k(slocs, k=2, start=0.0, end=19.0)
        late = continuous.register_top_k(slocs, k=2, start=20.0, end=29.0)
        iupt.evict_before(15.0)
        assert not early.active
        assert late.active
        with pytest.raises(EvictedRangeError):
            early.result
        with pytest.raises(EvictedRangeError):
            early.top_k_ids()
        late.result  # still served

    def test_eviction_below_window_does_not_refresh(self):
        engine, iupt, plocs, slocs, _ = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        late = continuous.register_top_k(slocs, k=2, start=20.0, end=29.0)
        refreshes = late.stats.refreshes
        iupt.evict_before(15.0)  # strictly below the window: token unchanged
        assert late.active
        assert late.stats.refreshes == refreshes

    def test_register_on_evicted_window_raises(self):
        engine, iupt, plocs, slocs, _ = _continuous_setup("sharded")
        iupt.evict_before(15.0)
        continuous = engine.continuous(iupt)
        with pytest.raises(EvictedRangeError):
            continuous.register_top_k(slocs, k=2, start=0.0, end=19.0)
        assert not continuous.subscriptions


class TestEvictionCacheInterplayToday:
    """Regression for the ad-hoc (non-continuous) path that exists today:
    a warm presence cache must never mask retention eviction."""

    def test_repeated_top_k_after_eviction_raises_not_stale(self):
        engine, iupt, plocs, slocs, _ = _continuous_setup("sharded")
        window = (0.0, 29.0)
        first = engine.top_k(iupt, slocs, k=2, start=window[0], end=window[1])
        assert first.ranking  # the cache is now warm for this window
        assert engine.store.stats.puts > 0

        iupt.evict_before(15.0)
        # The same query again: check_not_evicted fires in the fetch stage
        # before any cached presence can be consulted.
        with pytest.raises(EvictedRangeError):
            engine.top_k(iupt, slocs, k=2, start=window[0], end=window[1])
        # A window above the watermark still answers.
        engine.top_k(iupt, slocs, k=2, start=20.0, end=29.0)


# ----------------------------------------------------------------------
# Storage events (the subscription hook itself)
# ----------------------------------------------------------------------
class TestStoreEvents:
    @pytest.mark.parametrize("store_kind", STORE_KINDS)
    def test_ingest_event_carries_sorted_object_spans(self, store_kind):
        iupt = _make_table(store_kind)
        events = []
        iupt.subscribe(events.append)
        iupt.ingest_batch(
            [
                PositioningRecord(5, SampleSet.certain(1), 12.0),
                PositioningRecord(2, SampleSet.certain(1), 3.0),
                PositioningRecord(5, SampleSet.certain(1), 4.0),
            ]
        )
        assert len(events) == 1
        receipt = events[0].receipt
        assert isinstance(events[0], IngestEvent)
        assert receipt.records_ingested == 3
        assert receipt.object_spans == ((2, 3.0, 3.0), (5, 4.0, 12.0))
        assert receipt.objects_overlapping(0.0, 5.0) == {2, 5}
        assert receipt.objects_overlapping(10.0, 20.0) == {5}
        assert receipt.objects_overlapping(20.0, 30.0) == frozenset()

    def test_flat_append_notifies(self):
        iupt = IUPT()
        events = []
        iupt.subscribe(events.append)
        iupt.report(3, SampleSet.certain(1), 7.0)
        assert len(events) == 1
        assert events[0].receipt.object_spans == ((3, 7.0, 7.0),)

    def test_eviction_event_and_unsubscribe(self):
        iupt = IUPT.sharded(shard_seconds=10.0)
        iupt.ingest_batch(
            [PositioningRecord(1, SampleSet.certain(1), float(t)) for t in range(30)]
        )
        events = []
        token = iupt.subscribe(events.append)
        iupt.evict_before(15.0)
        assert len(events) == 1
        assert isinstance(events[0], EvictionEvent)
        assert events[0].watermark == 10.0
        assert events[0].records_dropped == 10
        iupt.evict_before(5.0)  # nothing left to drop: no event
        assert len(events) == 1

        assert iupt.unsubscribe(token)
        assert not iupt.unsubscribe(token)
        iupt.ingest_batch([PositioningRecord(1, SampleSet.certain(1), 40.0)])
        assert len(events) == 1


# ----------------------------------------------------------------------
# Push callbacks (the service layer's update hook)
# ----------------------------------------------------------------------
class TestPushCallbacks:
    def test_on_update_fires_after_state_is_applied(self):
        """Ordering contract: when the callback runs, the subscription
        already serves the new result — ``sub.result`` inside the callback
        IS the result the callback received."""
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        observed = []

        def on_update(sub, result):
            observed.append(
                (sub.stats.refreshes, result is sub.result, result.top_k_ids())
            )

        sub = continuous.register_top_k(
            slocs, k=2, start=0.0, end=SPAN, on_update=on_update
        )
        assert observed == []  # the registration compute is not a refresh
        iupt.ingest_batch(batches[3])
        assert len(observed) == 1
        refreshes, same_object, pushed_ids = observed[0]
        assert refreshes == 2  # registration + this refresh, already counted
        assert same_object is True
        assert pushed_ids == sub.top_k_ids()

    def test_on_update_skipped_refreshes_do_not_fire(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        fired = []
        sub = continuous.register_top_k(
            slocs, k=2, start=0.0, end=19.0,
            on_update=lambda s, r: fired.append(r),
        )
        iupt.ingest_batch(batches[4])  # shard [40, 50): token unchanged
        assert sub.stats.skipped == 1
        assert fired == []
        iupt.ingest_batch(batches[3] or batches[5])  # keep the stream moving
        # Only batches touching [0, 19] fire; this one still does not.
        assert fired == []

    def test_on_update_fires_per_applied_refresh_for_flows(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("flat")
        continuous = engine.continuous(iupt)
        fired = []
        sub = continuous.register_flows(
            slocs, 0.0, SPAN, on_update=lambda s, r: fired.append(dict(r))
        )
        iupt.ingest_batch(batches[3])
        iupt.ingest_batch(batches[4])
        # The flat store's whole-table token churns every batch: two fires.
        assert len(fired) == 2
        assert fired[-1] == sub.result

    def test_callback_attachable_after_registration(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        sub = continuous.register_top_k(slocs, k=2, start=0.0, end=SPAN)
        fired = []
        sub.on_update = lambda s, r: fired.append(s.sub_id)
        iupt.ingest_batch(batches[3])
        assert fired == [sub.sub_id]

    def test_on_evicted_fires_once_with_the_raised_error(self):
        engine, iupt, plocs, slocs, batches = _continuous_setup("sharded")
        continuous = engine.continuous(iupt)
        evictions = []
        sub = continuous.register_top_k(
            slocs, k=2, start=0.0, end=19.0,
            on_evicted=lambda s, error: evictions.append(error),
        )
        iupt.evict_before(10.0)
        assert len(evictions) == 1
        with pytest.raises(EvictedRangeError) as excinfo:
            sub.result
        assert excinfo.value is evictions[0]
        iupt.evict_before(20.0)  # already dead: no second notification
        assert len(evictions) == 1


# ----------------------------------------------------------------------
# Concurrent ingestion (the service's worker pool does exactly this)
# ----------------------------------------------------------------------
class TestConcurrentIngest:
    @pytest.mark.parametrize("store_kind", STORE_KINDS)
    def test_concurrent_ingest_threads_keep_standing_results_exact(
        self, store_kind
    ):
        """Regression for the unlocked ``_on_event``: several threads calling
        ``ingest_batch`` concurrently must serialise their refreshes — after
        the dust settles every standing result is still bit-identical to a
        fresh full recompute over the final table."""
        import threading

        graph, matrix, plocs, slocs = _small_space()
        engine = QueryEngine(graph, matrix)
        iupt = _make_table(store_kind)
        batches = [b for b in _batches(_stream(11, plocs, objects=6, count=120)) if b]
        continuous = engine.continuous(iupt)
        subs = [
            ("top-k", continuous.register_top_k(slocs, k=2, start=0.0, end=SPAN)),
            ("flows", continuous.register_flows(slocs, 0.0, SPAN)),
            ("top-k", continuous.register_top_k(slocs, k=3, start=5.0, end=35.0)),
        ]

        errors = []
        barrier = threading.Barrier(4)

        def ingest(worker: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                for index, batch in enumerate(batches):
                    if index % 4 == worker:
                        iupt.ingest_batch(batch)
            except Exception as error:  # noqa: BLE001 - reported via the list
                errors.append(error)

        threads = [
            threading.Thread(target=ingest, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(iupt) == sum(len(batch) for batch in batches)

        nonzero = 0
        for kind, sub in subs:
            assert sub.active
            nonzero += _check_subscription(engine, iupt, kind, sub)
        assert nonzero > 0, "concurrency test produced only zero flows (vacuous)"
        continuous.close()


class TestConcurrentRegistration:
    def test_concurrent_registrations_mint_unique_subscription_ids(self):
        """Regression: ids were read OUTSIDE the lock before admission, so
        two worker threads registering at once could mint the same sub_id —
        one standing query silently replaced the other, and the durable
        manifest/resume path keys on exactly these ids."""
        import threading

        graph, matrix, plocs, slocs = _small_space()
        engine = QueryEngine(graph, matrix)
        iupt = _make_table("sharded")
        for batch in _batches(_stream(3, plocs, objects=4, count=40)):
            if batch:
                iupt.ingest_batch(batch)
        continuous = engine.continuous(iupt)

        registered = []
        errors = []
        barrier = threading.Barrier(8)

        def register(worker: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                for _ in range(5):
                    registered.append(
                        continuous.register_top_k(slocs, k=2, start=0.0, end=SPAN)
                    )
            except Exception as error:  # noqa: BLE001 - reported via the list
                errors.append(error)

        threads = [
            threading.Thread(target=register, args=(worker,)) for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        ids = [subscription.sub_id for subscription in registered]
        assert len(set(ids)) == len(ids) == 40
        assert len(continuous.subscriptions) == 40  # nothing was replaced
        continuous.close()
