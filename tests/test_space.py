"""Unit tests for the indoor space model (floor plan, cells, GISL, MIL, routing)."""

from __future__ import annotations

import pytest

from repro.geometry import Point, Rect
from repro.space import (
    DoorGraphRouter,
    FloorPlan,
    FloorPlanError,
    IndoorLocationMatrix,
    IndoorSpaceLocationGraph,
    PartitionKind,
    PLocationKind,
    derive_cells,
    partition_to_cell,
    possible_cells_of_sequence,
)


def two_room_plan() -> FloorPlan:
    """Two rooms joined by one guarded door; each room is an S-location."""
    plan = FloorPlan()
    a = plan.add_partition(Rect(0, 0, 5, 5), name="a")
    b = plan.add_partition(Rect(5, 0, 10, 5), name="b")
    door = plan.add_door(Point(5, 2.5), (a, b))
    plan.add_partitioning_plocation(Point(5, 2.5), door)
    plan.add_presence_plocation(Point(2, 2), a)
    plan.add_presence_plocation(Point(8, 2), b)
    plan.add_slocation_for_partition(a)
    plan.add_slocation_for_partition(b)
    return plan


class TestFloorPlan:
    def test_summary_counts(self):
        plan = two_room_plan().freeze()
        summary = plan.summary()
        assert summary["partitions"] == 2
        assert summary["doors"] == 1
        assert summary["partitioning_plocations"] == 1
        assert summary["presence_plocations"] == 2
        assert summary["slocations"] == 2

    def test_partition_containing(self):
        plan = two_room_plan().freeze()
        assert plan.partition_containing(Point(1, 1)) == 0
        assert plan.partition_containing(Point(9, 1)) == 1
        assert plan.partition_containing(Point(50, 50)) is None

    def test_slocations_containing(self):
        plan = two_room_plan().freeze()
        assert plan.slocations_containing(Point(1, 1)) == [0]
        assert plan.slocations_containing(Point(20, 20)) == []

    def test_frozen_plan_rejects_mutation(self):
        plan = two_room_plan().freeze()
        with pytest.raises(FloorPlanError):
            plan.add_partition(Rect(20, 20, 30, 30))

    def test_door_requires_known_partitions(self):
        plan = FloorPlan()
        plan.add_partition(Rect(0, 0, 1, 1))
        with pytest.raises(FloorPlanError):
            plan.add_door(Point(0, 0), (0, 99))

    def test_presence_plocation_resolves_partition_geometrically(self):
        plan = FloorPlan()
        plan.add_partition(Rect(0, 0, 4, 4))
        ploc_id = plan.add_presence_plocation(Point(1, 1))
        assert plan.plocations[ploc_id].partition_id == 0

    def test_presence_plocation_outside_all_partitions_raises(self):
        plan = FloorPlan()
        plan.add_partition(Rect(0, 0, 4, 4))
        with pytest.raises(FloorPlanError):
            plan.add_presence_plocation(Point(10, 10))

    def test_empty_plan_cannot_freeze(self):
        with pytest.raises(FloorPlanError):
            FloorPlan().freeze()

    def test_doors_of_partition(self):
        plan = two_room_plan().freeze()
        assert [d.door_id for d in plan.doors_of_partition(0)] == [0]

    def test_plocations_near(self):
        plan = two_room_plan().freeze()
        near = plan.plocations_near(Point(5, 2.5), 1.0)
        assert [p.ploc_id for p in near] == [0]


class TestCells:
    def test_guarded_door_separates_cells(self):
        plan = two_room_plan().freeze()
        cells = derive_cells(plan)
        assert len(cells) == 2

    def test_unguarded_door_merges_cells(self):
        plan = FloorPlan()
        a = plan.add_partition(Rect(0, 0, 5, 5))
        b = plan.add_partition(Rect(5, 0, 10, 5))
        plan.add_door(Point(5, 2.5), (a, b))
        plan.add_presence_plocation(Point(2, 2), a)
        plan.add_slocation_for_partition(a)
        plan.freeze()
        cells = derive_cells(plan)
        assert len(cells) == 1
        assert cells[0].partition_ids == frozenset({a, b})

    def test_partition_to_cell_covers_all_partitions(self):
        plan = two_room_plan().freeze()
        cells = derive_cells(plan)
        mapping = partition_to_cell(cells)
        assert set(mapping) == set(plan.partitions)

    def test_cell_ids_are_deterministic(self):
        plan = two_room_plan().freeze()
        first = [c.partition_ids for c in derive_cells(plan)]
        second = [c.partition_ids for c in derive_cells(plan)]
        assert first == second


class TestGraphAndMatrix:
    def test_graph_structure(self, figure1):
        graph = figure1["graph"]
        summary = graph.summary()
        assert summary["cells"] == 5
        assert summary["plocations"] == 9
        assert summary["slocations"] == 6
        # r3 connects only to r4's cell.
        r3_cell = graph.cell_of_partition[figure1["rooms"]["r3"]]
        r4_cell = graph.cell_of_partition[figure1["rooms"]["r4"]]
        assert graph.neighbours(r3_cell) == {r4_cell}

    def test_c2s_and_parent_cell_are_inverse(self, figure1):
        graph = figure1["graph"]
        for sloc_id, cell_id in graph.slocation_to_cell.items():
            assert sloc_id in graph.c2s(cell_id)

    def test_equivalence_classes_partition_plocations(self, figure1):
        graph = figure1["graph"]
        classes = graph.equivalence_classes()
        members = sorted(p for cls in classes for p in cls)
        assert members == sorted(graph.cells_of_plocation)

    def test_representative_is_smallest_member(self, figure1):
        graph, plocs = figure1["graph"], figure1["plocs"]
        assert graph.representative_plocation(plocs["p8"]) == min(
            plocs["p6"], plocs["p8"]
        )

    def test_matrix_dense_is_symmetric_by_construction(self, figure1):
        matrix = figure1["matrix"]
        dense = matrix.dense()
        for (a, b), cells in dense.items():
            assert matrix.cells_between(b, a) == cells

    def test_possible_cells_of_sequence(self, figure1):
        matrix, plocs = figure1["matrix"], figure1["plocs"]
        cells = possible_cells_of_sequence(matrix, [plocs["p6"], plocs["p3"]])
        assert cells == set(matrix.cells_adjacent(plocs["p6"])) | set(
            matrix.cells_adjacent(plocs["p3"])
        )

    def test_matrix_connected_reflexive(self, figure1):
        matrix, plocs = figure1["matrix"], figure1["plocs"]
        for ploc_id in plocs.values():
            assert matrix.connected(ploc_id, ploc_id)


class TestRouting:
    def test_same_partition_route_is_straight_line(self):
        plan = two_room_plan().freeze()
        router = DoorGraphRouter(plan)
        route = router.route(Point(1, 1), Point(4, 1))
        assert route is not None
        assert route.length == pytest.approx(3.0)
        assert route.partitions == (0,)

    def test_cross_partition_route_goes_through_door(self):
        plan = two_room_plan().freeze()
        router = DoorGraphRouter(plan)
        route = router.route(Point(1, 2.5), Point(9, 2.5))
        assert route is not None
        assert route.length == pytest.approx(8.0)
        assert route.partitions == (0, 1)
        assert Point(5, 2.5) in route.waypoints

    def test_route_in_figure1_respects_topology(self, figure1):
        plan = figure1["plan"]
        router = DoorGraphRouter(plan)
        # From r3 to r6 one must pass through r4.
        route = router.route(Point(5, 16), Point(25, 10))
        assert route is not None
        rooms = figure1["rooms"]
        assert rooms["r4"] in route.partitions

    def test_unreachable_returns_none(self):
        plan = FloorPlan()
        a = plan.add_partition(Rect(0, 0, 5, 5))
        b = plan.add_partition(Rect(10, 0, 15, 5))
        plan.add_presence_plocation(Point(1, 1), a)
        plan.add_slocation_for_partition(a)
        plan.freeze()
        router = DoorGraphRouter(plan)
        assert router.route(Point(1, 1), Point(11, 1)) is None

    def test_reachable_partitions(self, figure1):
        plan = figure1["plan"]
        router = DoorGraphRouter(plan)
        assert router.reachable_partitions(figure1["rooms"]["r3"]) == sorted(
            plan.partitions
        )
