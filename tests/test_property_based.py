"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paths import build_possible_paths, total_candidate_probability
from repro.core.presence import PresenceComputation
from repro.data import SampleSet
from repro.eval.metrics import kendall_coefficient, recall_at_k
from repro.geometry import Point, Rect
from repro.indexes import BPlusTree, OneDimensionalRTree, RTree

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
coordinates = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coordinates), draw(coordinates)))
    y1, y2 = sorted((draw(coordinates), draw(coordinates)))
    return Rect(x1, y1, x2, y2)


@st.composite
def sample_sets(draw):
    size = draw(st.integers(min_value=1, max_value=5))
    locations = draw(
        st.lists(st.integers(min_value=0, max_value=30), min_size=size, max_size=size, unique=True)
    )
    weights = draw(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=size, max_size=size)
    )
    pairs = list(zip(locations, weights))
    return SampleSet.from_pairs(pairs, normalise=True)


# ----------------------------------------------------------------------
# Geometry invariants
# ----------------------------------------------------------------------
class TestRectProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_symmetric_and_contained(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rect(overlap)
            assert b.contains_rect(overlap)
            assert overlap.area <= min(a.area, b.area) + 1e-6

    @given(rects())
    def test_expansion_monotone(self, rect):
        assert rect.expanded(1.0).area >= rect.area

    @given(rects(), coordinates, coordinates)
    def test_distance_zero_iff_contained(self, rect, x, y):
        point = Point(x, y)
        distance = rect.distance_to_point(point)
        assert (distance == 0.0) == rect.contains_point(point)


# ----------------------------------------------------------------------
# Index invariants: always agree with brute force
# ----------------------------------------------------------------------
class TestIndexProperties:
    @given(st.lists(rects(), min_size=1, max_size=60), rects())
    @settings(max_examples=40, deadline=None)
    def test_rtree_matches_brute_force(self, rect_list, window):
        items = [(rect, index) for index, rect in enumerate(rect_list)]
        tree = RTree.bulk_load(items)
        expected = sorted(index for rect, index in items if rect.intersects(window))
        assert sorted(tree.search(window)) == expected

    @given(
        st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=200),
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_indexes_agree(self, timestamps, a, b):
        start, end = min(a, b), max(a, b)
        rtree: OneDimensionalRTree[int] = OneDimensionalRTree(leaf_capacity=8, fanout=4)
        bptree: BPlusTree[int] = BPlusTree(order=8)
        for index, ts in enumerate(timestamps):
            rtree.insert(ts, index)
            bptree.insert(ts, index)
        expected = [i for ts, i in sorted(zip(timestamps, range(len(timestamps)))) if start <= ts <= end]
        assert rtree.range_query(start, end) == expected
        assert sorted(bptree.range_query(start, end)) == sorted(expected)


# ----------------------------------------------------------------------
# Data model and presence invariants
# ----------------------------------------------------------------------
class TestSampleSetProperties:
    @given(sample_sets())
    def test_probabilities_normalised(self, sample_set):
        assert sum(s.prob for s in sample_set) == pytest.approx(1.0)

    @given(sample_sets(), st.integers(min_value=1, max_value=4))
    def test_truncation_keeps_most_probable(self, sample_set, mss):
        truncated = sample_set.truncated(mss)
        assert len(truncated) <= mss
        assert sum(s.prob for s in truncated) == pytest.approx(1.0)
        dropped = sample_set.plocation_set() - truncated.plocation_set()
        if dropped:
            max_dropped = max(sample_set.probability_of(loc) for loc in dropped)
            min_kept = min(
                sample_set.probability_of(loc) for loc in truncated.plocation_set()
            )
            assert max_dropped <= min_kept + 1e-9


class TestPresenceProperties:
    @given(sequence=st.lists(sample_sets(), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_presence_always_in_unit_interval(self, figure1, sequence):
        matrix = figure1["matrix"]
        # Remap arbitrary P-location ids onto the Figure 1 ids so the matrix knows them.
        plocs = sorted(figure1["plocs"].values())
        remapped = []
        for sample_set in sequence:
            pairs = [
                (plocs[sample.ploc_id % len(plocs)], sample.prob) for sample in sample_set
            ]
            remapped.append(SampleSet.from_pairs(pairs, normalise=True))
        paths = build_possible_paths(remapped, matrix)
        presence = PresenceComputation(
            paths, candidate_mass=total_candidate_probability(remapped)
        )
        for cell_id in figure1["graph"].cells:
            value = presence.presence_in_cell(cell_id)
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(sequence=st.lists(sample_sets(), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_valid_path_mass_never_exceeds_candidate_mass(self, figure1, sequence):
        matrix = figure1["matrix"]
        plocs = sorted(figure1["plocs"].values())
        remapped = [
            SampleSet.from_pairs(
                [(plocs[s.ploc_id % len(plocs)], s.prob) for s in sample_set],
                normalise=True,
            )
            for sample_set in sequence
        ]
        paths = build_possible_paths(remapped, matrix)
        assert sum(p.probability for p in paths) <= total_candidate_probability(remapped) + 1e-9


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------
class TestContinuousProperties:
    """Standing-query maintenance ≡ full recompute, under hypothesis seeds.

    Drives the differential harness of ``tests/test_continuous.py`` with
    hypothesis-chosen stream seeds: every interleaving of ``ingest_batch`` /
    ``evict_before`` / result reads must leave every standing TkPLQ / flow
    result bit-identical to a fresh engine's recompute (or both sides must
    raise ``EvictedRangeError``), on both store kinds.
    """

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_incremental_matches_full_recompute_flat(self, seed):
        from tests.test_continuous import run_differential_interleaving

        run_differential_interleaving(seed, "flat")

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_incremental_matches_full_recompute_sharded(self, seed):
        from tests.test_continuous import run_differential_interleaving

        run_differential_interleaving(seed, "sharded")


class TestMetricProperties:
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8, unique=True))
    def test_kendall_identity_and_reverse(self, ranking):
        assert kendall_coefficient(ranking, ranking) == pytest.approx(1.0)
        if len(ranking) > 1:
            assert kendall_coefficient(list(reversed(ranking)), ranking) == pytest.approx(-1.0)

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8, unique=True),
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8, unique=True),
    )
    def test_kendall_bounded_and_symmetricish(self, a, b):
        value = kendall_coefficient(a, b)
        assert -1.0 <= value <= 1.0
        assert kendall_coefficient(b, a) == pytest.approx(value)

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8, unique=True),
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8, unique=True),
    )
    def test_recall_bounded(self, a, b):
        assert 0.0 <= recall_at_k(a, b) <= 1.0
