"""Integration tests for the three TkPLQ search algorithms and the engine facade."""

from __future__ import annotations

import pytest

from repro import DataReductionConfig, IndoorFlowSystem, TkPLQuery
from repro.core import BestFirstTkPLQ, FlowComputer, NaiveTkPLQ, NestedLoopTkPLQ


@pytest.fixture(scope="module")
def real_query(small_real_scenario):
    scenario = small_real_scenario
    query_set = scenario.pick_query_slocations(0.6, seed=2)
    return TkPLQuery.build(query_set, 3, scenario.start_time, scenario.end_time)


class TestAlgorithmAgreement:
    def test_naive_nl_bf_return_same_flows(self, small_real_scenario, real_query):
        scenario = small_real_scenario
        computer = FlowComputer(scenario.system.graph, scenario.system.matrix)
        naive = NaiveTkPLQ(computer).search(scenario.iupt, real_query)
        nested = NestedLoopTkPLQ(computer).search(scenario.iupt, real_query)
        best = BestFirstTkPLQ(computer).search(scenario.iupt, real_query)

        for sloc_id in real_query.query_slocations:
            assert naive.flows[sloc_id] == pytest.approx(nested.flows[sloc_id], abs=1e-9)
        assert naive.top_k_ids() == nested.top_k_ids() == best.top_k_ids()

    def test_best_first_emits_k_results(self, small_real_scenario, real_query):
        scenario = small_real_scenario
        result = scenario.system.search(scenario.iupt, real_query, algorithm="best-first")
        assert len(result.ranking) == real_query.k
        flows = [entry.flow for entry in result.ranking]
        assert flows == sorted(flows, reverse=True)

    def test_best_first_prunes_at_least_as_much_as_nested_loop(
        self, small_real_scenario
    ):
        scenario = small_real_scenario
        query_set = scenario.pick_query_slocations(0.3, seed=9)
        query = TkPLQuery.build(query_set, 1, scenario.start_time, scenario.end_time)
        computer = FlowComputer(scenario.system.graph, scenario.system.matrix)
        nested = NestedLoopTkPLQ(computer).search(scenario.iupt, query)
        best = BestFirstTkPLQ(computer).search(scenario.iupt, query)
        assert best.stats.objects_computed <= nested.stats.objects_computed
        assert best.stats.pruning_ratio >= nested.stats.pruning_ratio - 1e-9
        assert best.top_k_ids() == nested.top_k_ids()

    def test_flows_are_bounded_by_object_count(self, small_real_scenario, real_query):
        scenario = small_real_scenario
        result = scenario.system.search(scenario.iupt, real_query, algorithm="nested-loop")
        objects = result.stats.objects_total
        for flow in result.flows.values():
            assert 0.0 <= flow <= objects + 1e-9


class TestEngineFacade:
    def test_unknown_algorithm_rejected(self, small_real_scenario, real_query):
        scenario = small_real_scenario
        with pytest.raises(ValueError):
            scenario.system.search(scenario.iupt, real_query, algorithm="magic")

    def test_top_k_convenience(self, small_real_scenario):
        scenario = small_real_scenario
        result = scenario.system.top_k(
            scenario.iupt,
            scenario.slocation_ids(),
            k=2,
            start=scenario.start_time,
            end=scenario.end_time,
        )
        assert len(result.ranking) == 2

    def test_summary_keys(self, small_real_scenario):
        summary = small_real_scenario.system.summary()
        assert summary["plan_partitions"] == 14
        assert "graph_cells" in summary
        assert "matrix_dimension" in summary

    def test_org_variant_runs_and_agrees_on_top1(self, figure1, figure1_iupt):
        plan = figure1["plan"]
        slocs = figure1["slocs"]
        enabled = IndoorFlowSystem(plan, reduction=DataReductionConfig.enabled())
        disabled = IndoorFlowSystem(plan, reduction=DataReductionConfig.disabled())
        query = TkPLQuery.build([slocs["r1"], slocs["r6"]], 1, 1.0, 8.0)
        top_enabled = enabled.search(figure1_iupt, query).top_k_ids()
        top_disabled = disabled.search(figure1_iupt, query).top_k_ids()
        assert top_enabled == top_disabled == [slocs["r6"]]


class TestBestFirstEdgeCases:
    def test_k_equal_to_query_size(self, small_real_scenario):
        scenario = small_real_scenario
        query_set = scenario.pick_query_slocations(0.4, seed=4)
        query = TkPLQuery.build(
            query_set, len(query_set), scenario.start_time, scenario.end_time
        )
        result = scenario.system.search(scenario.iupt, query, algorithm="best-first")
        assert sorted(result.top_k_ids()) == sorted(query_set)

    def test_empty_window(self, small_real_scenario):
        scenario = small_real_scenario
        query_set = scenario.pick_query_slocations(0.5, seed=6)
        query = TkPLQuery.build(query_set, 2, scenario.end_time + 10, scenario.end_time + 20)
        result = scenario.system.search(scenario.iupt, query, algorithm="best-first")
        assert len(result.ranking) == 2
        assert all(entry.flow == 0.0 for entry in result.ranking)

    def test_single_location_query(self, small_real_scenario):
        scenario = small_real_scenario
        sloc = scenario.slocation_ids()[0]
        query = TkPLQuery.build([sloc], 1, scenario.start_time, scenario.end_time)
        bf = scenario.system.search(scenario.iupt, query, algorithm="best-first")
        nl = scenario.system.search(scenario.iupt, query, algorithm="nested-loop")
        assert bf.top_k_ids() == nl.top_k_ids() == [sloc]
        assert bf.ranking[0].flow == pytest.approx(nl.ranking[0].flow, abs=1e-9)
