"""Vectorized twins of the scalar scoring kernels.

The engine's two accumulation kernels —
:func:`~repro.core.nested_loop.score_presence_into_flows` driven by
:func:`~repro.engine.batch.score_query_over_entries`, and
:func:`~repro.engine.stages.accumulate_flows_over_entries` — both walk the
per-object presence artefacts of one window in fetch order and fold each
S-location's presence values into a running flow.  :class:`PresenceMatrix`
lifts that walk into a dense ``(locations x objects)`` float64 matrix built
once per window group, so scoring a query becomes one contiguous column
reduction per S-location instead of a Python loop over entries.

**Bit-identity contract.**  The scalar kernels accumulate left-to-right in
entry (fetch) order; the matrix reduction must reproduce every flow value
bit for bit:

* numpy backend: ``np.add.accumulate`` over a contiguous column performs
  the same sequential left-to-right float64 additions (unlike ``np.sum``,
  which pairwise-trees), so its last element equals the Python fold;
* fallback backend: a plain Python loop over the column *is* the fold;
* entries whose possible semantic locations miss an S-location contribute
  an explicit ``0.0`` matrix cell; presences are non-negative, and
  ``x + 0.0`` is bit-exact for every non-negative float64 ``x``, so the
  padded fold equals the scalar kernel's skip-the-entry fold.

The two scalar kernels disagree on one bookkeeping detail, which the
matrix preserves: for an S-location whose parent cell is ``None`` the
query kernel skips the entry *without* counting an evaluation, while the
flows kernel counts the evaluation and adds ``presence_in_cell(None)``
(which is ``0.0``).  :meth:`PresenceMatrix.score_flows` and
:meth:`PresenceMatrix.accumulate_flows` reproduce their respective
``flow_evaluations`` counts exactly; the differential tests in
``tests/test_codec.py`` assert both counters and bitwise flow equality.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .packed import resolve_backend

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class PresenceMatrix:
    """Dense per-window presence values: one row per S-location, one column
    per entry, in fetch order.

    Built once per window group (or standing-query refresh) and shared by
    every query scored against it; rows cover the union of the group's
    query S-locations.
    """

    __slots__ = ("backend", "_columns", "_n", "_values", "_counts", "_has_parent")

    def __init__(
        self,
        entries: Sequence[Tuple[int, object]],
        sloc_ids: Sequence[int],
        parent_cells: Dict[int, Optional[int]],
        backend: Optional[str] = None,
    ):
        self.backend = resolve_backend(backend)
        ordered = list(dict.fromkeys(sloc_ids))
        columns = {sloc_id: row for row, sloc_id in enumerate(ordered)}
        n = len(entries)
        rows = len(ordered)
        cells = [parent_cells.get(sloc_id) for sloc_id in ordered]
        has_parent = [cell is not None for cell in cells]
        buffer = [0.0] * (rows * n)
        counts = [0] * rows
        for column, (_object_id, entry) in enumerate(entries):
            if entry.pruned:
                continue
            computation = entry.computation
            for sloc_id in entry.psls:
                row = columns.get(sloc_id)
                if row is None:
                    continue
                counts[row] += 1
                if has_parent[row]:
                    buffer[row * n + column] = computation.presence_in_cell(
                        cells[row]
                    )
        self._columns = columns
        self._n = n
        self._counts = counts
        self._has_parent = has_parent
        if self.backend == "numpy":
            self._values = _np.asarray(buffer, dtype=_np.float64).reshape(rows, n)
        else:
            self._values = buffer

    def __len__(self) -> int:
        return self._n

    def _row_sum(self, row: int) -> float:
        """Sequential left-to-right float64 fold of one S-location's row."""
        if self._n == 0 or self._counts[row] == 0:
            return 0.0
        if self.backend == "numpy":
            return float(_np.add.accumulate(self._values[row])[-1])
        total = 0.0
        values = self._values
        for index in range(row * self._n, (row + 1) * self._n):
            total += values[index]
        return total

    def score_flows(
        self, sloc_ids: Sequence[int]
    ) -> Tuple[Dict[int, float], int]:
        """Flows + evaluation count of one query, per the *query* kernel.

        Mirrors :func:`~repro.core.nested_loop.score_presence_into_flows`:
        S-locations without a parent cell contribute nothing and count no
        evaluations.
        """
        flows: Dict[int, float] = {sloc_id: 0.0 for sloc_id in sloc_ids}
        evaluations = 0
        for sloc_id in flows:
            row = self._columns.get(sloc_id)
            if row is None or not self._has_parent[row]:
                continue
            evaluations += self._counts[row]
            flows[sloc_id] = self._row_sum(row)
        return flows, evaluations

    def accumulate_flows(
        self, sloc_ids: Sequence[int]
    ) -> Tuple[Dict[int, float], int]:
        """Flows + evaluation count, per the *flows* kernel.

        Mirrors :func:`~repro.engine.stages.accumulate_flows_over_entries`:
        an S-location without a parent cell still counts its evaluations
        (each adds ``presence_in_cell(None) == 0.0``).
        """
        flows: Dict[int, float] = {sloc_id: 0.0 for sloc_id in sloc_ids}
        evaluations = 0
        for sloc_id in flows:
            row = self._columns.get(sloc_id)
            if row is None:
                continue
            evaluations += self._counts[row]
            if self._has_parent[row]:
                flows[sloc_id] = self._row_sum(row)
        return flows, evaluations
