"""Packed binary codec and vectorized scoring kernels.

One binary layout for positioning records, shared by the durable store's
write-ahead log and snapshots (:mod:`repro.storage.durable`), the sharded
store's lazy shard representation (:mod:`repro.storage.sharded`) and the
engine's vectorized scoring kernels (:mod:`repro.codec.kernels`).  The
array backend is ``numpy`` when importable and the standard library's
``array``/``memoryview`` otherwise — byte-identical output, identical
semantics (see :mod:`repro.codec.packed`).
"""

from .kernels import PresenceMatrix
from .packed import (
    BACKENDS,
    CODEC_MAGIC,
    CODEC_VERSION,
    PackedRecordBatch,
    active_backend,
    codec_info,
    decode_batch,
    encode_batch,
    numpy_available,
    resolve_backend,
)

__all__ = [
    "BACKENDS",
    "CODEC_MAGIC",
    "CODEC_VERSION",
    "PackedRecordBatch",
    "PresenceMatrix",
    "active_backend",
    "codec_info",
    "decode_batch",
    "encode_batch",
    "numpy_available",
    "resolve_backend",
]
