"""The packed binary layout for positioning records.

A batch of records ``(oid, t, [(ploc_id, prob), ...])`` is laid out as one
length-prefixed header followed by five contiguous little-endian arrays —
a *columnar* encoding, so the durable store can write and recover whole
shards as single ``memcpy``-shaped blobs instead of one JSON object per
record, and the engine's vectorized kernels can sum over the arrays
directly::

    offset 0   magic      4s   b"RPK1"
           4   version    u8   CODEC_VERSION (currently 1)
           5   reserved   u8 + u16 (zero)
           8   n          u64  number of records
          16   m          u64  total number of samples
          24   timestamps n x f64   record timestamps
               object_ids n x i64   record object ids
               counts     n x i64   samples per record
               plocs      m x i64   sample ploc ids, record-concatenated
               probs      m x f64   sample probabilities, same order

Floats cross the boundary as raw IEEE-754 doubles, so every timestamp and
probability round-trips bit-exactly — the same guarantee the JSON payloads
gave via ``repr``/``float``, minus the text round-trip.

Two interchangeable array backends produce and parse **identical bytes**:
``numpy`` (used when importable) and the standard library's
``array``/``memoryview`` fallback.  ``REPRO_CODEC_BACKEND=array`` forces
the fallback even when numpy is present (the CI fallback leg sets it);
individual calls can also pass ``backend=`` explicitly, which the
cross-backend equality tests rely on.
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from typing import Iterable, List, Optional, Sequence

from ..data.records import PositioningRecord, Sample, SampleSet

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

CODEC_MAGIC = b"RPK1"
CODEC_VERSION = 1

BACKENDS = ("numpy", "array")

#: magic, version, reserved u8, reserved u16, record count, sample count.
_HEADER = struct.Struct("<4sBBHQQ")

_FORCED = os.environ.get("REPRO_CODEC_BACKEND", "").strip().lower()

_SWAP = sys.byteorder == "big"


def numpy_available() -> bool:
    return _np is not None


def active_backend() -> str:
    """The process-wide default backend (numpy when importable, else array)."""
    if _FORCED == "array" or _np is None:
        return "array"
    return "numpy"


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend choice, defaulting to the active one."""
    if backend is None:
        return active_backend()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown codec backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "numpy" and _np is None:
        raise ValueError("codec backend 'numpy' requested but numpy is not importable")
    return backend


def codec_info() -> dict:
    """The active codec/kernel backend, for stats and benchmark headers."""
    return {
        "codec_version": CODEC_VERSION,
        "backend": active_backend(),
        "numpy_available": _np is not None,
        "forced_backend": _FORCED or None,
    }


def _int_column(values: Sequence[int], backend: str):
    if backend == "numpy":
        return _np.asarray(values, dtype="<i8")
    return array("q", values)


def _float_column(values: Sequence[float], backend: str):
    if backend == "numpy":
        return _np.asarray(values, dtype="<f8")
    return array("d", values)


def _column_bytes(column) -> bytes:
    if _np is not None and isinstance(column, _np.ndarray):
        return column.astype(column.dtype.newbyteorder("<"), copy=False).tobytes()
    if _SWAP:  # pragma: no cover - big-endian hosts only
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _parse_column(data: bytes, offset: int, count: int, typecode: str, backend: str):
    """One array column from the blob; numpy parses as a zero-copy view."""
    end = offset + count * 8
    if end > len(data):
        raise ValueError("packed batch truncated: column exceeds payload")
    if backend == "numpy":
        dtype = "<f8" if typecode == "d" else "<i8"
        return _np.frombuffer(data, dtype=dtype, count=count, offset=offset), end
    column = array(typecode)
    column.frombytes(data[offset:end])
    if _SWAP:  # pragma: no cover - big-endian hosts only
        column.byteswap()
    return column, end


class PackedRecordBatch:
    """A batch of positioning records in the packed columnar layout.

    Columns are numpy arrays or ``array.array`` instances depending on the
    backend; either way :meth:`encode` emits the same bytes and
    :meth:`to_records` rebuilds records through the exact constructor path
    the JSON payloads use (``Sample(int, float)`` into ``SampleSet``), so
    decoded batches are bit-identical across backends and against JSON.
    """

    __slots__ = (
        "backend",
        "timestamps",
        "object_ids",
        "sample_counts",
        "sample_plocs",
        "sample_probs",
    )

    def __init__(
        self, backend, timestamps, object_ids, sample_counts, sample_plocs, sample_probs
    ):
        self.backend = backend
        self.timestamps = timestamps
        self.object_ids = object_ids
        self.sample_counts = sample_counts
        self.sample_plocs = sample_plocs
        self.sample_probs = sample_probs

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def sample_total(self) -> int:
        return len(self.sample_plocs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[PositioningRecord],
        backend: Optional[str] = None,
    ) -> "PackedRecordBatch":
        backend = resolve_backend(backend)
        timestamps: List[float] = []
        object_ids: List[int] = []
        counts: List[int] = []
        plocs: List[int] = []
        probs: List[float] = []
        for record in records:
            timestamps.append(record.timestamp)
            object_ids.append(record.object_id)
            samples = record.sample_set
            counts.append(len(samples))
            for sample in samples:
                plocs.append(sample.ploc_id)
                probs.append(sample.prob)
        return cls(
            backend,
            _float_column(timestamps, backend),
            _int_column(object_ids, backend),
            _int_column(counts, backend),
            _int_column(plocs, backend),
            _float_column(probs, backend),
        )

    @classmethod
    def decode(
        cls, data: bytes, backend: Optional[str] = None
    ) -> "PackedRecordBatch":
        resolved = resolve_backend(backend)
        if len(data) < _HEADER.size:
            raise ValueError("packed batch truncated: missing header")
        magic, version, _r8, _r16, n, m = _HEADER.unpack_from(data)
        if magic != CODEC_MAGIC:
            raise ValueError(f"not a packed record batch (magic {magic!r})")
        if version != CODEC_VERSION:
            raise ValueError(
                f"unsupported packed-batch version {version} "
                f"(this build reads version {CODEC_VERSION})"
            )
        expected = _HEADER.size + n * 24 + m * 16
        if len(data) != expected:
            raise ValueError(
                f"packed batch size mismatch: {len(data)} bytes for "
                f"n={n}, m={m} (expected {expected})"
            )
        offset = _HEADER.size
        timestamps, offset = _parse_column(data, offset, n, "d", resolved)
        object_ids, offset = _parse_column(data, offset, n, "q", resolved)
        counts, offset = _parse_column(data, offset, n, "q", resolved)
        plocs, offset = _parse_column(data, offset, m, "q", resolved)
        probs, offset = _parse_column(data, offset, m, "d", resolved)
        return cls(resolved, timestamps, object_ids, counts, plocs, probs)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        header = _HEADER.pack(
            CODEC_MAGIC, CODEC_VERSION, 0, 0, len(self), self.sample_total
        )
        return b"".join(
            (
                header,
                _column_bytes(self.timestamps),
                _column_bytes(self.object_ids),
                _column_bytes(self.sample_counts),
                _column_bytes(self.sample_plocs),
                _column_bytes(self.sample_probs),
            )
        )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def timestamps_list(self) -> List[float]:
        """The timestamp column as plain Python floats (bit-exact)."""
        return self.timestamps.tolist()

    def to_records(self) -> List[PositioningRecord]:
        timestamps = self.timestamps.tolist()
        object_ids = self.object_ids.tolist()
        counts = self.sample_counts.tolist()
        plocs = self.sample_plocs.tolist()
        probs = self.sample_probs.tolist()
        records: List[PositioningRecord] = []
        cursor = 0
        for i in range(len(timestamps)):
            count = counts[i]
            stop = cursor + count
            sample_set = SampleSet(
                Sample(plocs[j], probs[j]) for j in range(cursor, stop)
            )
            records.append(
                PositioningRecord(object_ids[i], sample_set, timestamps[i])
            )
            cursor = stop
        if cursor != len(plocs):
            raise ValueError("packed batch corrupt: sample counts disagree with data")
        return records


def encode_batch(
    records: Iterable[PositioningRecord], backend: Optional[str] = None
) -> bytes:
    """Serialise records to the packed layout (byte-identical per backend)."""
    return PackedRecordBatch.from_records(records, backend).encode()


def decode_batch(
    data: bytes, backend: Optional[str] = None
) -> List[PositioningRecord]:
    """Rebuild records from :func:`encode_batch` output, bit-exactly."""
    return PackedRecordBatch.decode(data, backend).to_records()
