"""repro — reproduction of "Finding Most Popular Indoor Semantic Locations
Using Uncertain Mobility Data" (Li, Lu, Shou, Chen, Chen; IEEE TKDE 2019).

The package implements the paper's indoor flow model and Top-k Popular
Location Query (TkPLQ) over uncertain indoor positioning data, together with
every substrate the evaluation depends on: the indoor space model (cells,
indoor space location graph, indoor location matrix), spatial and temporal
indexes, data reduction, the three search algorithms, the comparison
baselines, and synthetic data generators for both the "real data" and the
Vita-like synthetic settings.

Quickstart::

    from repro import build_real_scenario

    scenario = build_real_scenario(duration_seconds=600)
    query_set = scenario.slocation_ids()
    result = scenario.system.top_k(
        scenario.iupt, query_set, k=3,
        start=scenario.start_time, end=scenario.end_time,
    )
    for entry in result.ranking:
        print(scenario.plan.slocations[entry.sloc_id].label(), entry.flow)
"""

from .baselines import (
    MonteCarlo,
    SemiConstrainedCounting,
    SimpleCounting,
    UncertaintyRegionFlow,
)
from .core import (
    ALGORITHMS,
    BestFirstTkPLQ,
    DataReducer,
    DataReductionConfig,
    FlowComputer,
    IndoorFlowSystem,
    NaiveTkPLQ,
    NestedLoopTkPLQ,
    PossiblePath,
    PresenceComputation,
    RankedLocation,
    SearchStats,
    TkPLQResult,
    TkPLQuery,
)
from .data import IUPT, PositioningRecord, Sample, SampleSet, Trajectory, TrajectoryStore
from .engine import (
    BatchPlanner,
    BatchReport,
    CacheStats,
    ContinuousQueryEngine,
    EngineConfig,
    ExecutionContext,
    PresenceStore,
    QueryEngine,
    QueryPipeline,
    Subscription,
)
from .eval import (
    MethodOutcome,
    kendall_coefficient,
    recall_at_k,
    run_method,
    run_methods,
)
from .geometry import Point, Rect
from .space import (
    FloorPlan,
    IndoorLocationMatrix,
    IndoorSpaceLocationGraph,
    PartitionKind,
    PLocationKind,
)
from .service import (
    AdmissionConfig,
    QueryService,
    RemoteSubscription,
    ServiceClient,
    ServiceError,
)
from .storage import (
    DurabilityConfig,
    DurableRecordStore,
    EvictedRangeError,
    IngestReceipt,
    InMemoryRecordStore,
    RecordStore,
    ShardedRecordStore,
)
from .synth import (
    Scenario,
    build_real_scenario,
    build_synthetic_scenario,
    build_university_floorplan,
)

# 3.0.0: the storage layer. IUPT is now a facade over a RecordStore backend
# (flat in-memory or time-partitioned sharded), with streaming ingest_batch,
# per-shard versioning / shard-scoped cache keys, and retention eviction.
# IUPT.extend now bumps the data version once per batch (was: per record).
# 3.1.0: continuous queries. Stores publish ingest/eviction events
# (IUPT.subscribe); ContinuousQueryEngine maintains standing TkPLQ / flow
# results incrementally after every batch, re-keying untouched objects'
# cached presences instead of recomputing them.
# 3.2.0: the query service layer. repro.service puts the engine behind an
# asyncio NDJSON wire protocol (QueryService / ServiceClient) with admission
# control, per-op latency metrics, and live push of standing-subscription
# refreshes (Subscription.on_update); stores gained a shared re-entrant
# mutation/read lock so concurrent service workers are safe.
# 3.3.0: durable storage. DurableRecordStore / IUPT.durable put a write-ahead
# log (per-shard segments + batch commit records) and per-shard snapshots
# under the sharded store; recovery reproduces bit-identical
# range_query/version_token state, the service gained a checkpoint op,
# subscription-manifest restore and flush-on-drain, and both stores honour
# one documented eviction/ingest boundary contract (flat stores evict now).
# 3.4.0: binary record codec + vectorized kernels. repro.codec packs record
# batches into one little-endian columnar layout (numpy-backed, byte-identical
# stdlib-array fallback) shared by WAL frames, snapshots, and a lazily
# materialised shard representation; DurabilityConfig.codec defaults to
# "binary" (JSON directories and mixed segments still recover), and
# EngineConfig.scoring_kernel selects a PresenceMatrix scoring path asserted
# bit-identical to the scalar fold.
# 3.5.0: WAL-shipping read replicas + partition-aware router. The durable
# store exposes a replication cursor API (committed_batches_after /
# commit listeners / follower lag tracking, size-triggered WAL compaction
# with follower hold-back); the wire protocol gained binary RPK1 frames and
# wal_cursor/wal_tail/wal_ack/replica_status ops; ReadReplica catches up
# (snapshot-or-replay) then tails commits through the normal ingest path for
# bit-identical tables; PartitionRouter fans writes to the primary and
# routes reads across replicas by time-partition affinity under a
# read-your-writes staleness bound; ServiceClient reconnects with bounded
# backoff; `python -m repro.service.topology` runs each role as a process.
__version__ = "3.5.0"

__all__ = [
    "ALGORITHMS",
    "AdmissionConfig",
    "BatchPlanner",
    "BatchReport",
    "BestFirstTkPLQ",
    "CacheStats",
    "ContinuousQueryEngine",
    "DataReducer",
    "DataReductionConfig",
    "DurabilityConfig",
    "DurableRecordStore",
    "EngineConfig",
    "EvictedRangeError",
    "ExecutionContext",
    "FloorPlan",
    "FlowComputer",
    "IUPT",
    "IndoorFlowSystem",
    "IndoorLocationMatrix",
    "IndoorSpaceLocationGraph",
    "IngestReceipt",
    "InMemoryRecordStore",
    "MethodOutcome",
    "MonteCarlo",
    "NaiveTkPLQ",
    "NestedLoopTkPLQ",
    "PartitionKind",
    "PLocationKind",
    "Point",
    "PositioningRecord",
    "PossiblePath",
    "PresenceComputation",
    "PresenceStore",
    "QueryEngine",
    "QueryPipeline",
    "QueryService",
    "RankedLocation",
    "RecordStore",
    "Rect",
    "RemoteSubscription",
    "Sample",
    "SampleSet",
    "Scenario",
    "ServiceClient",
    "ServiceError",
    "ShardedRecordStore",
    "SearchStats",
    "SemiConstrainedCounting",
    "SimpleCounting",
    "Subscription",
    "TkPLQResult",
    "TkPLQuery",
    "Trajectory",
    "TrajectoryStore",
    "UncertaintyRegionFlow",
    "build_real_scenario",
    "build_synthetic_scenario",
    "build_university_floorplan",
    "kendall_coefficient",
    "recall_at_k",
    "run_method",
    "run_methods",
    "__version__",
]
