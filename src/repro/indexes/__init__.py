"""Index substrates: R-tree, COUNT-aggregate R-tree, 1D R-tree, B+-tree."""

from .aggregate_rtree import AggregateEntry, AggregateNode, CountAggregateRTree
from .bplustree import BPlusTree
from .interval_index import OneDimensionalRTree
from .rtree import RTree, RTreeEntry, RTreeNode

__all__ = [
    "AggregateEntry",
    "AggregateNode",
    "BPlusTree",
    "CountAggregateRTree",
    "OneDimensionalRTree",
    "RTree",
    "RTreeEntry",
    "RTreeNode",
]
