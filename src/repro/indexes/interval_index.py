"""One-dimensional R-tree over time (the paper's "1DR-tree").

The IUPT (Indoor Uncertain Positioning Table) is indexed on its time attribute
with a one-dimensional R-tree so that the range query of Algorithms 2-4
(``tree.RangeQuery([ts, te])``) fetches exactly the positioning records whose
timestamps fall into the query window.

A 1D R-tree is a balanced tree whose nodes carry time intervals instead of
planar rectangles.  We implement it directly (rather than degrading the 2D
R-tree) because the 1D case admits a much simpler and faster packed layout:
records are sorted by timestamp and packed bottom-up, which also matches how a
historical table would be organised on disk.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Any, Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class IntervalNode(Generic[T]):
    """A node of the 1D R-tree covering the time range ``[tmin, tmax]``."""

    tmin: float
    tmax: float
    is_leaf: bool
    entries: List[Tuple[float, T]] = field(default_factory=list)
    children: List["IntervalNode[T]"] = field(default_factory=list)

    def covers(self, start: float, end: float) -> bool:
        return self.tmin <= end and start <= self.tmax


class OneDimensionalRTree(Generic[T]):
    """A packed 1D R-tree over ``(timestamp, record)`` pairs.

    The tree supports appends (records usually arrive in time order, so the
    append path keeps the structure packed) and time-range queries.  Out-of-
    order inserts are accepted and handled by keeping a small unsorted overflow
    buffer that is merged on the next rebuild; this mirrors the behaviour of a
    buffered bulk loader without complicating the query path.
    """

    def __init__(self, leaf_capacity: int = 64, fanout: int = 16):
        if leaf_capacity < 2 or fanout < 2:
            raise ValueError("leaf_capacity and fanout must both be at least 2")
        self._leaf_capacity = leaf_capacity
        self._fanout = fanout
        self._records: List[Tuple[float, T]] = []
        self._root: Optional[IntervalNode[T]] = None
        self._dirty = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, timestamp: float, record: T) -> None:
        """Insert a record; keeps the record list sorted by timestamp."""
        if self._records and timestamp >= self._records[-1][0]:
            self._records.append((timestamp, record))
        else:
            # timestamps may tie; insort on the timestamp key only
            insort(self._records, (timestamp, record), key=lambda pair: pair[0])
        self._dirty = True

    def bulk_load(self, records: Sequence[Tuple[float, T]]) -> None:
        """Replace the tree contents with ``records`` (sorted internally)."""
        self._records = sorted(records, key=lambda pair: pair[0])
        self._dirty = True

    @classmethod
    def from_sorted(
        cls,
        records: Sequence[Tuple[float, T]],
        leaf_capacity: int = 64,
        fanout: int = 16,
    ) -> "OneDimensionalRTree[T]":
        """Bulk-load constructor over records already sorted by timestamp.

        Skips the sort of :meth:`bulk_load` and packs the tree eagerly, so
        the construction cost is paid here rather than on the first query —
        the shape a sharded store wants when it rebuilds one shard's index
        per ingested batch.  Ties must already be in arrival order; the
        packed layout preserves the given order exactly.
        """
        tree: "OneDimensionalRTree[T]" = cls(leaf_capacity=leaf_capacity, fanout=fanout)
        tree._records = list(records)
        tree._dirty = True
        tree._rebuild()
        return tree

    def _rebuild(self) -> None:
        if not self._records:
            self._root = None
            self._dirty = False
            return
        leaves: List[IntervalNode[T]] = []
        for start in range(0, len(self._records), self._leaf_capacity):
            chunk = self._records[start : start + self._leaf_capacity]
            leaves.append(
                IntervalNode(
                    tmin=chunk[0][0],
                    tmax=chunk[-1][0],
                    is_leaf=True,
                    entries=list(chunk),
                )
            )
        level = leaves
        while len(level) > 1:
            parents: List[IntervalNode[T]] = []
            for start in range(0, len(level), self._fanout):
                group = level[start : start + self._fanout]
                parents.append(
                    IntervalNode(
                        tmin=group[0].tmin,
                        tmax=group[-1].tmax,
                        is_leaf=False,
                        children=group,
                    )
                )
            level = parents
        self._root = level[0]
        self._dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def height(self) -> int:
        """Tree height; 0 for an empty tree."""
        if self._dirty:
            self._rebuild()
        if self._root is None:
            return 0
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    @property
    def time_span(self) -> Tuple[float, float]:
        """The ``(earliest, latest)`` timestamps stored, or ``(inf, -inf)`` if empty."""
        if not self._records:
            return (math.inf, -math.inf)
        return (self._records[0][0], self._records[-1][0])

    def __iter__(self) -> Iterator[Tuple[float, T]]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, start: float, end: float) -> List[T]:
        """Return all records whose timestamp lies in ``[start, end]``.

        This is the ``RangeQuery`` primitive used by Algorithms 2-4.  The tree
        descends only into nodes whose interval overlaps the query window.
        """
        if start > end:
            raise ValueError("query interval start must not exceed its end")
        if self._dirty:
            self._rebuild()
        if self._root is None:
            return []
        results: List[T] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.covers(start, end):
                continue
            if node.is_leaf:
                results.extend(
                    record for ts, record in node.entries if start <= ts <= end
                )
            else:
                stack.extend(node.children)
        # The stack traversal visits leaves in reverse chunk order; restore
        # global time order, which downstream sequence construction relies on.
        return results if _is_single_leaf(self._root) else self._sorted_range(start, end)

    def _sorted_range(self, start: float, end: float) -> List[T]:
        keys = [ts for ts, _ in self._records]
        lo = bisect_left(keys, start)
        hi = bisect_right(keys, end)
        return [record for _, record in self._records[lo:hi]]

    def count_in_range(self, start: float, end: float) -> int:
        """Return the number of records with timestamps in ``[start, end]``."""
        keys = [ts for ts, _ in self._records]
        return bisect_right(keys, end) - bisect_left(keys, start)


def _is_single_leaf(root: IntervalNode[Any]) -> bool:
    return root.is_leaf
