"""A B+-tree keyed on timestamps.

An earlier formulation of the paper's flow algorithm indexes the IUPT with a
B+-tree on the time attribute before the final version switches to the 1D
R-tree.  Both are provided so that the index ablation benchmark
(``benchmarks/test_bench_ablation_indexes.py``) can compare them; they expose
the same ``insert`` / ``range_query`` interface.

The implementation is a classic in-memory B+-tree with linked leaves, which
makes the range scan a sequential walk over the leaf chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class _LeafNode(Generic[T]):
    keys: List[float] = field(default_factory=list)
    values: List[List[T]] = field(default_factory=list)
    next: Optional["_LeafNode[T]"] = None


@dataclass
class _InnerNode(Generic[T]):
    keys: List[float] = field(default_factory=list)
    children: List[Any] = field(default_factory=list)


class BPlusTree(Generic[T]):
    """A B+-tree mapping float keys (timestamps) to lists of records.

    Duplicate keys are supported: all records sharing a timestamp are stored
    in the same leaf slot, which matches how multiple objects can report at
    the same sampling instant.
    """

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError("order must be at least 4")
        self._order = order
        self._root: Any = _LeafNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @classmethod
    def bulk_load(
        cls, pairs: Iterable[Tuple[float, T]], order: int = 32
    ) -> "BPlusTree[T]":
        """Build a tree from ``(key, value)`` pairs already sorted by key.

        Classic bottom-up bulk loading: duplicate keys are grouped into one
        leaf slot (preserving the given value order), leaves are packed to
        the tree order and linked, and the inner levels are built over the
        minimum key of each subtree — the same separator convention the
        insert path's splits produce, so a bulk-loaded tree answers every
        query exactly like an insert-built one.  Cost is O(n) against
        O(n log n) comparisons (and per-call overhead) for n inserts.
        """
        tree: "BPlusTree[T]" = cls(order=order)
        keys: List[float] = []
        buckets: List[List[T]] = []
        size = 0
        for key, value in pairs:
            if keys and key == keys[-1]:
                buckets[-1].append(value)
            else:
                keys.append(key)
                buckets.append([value])
            size += 1
        if not keys:
            return tree

        leaves: List[_LeafNode[T]] = []
        for start in range(0, len(keys), order):
            leaves.append(
                _LeafNode(
                    keys=keys[start : start + order],
                    values=buckets[start : start + order],
                )
            )
        for left, right in zip(leaves, leaves[1:]):
            left.next = right

        level: List[Any] = list(leaves)
        minima: List[float] = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: List[Any] = []
            parent_minima: List[float] = []
            for start in range(0, len(level), order):
                group = level[start : start + order]
                group_minima = minima[start : start + order]
                parents.append(
                    _InnerNode(keys=group_minima[1:], children=group)
                )
                parent_minima.append(group_minima[0])
            level = parents
            minima = parent_minima

        tree._root = level[0]
        tree._size = size
        return tree

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
            height += 1
        return height

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: float, value: T) -> None:
        """Insert ``value`` under ``key``."""
        result = self._insert(self._root, key, value)
        if result is not None:
            split_key, right = result
            new_root: _InnerNode[T] = _InnerNode(keys=[split_key], children=[self._root, right])
            self._root = new_root
        self._size += 1

    def _insert(self, node: Any, key: float, value: T) -> Optional[Tuple[float, Any]]:
        if isinstance(node, _LeafNode):
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [value])
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None

        index = _upper_bound(node.keys, key)
        result = self._insert(node.children[index], key, value)
        if result is None:
            return None
        split_key, right = result
        node.keys.insert(index, split_key)
        node.children.insert(index + 1, right)
        if len(node.children) > self._order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, node: _LeafNode[T]) -> Tuple[float, _LeafNode[T]]:
        middle = len(node.keys) // 2
        right: _LeafNode[T] = _LeafNode(
            keys=node.keys[middle:], values=node.values[middle:], next=node.next
        )
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        node.next = right
        return right.keys[0], right

    def _split_inner(self, node: _InnerNode[T]) -> Tuple[float, _InnerNode[T]]:
        middle = len(node.keys) // 2
        split_key = node.keys[middle]
        right: _InnerNode[T] = _InnerNode(
            keys=node.keys[middle + 1 :], children=node.children[middle + 1 :]
        )
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return split_key, right

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, key: float) -> List[T]:
        """Return all records stored under exactly ``key``."""
        leaf, index = self._find_leaf(key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range_query(self, start: float, end: float) -> List[T]:
        """Return all records with keys in ``[start, end]`` in key order."""
        if start > end:
            raise ValueError("query interval start must not exceed its end")
        leaf, index = self._find_leaf(start)
        results: List[T] = []
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > end:
                    return results
                if key >= start:
                    results.extend(leaf.values[index])
                index += 1
            leaf = leaf.next
            index = 0
        return results

    def items(self) -> Iterator[Tuple[float, T]]:
        """Yield every ``(key, value)`` pair in key order."""
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        leaf: Optional[_LeafNode[T]] = node
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.values):
                for value in bucket:
                    yield key, value
            leaf = leaf.next

    def _find_leaf(self, key: float) -> Tuple[_LeafNode[T], int]:
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[_upper_bound(node.keys, key)]
        return node, _lower_bound(node.keys, key)


def _lower_bound(keys: List[float], key: float) -> int:
    from bisect import bisect_left

    return bisect_left(keys, key)


def _upper_bound(keys: List[float], key: float) -> int:
    from bisect import bisect_right

    return bisect_right(keys, key)
