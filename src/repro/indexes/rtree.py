"""An in-memory R-tree over axis-aligned rectangles.

The paper keeps several in-memory R-trees: one over indoor entities
(S-locations, P-locations, doors) to answer geometric containment queries
during pre-processing, one over the query S-locations (``RQ`` in Algorithm 4),
and a COUNT-aggregate variant over moving objects (``RC``).  This module
implements the plain R-tree with quadratic-split insertion and STR (Sort-Tile-
Recursive) bulk loading; :mod:`repro.indexes.aggregate_rtree` builds the
aggregate variant on top of it.

The tree stores arbitrary Python objects keyed by their MBR.  Entries on
different floors are kept apart naturally because cross-floor rectangles never
intersect; the root may therefore span several floors, which only costs a few
extra node visits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..geometry import Point, Rect

DEFAULT_MAX_ENTRIES = 8


@dataclass
class RTreeEntry:
    """A leaf-level entry: an MBR and the payload object it bounds."""

    mbr: Rect
    item: Any


@dataclass
class RTreeNode:
    """An R-tree node.  Leaf nodes hold :class:`RTreeEntry`, inner nodes hold children."""

    is_leaf: bool
    entries: List[RTreeEntry] = field(default_factory=list)
    children: List["RTreeNode"] = field(default_factory=list)
    mbr: Optional[Rect] = None

    def recompute_mbr(self) -> None:
        rects: List[Rect]
        if self.is_leaf:
            rects = [e.mbr for e in self.entries]
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
        self.mbr = _union_across_floors(rects) if rects else None

    def fanout(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


def _union_across_floors(rects: Sequence[Rect]) -> Rect:
    """Union rectangles that may span several floors.

    The result is only used for pruning, so a floor-agnostic bound (the floor
    of the first rectangle, planar union of all) is acceptable: it is
    conservative in x/y, and floor filtering happens at the entry level.
    """
    if not rects:
        raise ValueError("cannot union an empty rectangle collection")
    floor = rects[0].floor
    xmin = min(r.xmin for r in rects)
    ymin = min(r.ymin for r in rects)
    xmax = max(r.xmax for r in rects)
    ymax = max(r.ymax for r in rects)
    same_floor = all(r.floor == floor for r in rects)
    return Rect(xmin, ymin, xmax, ymax, floor if same_floor else -1)


def _loose_intersects(a: Optional[Rect], b: Rect) -> bool:
    """Planar intersection test that ignores the floor of multi-floor MBRs."""
    if a is None:
        return False
    if a.floor != -1 and b.floor != -1 and a.floor != b.floor:
        return False
    return (
        a.xmin <= b.xmax
        and b.xmin <= a.xmax
        and a.ymin <= b.ymax
        and b.ymin <= a.ymax
    )


class RTree:
    """A dynamic R-tree with quadratic splits and STR bulk loading.

    Parameters
    ----------
    max_entries:
        Maximum node fanout; minimum fanout is ``max(2, max_entries // 2)``.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max_entries = max_entries
        self._min_entries = max(2, max_entries // 2)
        self._root = RTreeNode(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> RTreeNode:
        return self._root

    @property
    def height(self) -> int:
        """Number of levels in the tree (a lone leaf root has height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def items(self) -> Iterator[Tuple[Rect, Any]]:
        """Yield all ``(mbr, item)`` pairs in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.mbr, entry.item
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, mbr: Rect, item: Any) -> None:
        """Insert ``item`` with bounding rectangle ``mbr``."""
        entry = RTreeEntry(mbr=mbr, item=item)
        leaf, path = self._choose_leaf(entry.mbr)
        leaf.entries.append(entry)
        self._size += 1
        self._adjust_upwards(leaf, path)

    def insert_point(self, point: Point, item: Any) -> None:
        """Insert ``item`` keyed by a degenerate point MBR."""
        self.insert(Rect.from_point(point), item)

    def _choose_leaf(self, mbr: Rect) -> Tuple[RTreeNode, List[RTreeNode]]:
        node = self._root
        path: List[RTreeNode] = []
        while not node.is_leaf:
            path.append(node)
            node = min(
                node.children,
                key=lambda child: (
                    _enlargement(child.mbr, mbr),
                    child.mbr.area if child.mbr is not None else 0.0,
                ),
            )
        return node, path

    def _adjust_upwards(self, node: RTreeNode, path: List[RTreeNode]) -> None:
        node.recompute_mbr()
        split = self._split_if_needed(node)
        for parent in reversed(path):
            if split is not None:
                parent.children.append(split)
            parent.recompute_mbr()
            split = self._split_if_needed(parent)
        if split is not None:
            old_root = self._root
            self._root = RTreeNode(is_leaf=False, children=[old_root, split])
            self._root.recompute_mbr()

    def _split_if_needed(self, node: RTreeNode) -> Optional[RTreeNode]:
        if node.fanout() <= self._max_entries:
            return None
        return self._quadratic_split(node)

    def _quadratic_split(self, node: RTreeNode) -> RTreeNode:
        if node.is_leaf:
            items = list(node.entries)
            mbr_of: Callable[[Any], Rect] = lambda e: e.mbr
        else:
            items = list(node.children)
            mbr_of = lambda c: c.mbr  # type: ignore[assignment]

        seed_a, seed_b = _pick_seeds(items, mbr_of)
        group_a = [items[seed_a]]
        group_b = [items[seed_b]]
        remaining = [it for i, it in enumerate(items) if i not in (seed_a, seed_b)]
        mbr_a = mbr_of(items[seed_a])
        mbr_b = mbr_of(items[seed_b])

        while remaining:
            # If one group must absorb everything to reach the minimum, do so.
            if len(group_a) + len(remaining) == self._min_entries:
                group_a.extend(remaining)
                for it in remaining:
                    mbr_a = _loose_union(mbr_a, mbr_of(it))
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min_entries:
                group_b.extend(remaining)
                for it in remaining:
                    mbr_b = _loose_union(mbr_b, mbr_of(it))
                remaining = []
                break
            best_index = max(
                range(len(remaining)),
                key=lambda i: abs(
                    _enlargement(mbr_a, mbr_of(remaining[i]))
                    - _enlargement(mbr_b, mbr_of(remaining[i]))
                ),
            )
            candidate = remaining.pop(best_index)
            grow_a = _enlargement(mbr_a, mbr_of(candidate))
            grow_b = _enlargement(mbr_b, mbr_of(candidate))
            if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
                group_a.append(candidate)
                mbr_a = _loose_union(mbr_a, mbr_of(candidate))
            else:
                group_b.append(candidate)
                mbr_b = _loose_union(mbr_b, mbr_of(candidate))

        sibling = RTreeNode(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Tuple[Rect, Any]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree":
        """Build an R-tree from ``(mbr, item)`` pairs using STR packing."""
        tree = cls(max_entries=max_entries)
        entries = [RTreeEntry(mbr=mbr, item=item) for mbr, item in items]
        tree._size = len(entries)
        if not entries:
            return tree
        leaves = _str_pack_leaves(entries, max_entries)
        tree._root = _build_upper_levels(leaves, max_entries)
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, window: Rect) -> List[Any]:
        """Return the payloads of all entries whose MBR intersects ``window``."""
        return [item for _, item in self.search_entries(window)]

    def search_entries(self, window: Rect) -> List[Tuple[Rect, Any]]:
        """Return ``(mbr, item)`` pairs of all entries intersecting ``window``."""
        results: List[Tuple[Rect, Any]] = []
        if self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not _loose_intersects(node.mbr, window):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if entry.mbr.intersects(window):
                        results.append((entry.mbr, entry.item))
            else:
                stack.extend(node.children)
        return results

    def search_point(self, point: Point) -> List[Any]:
        """Return the payloads of all entries whose MBR contains ``point``."""
        return self.search(Rect.from_point(point))

    def nearest(self, point: Point, count: int = 1) -> List[Tuple[float, Any]]:
        """Return the ``count`` entries nearest to ``point`` as ``(distance, item)``.

        A simple branch-and-bound traversal; adequate for the moderate tree
        sizes used in the reproduction (P-location lookup during positioning).
        """
        import heapq

        if self._size == 0:
            return []
        heap: List[Tuple[float, int, Any, bool]] = []
        counter = 0
        heapq.heappush(heap, (0.0, counter, self._root, False))
        results: List[Tuple[float, Any]] = []
        while heap and len(results) < count:
            distance, _, payload, is_entry = heapq.heappop(heap)
            if is_entry:
                results.append((distance, payload))
                continue
            node: RTreeNode = payload
            if node.is_leaf:
                for entry in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (entry.mbr.distance_to_point(point), counter, entry.item, True),
                    )
            else:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    counter += 1
                    heapq.heappush(
                        heap,
                        (child.mbr.distance_to_point(point), counter, child, False),
                    )
        return results


# ----------------------------------------------------------------------
# Helpers shared with the aggregate R-tree
# ----------------------------------------------------------------------
def _enlargement(current: Optional[Rect], addition: Rect) -> float:
    if current is None:
        return addition.area
    return _loose_union(current, addition).area - current.area


def _loose_union(a: Rect, b: Rect) -> Rect:
    """Union that tolerates different floors (marks the result floor as -1)."""
    floor = a.floor if a.floor == b.floor else -1
    return Rect(
        min(a.xmin, b.xmin),
        min(a.ymin, b.ymin),
        max(a.xmax, b.xmax),
        max(a.ymax, b.ymax),
        floor,
    )


def _str_pack_leaves(entries: List[RTreeEntry], max_entries: int) -> List[RTreeNode]:
    """Pack leaf nodes with the Sort-Tile-Recursive heuristic."""
    import math

    entries = sorted(entries, key=lambda e: (e.mbr.floor, e.mbr.center.x))
    leaf_count = max(1, math.ceil(len(entries) / max_entries))
    slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
    slice_size = max(1, math.ceil(len(entries) / slice_count))
    leaves: List[RTreeNode] = []
    for start in range(0, len(entries), slice_size):
        vertical = sorted(
            entries[start : start + slice_size], key=lambda e: e.mbr.center.y
        )
        for leaf_start in range(0, len(vertical), max_entries):
            node = RTreeNode(
                is_leaf=True, entries=vertical[leaf_start : leaf_start + max_entries]
            )
            node.recompute_mbr()
            leaves.append(node)
    return leaves


def _build_upper_levels(nodes: List[RTreeNode], max_entries: int) -> RTreeNode:
    """Stack packed nodes into upper levels until a single root remains."""
    import math

    while len(nodes) > 1:
        nodes = sorted(
            nodes,
            key=lambda n: (n.mbr.floor if n.mbr else 0, n.mbr.center.x if n.mbr else 0.0),
        )
        parent_count = max(1, math.ceil(len(nodes) / max_entries))
        slice_count = max(1, math.ceil(math.sqrt(parent_count)))
        slice_size = max(1, math.ceil(len(nodes) / slice_count))
        parents: List[RTreeNode] = []
        for start in range(0, len(nodes), slice_size):
            vertical = sorted(
                nodes[start : start + slice_size],
                key=lambda n: n.mbr.center.y if n.mbr else 0.0,
            )
            for parent_start in range(0, len(vertical), max_entries):
                parent = RTreeNode(
                    is_leaf=False,
                    children=vertical[parent_start : parent_start + max_entries],
                )
                parent.recompute_mbr()
                parents.append(parent)
        nodes = parents
    return nodes[0]


def _pick_seeds(items: List[Any], mbr_of: Callable[[Any], Rect]) -> Tuple[int, int]:
    """Pick the pair of entries wasting the most area if grouped together."""
    best_pair = (0, 1)
    best_waste = float("-inf")
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            a, b = mbr_of(items[i]), mbr_of(items[j])
            waste = _loose_union(a, b).area - a.area - b.area
            if waste > best_waste:
                best_waste = waste
                best_pair = (i, j)
    return best_pair
