"""COUNT-aggregate R-tree used by the Best-First TkPLQ algorithm.

Algorithm 4 of the paper organises moving objects into "an in-memory
COUNT-aggregate R-tree" ``RC`` where "each non-leaf node entry e ... is
augmented with a count e.count that stores the number of objects covered in
e's child nodes".  The Best-First search joins this tree against the R-tree of
query S-locations and uses the counts as upper bounds on flow (an object's
presence never exceeds 1).

This module wraps the generic :class:`~repro.indexes.rtree.RTree` with count
maintenance and exposes the node/entry view the join algorithm needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from ..geometry import Rect
from .rtree import RTree, RTreeNode


@dataclass
class AggregateEntry:
    """A uniform view over aggregate-tree entries used during the join.

    ``node`` is ``None`` for leaf-level entries (concrete objects); otherwise
    it points at the child node this entry summarises.
    """

    mbr: Rect
    count: int
    node: Optional["AggregateNode"]
    item: Any = None

    @property
    def is_leaf_entry(self) -> bool:
        return self.node is None


@dataclass
class AggregateNode:
    """A node of the COUNT-aggregate R-tree."""

    is_leaf: bool
    entries: List[AggregateEntry]
    mbr: Optional[Rect]
    count: int


class CountAggregateRTree:
    """A COUNT-aggregate R-tree over ``(mbr, item)`` pairs.

    Built once (bulk loaded) per query from the objects that survive the data
    reduction step, so only construction and read access are needed.
    """

    def __init__(self, max_entries: int = 8):
        self._max_entries = max_entries
        self._items: List[Tuple[Rect, Any]] = []
        self._root: Optional[AggregateNode] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, mbr: Rect, item: Any) -> None:
        """Buffer an ``(mbr, item)`` pair; the tree is built lazily on access."""
        self._items.append((mbr, item))
        self._root = None

    def extend(self, items: Iterable[Tuple[Rect, Any]]) -> None:
        for mbr, item in items:
            self.insert(mbr, item)

    def build(self) -> None:
        """Materialise the aggregate tree from the buffered items."""
        base = RTree.bulk_load(self._items, max_entries=self._max_entries)
        self._root = _convert(base.root) if len(base) else _empty_node()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def root(self) -> AggregateNode:
        if self._root is None:
            self.build()
        assert self._root is not None
        return self._root

    def root_entries(self) -> List[AggregateEntry]:
        """Return the entries of the root node (the starting join list)."""
        return list(self.root.entries)

    def total_count(self) -> int:
        return self.root.count

    def all_items(self) -> List[Any]:
        """Return every indexed payload (used by tests and the naive join)."""
        return [item for _, item in self._items]

    def items_under(self, entry: AggregateEntry) -> List[Any]:
        """Return all payloads covered by ``entry`` (its subtree)."""
        if entry.is_leaf_entry:
            return [entry.item]
        collected: List[Any] = []
        stack = [entry.node]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node.is_leaf:
                collected.extend(e.item for e in node.entries)
            else:
                stack.extend(e.node for e in node.entries)
        return collected


def _convert(node: RTreeNode) -> AggregateNode:
    """Recursively convert a plain R-tree node into an aggregate node."""
    if node.is_leaf:
        entries = [
            AggregateEntry(mbr=e.mbr, count=1, node=None, item=e.item)
            for e in node.entries
        ]
        return AggregateNode(
            is_leaf=True,
            entries=entries,
            mbr=node.mbr,
            count=len(entries),
        )
    child_nodes = [_convert(child) for child in node.children]
    entries = [
        AggregateEntry(mbr=child.mbr, count=child.count, node=child)
        for child in child_nodes
        if child.mbr is not None
    ]
    return AggregateNode(
        is_leaf=False,
        entries=entries,
        mbr=node.mbr,
        count=sum(child.count for child in child_nodes),
    )


def _empty_node() -> AggregateNode:
    return AggregateNode(is_leaf=True, entries=[], mbr=None, count=0)
