"""Synthetic data generation: buildings, movement, positioning, RFID, scenarios."""

from .building import BuildingConfig, GeneratedBuilding, GridBuildingGenerator, build_grid_building
from .movement import MovementConfig, RandomWaypointSimulator
from .positioning import PositioningConfig, WkNNPositioningSimulator
from .realdata import build_university_floorplan, university_floor_statistics
from .rfid_sim import RFIDConfig, RFIDSimulator
from .scenario import Scenario, build_real_scenario, build_synthetic_scenario

__all__ = [
    "BuildingConfig",
    "GeneratedBuilding",
    "GridBuildingGenerator",
    "MovementConfig",
    "PositioningConfig",
    "RFIDConfig",
    "RFIDSimulator",
    "RandomWaypointSimulator",
    "Scenario",
    "WkNNPositioningSimulator",
    "build_grid_building",
    "build_real_scenario",
    "build_synthetic_scenario",
    "build_university_floorplan",
    "university_floor_statistics",
]
