"""RFID reader deployment and detection simulator (Section 5.3.3).

The paper compares against RFID-based flow methods by replaying the same
ground-truth trajectories through an RFID tracking model: ordinary readers
with a 3-metre detection range are deployed at doors, detection ranges must
not overlap, and a record ``(o, r, ts, te)`` is produced whenever object ``o``
stays inside reader ``r``'s range during ``[ts, te]``.  Because of the
non-overlap constraint some doors end up without a reader — exactly the
situation that degrades the SCC baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..data.rfid import RFIDReader, RFIDRecord, RFIDTable
from ..data.trajectory import TrajectoryStore
from ..space import FloorPlan


@dataclass(frozen=True)
class RFIDConfig:
    """Parameters of the RFID deployment and detection simulation."""

    detection_range: float = 3.0
    min_reader_separation_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.detection_range <= 0:
            raise ValueError("detection_range must be positive")
        if self.min_reader_separation_factor < 2.0:
            raise ValueError(
                "readers must be separated by at least twice the detection range "
                "for their ranges not to overlap"
            )


class RFIDSimulator:
    """Deploys readers at doors and converts trajectories into RFID records."""

    def __init__(self, plan: FloorPlan, config: RFIDConfig = RFIDConfig()):
        self._plan = plan.freeze()
        self._config = config

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy_readers(self) -> RFIDTable:
        """Place readers at doors greedily while keeping ranges disjoint.

        Doors are visited in id order; a reader is added when its range would
        not overlap any previously placed reader on the same floor.  The
        result maximises reader count under the non-overlap constraint in the
        same greedy spirit as the paper ("we maximize the number of readers").
        """
        config = self._config
        table = RFIDTable()
        placed: List[RFIDReader] = []
        separation = config.detection_range * config.min_reader_separation_factor
        for door in sorted(self._plan.doors.values(), key=lambda d: d.door_id):
            position = door.position
            if any(
                reader.position.distance_to(position) < separation
                for reader in placed
                if reader.position.floor == position.floor
            ):
                continue
            reader = RFIDReader(
                reader_id=len(placed),
                position=position,
                detection_range=config.detection_range,
                door_id=door.door_id,
            )
            placed.append(reader)
            table.add_reader(reader)
        return table

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def generate(self, trajectories: TrajectoryStore, table: Optional[RFIDTable] = None) -> RFIDTable:
        """Produce the RFID tracking records of every trajectory.

        ``table`` may carry a pre-built deployment (from :meth:`deploy_readers`);
        otherwise a fresh deployment is created.
        """
        if table is None:
            table = self.deploy_readers()
        readers = list(table.readers.values())
        for trajectory in trajectories:
            table.ingest_batch(self._records_for(trajectory, readers))
        return table

    def _records_for(
        self, trajectory, readers: List[RFIDReader]
    ) -> List[RFIDRecord]:
        # open_intervals[reader_id] = (start, last_seen)
        open_intervals: Dict[int, Tuple[float, float]] = {}
        records: List[RFIDRecord] = []
        for point in trajectory.points:
            detected = {
                reader.reader_id
                for reader in readers
                if reader.detects(point.location)
            }
            for reader_id in detected:
                if reader_id in open_intervals:
                    start, _ = open_intervals[reader_id]
                    open_intervals[reader_id] = (start, point.timestamp)
                else:
                    open_intervals[reader_id] = (point.timestamp, point.timestamp)
            closed = [rid for rid in open_intervals if rid not in detected]
            for reader_id in closed:
                start, last_seen = open_intervals.pop(reader_id)
                records.append(
                    RFIDRecord(trajectory.object_id, reader_id, start, last_seen)
                )
        for reader_id, (start, last_seen) in open_intervals.items():
            records.append(RFIDRecord(trajectory.object_id, reader_id, start, last_seen))
        records.sort(key=lambda record: (record.ts, record.te, record.reader_id))
        return records
