"""The "real data" scenario: the university test floor of Section 5.2.

The paper's real dataset (35 smartphone users tracked over a 33.9 m x 25.9 m
university floor with 14 S-locations and 75 Wi-Fi reference points) is not
publicly available.  Following the substitution policy in DESIGN.md, this
module rebuilds a floor plan with the same structure and statistics — 9 office
rooms plus 5 hallway segments, partitioning P-locations at the doors, presence
reference points on a lattice with a density giving roughly 75 P-locations in
total — and the scenario builder then simulates 35 users over it with the
reported positioning characteristics (reporting period ≤ 3 s, up to 4 samples
per report, ~2.1 m positioning error).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..geometry import Point, Rect
from ..space import FloorPlan, PartitionKind
from .building import clamped_lattice

FLOOR_WIDTH = 33.9
FLOOR_HEIGHT = 25.9
HALLWAY_BAND = (10.0, 15.9)


def build_university_floorplan(presence_grid_step: float = 3.4) -> FloorPlan:
    """Build the single-floor university test plan of Figure 6.

    Layout (all sizes in metres):

    * five office rooms along the top edge and four along the bottom edge;
    * a central hallway band split into five hallway segments;
    * every room has one door into the hallway band (guarded by a
      partitioning P-location);
    * neighbouring hallway segments connect through guarded doors, so each
      room and each hallway segment is its own cell — matching the fine
      granularity of the paper's real deployment;
    * presence P-locations on a regular lattice inside every partition.
    """
    plan = FloorPlan()
    hallway_ymin, hallway_ymax = HALLWAY_BAND

    top_rooms = _add_row_of_rooms(
        plan, count=5, ymin=hallway_ymax, ymax=FLOOR_HEIGHT, prefix="office-top"
    )
    bottom_rooms = _add_row_of_rooms(
        plan, count=4, ymin=0.0, ymax=hallway_ymin, prefix="office-bottom"
    )
    hallways = _add_hallway_segments(plan, count=5, ymin=hallway_ymin, ymax=hallway_ymax)

    _connect_rooms(plan, top_rooms, hallways, door_y=hallway_ymax, room_edge="bottom")
    _connect_rooms(plan, bottom_rooms, hallways, door_y=hallway_ymin, room_edge="top")
    _connect_hallways(plan, hallways, hallway_ymin, hallway_ymax)

    _add_presence_lattice(plan, presence_grid_step)
    for partition_id in list(plan.partitions):
        plan.add_slocation_for_partition(partition_id)
    return plan.freeze()


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def _add_row_of_rooms(
    plan: FloorPlan, count: int, ymin: float, ymax: float, prefix: str
) -> List[int]:
    width = FLOOR_WIDTH / count
    rooms = []
    for index in range(count):
        rect = Rect(index * width, ymin, (index + 1) * width, ymax, 0)
        rooms.append(
            plan.add_partition(rect, PartitionKind.ROOM, name=f"{prefix}-{index}")
        )
    return rooms


def _add_hallway_segments(
    plan: FloorPlan, count: int, ymin: float, ymax: float
) -> List[int]:
    width = FLOOR_WIDTH / count
    segments = []
    for index in range(count):
        rect = Rect(index * width, ymin, (index + 1) * width, ymax, 0)
        segments.append(
            plan.add_partition(rect, PartitionKind.HALLWAY, name=f"hallway-{index}")
        )
    return segments


def _connect_rooms(
    plan: FloorPlan,
    rooms: List[int],
    hallways: List[int],
    door_y: float,
    room_edge: str,
) -> None:
    for room_id in rooms:
        room_rect = plan.partitions[room_id].rect
        door_x = (room_rect.xmin + room_rect.xmax) / 2.0
        hallway_id = _hallway_for_x(plan, hallways, door_x)
        door_point = Point(door_x, door_y, 0)
        door_id = plan.add_door(door_point, (room_id, hallway_id))
        plan.add_partitioning_plocation(door_point, door_id)


def _hallway_for_x(plan: FloorPlan, hallways: List[int], x: float) -> int:
    for hallway_id in hallways:
        rect = plan.partitions[hallway_id].rect
        if rect.xmin <= x <= rect.xmax:
            return hallway_id
    return hallways[-1]


def _connect_hallways(
    plan: FloorPlan, hallways: List[int], ymin: float, ymax: float
) -> None:
    middle_y = (ymin + ymax) / 2.0
    for left, right in zip(hallways, hallways[1:]):
        boundary_x = plan.partitions[left].rect.xmax
        door_point = Point(boundary_x, middle_y, 0)
        door_id = plan.add_door(door_point, (left, right))
        plan.add_partitioning_plocation(door_point, door_id)


def _add_presence_lattice(plan: FloorPlan, step: float) -> None:
    # The clamped lattice guarantees coverage even when the step exceeds a
    # partition's extent (the default 3.4 m step fits every partition here,
    # but a caller-supplied step above the 5.9 m hallway-band height would
    # otherwise leave the hallways without reference points — the all-zero-
    # flows failure mode fixed for the grid generator).
    for partition in list(plan.partitions.values()):
        for point in clamped_lattice(partition.rect, step):
            plan.add_presence_plocation(point, partition.partition_id)


def university_floor_statistics(plan: FloorPlan) -> Dict[str, int]:
    """Summarise the generated plan next to the paper's reported numbers."""
    summary = plan.summary()
    summary["paper_slocations"] = 14
    summary["paper_plocations"] = 75
    summary["paper_partitioning_plocations"] = 16
    return summary
