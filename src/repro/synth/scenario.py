"""End-to-end scenario builders used by examples, experiments, and benchmarks.

A :class:`Scenario` bundles everything one evaluation run needs: the floor
plan and the query system built on it, the uncertain positioning table, the
ground-truth trajectories, and (optionally) the RFID tracking table for the
SCC / UR baselines.  Two factories are provided:

* :func:`build_real_scenario` — the university-floor scenario mirroring the
  paper's real dataset (Section 5.2);
* :func:`build_synthetic_scenario` — the parameterised multi-floor grid
  building mirroring the Vita-generated dataset (Section 5.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import DataReductionConfig, IndoorFlowSystem
from ..data import IUPT, RFIDTable, TrajectoryStore
from ..space import FloorPlan
from .building import BuildingConfig, GridBuildingGenerator
from .movement import MovementConfig, RandomWaypointSimulator
from .positioning import PositioningConfig, WkNNPositioningSimulator
from .realdata import build_university_floorplan
from .rfid_sim import RFIDConfig, RFIDSimulator


@dataclass
class Scenario:
    """A fully prepared evaluation scenario."""

    name: str
    plan: FloorPlan
    system: IndoorFlowSystem
    iupt: IUPT
    trajectories: TrajectoryStore
    rfid: Optional[RFIDTable] = None
    params: Dict[str, float] = field(default_factory=dict)
    start_time: float = 0.0
    duration_seconds: float = 0.0

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_seconds

    def slocation_ids(self) -> List[int]:
        return sorted(self.plan.slocations)

    def query_interval(self, delta_seconds: Optional[float] = None, seed: int = 0) -> Tuple[float, float]:
        """A query window of length ``delta_seconds`` inside the scenario span.

        The window start is drawn deterministically from ``seed`` so repeated
        experiment runs issue the same queries.
        """
        if delta_seconds is None or delta_seconds >= self.duration_seconds:
            return (self.start_time, self.end_time)
        rng = random.Random(seed)
        start = self.start_time + rng.uniform(0.0, self.duration_seconds - delta_seconds)
        return (start, start + delta_seconds)

    def pick_query_slocations(self, fraction: float, seed: int = 0) -> List[int]:
        """A deterministic random subset of S-locations covering ``fraction`` of them."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        ids = self.slocation_ids()
        count = max(1, round(len(ids) * fraction))
        rng = random.Random(seed)
        return sorted(rng.sample(ids, count))

    def ground_truth_flows(self, start: float, end: float) -> Dict[int, int]:
        """Per-S-location ground-truth visit counts over ``[start, end]``."""
        return self.trajectories.true_visit_counts(self.plan, start, end)

    def with_mss(self, mss: int) -> "Scenario":
        """A copy of the scenario whose IUPT is truncated to ``mss`` samples."""
        return Scenario(
            name=f"{self.name}-mss{mss}",
            plan=self.plan,
            system=self.system,
            iupt=self.iupt.with_max_sample_set_size(mss),
            trajectories=self.trajectories,
            rfid=self.rfid,
            params={**self.params, "mss": mss},
            start_time=self.start_time,
            duration_seconds=self.duration_seconds,
        )


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def build_real_scenario(
    num_users: int = 35,
    duration_seconds: float = 1800.0,
    max_period_seconds: float = 3.0,
    max_sample_set_size: int = 4,
    positioning_error: float = 2.1,
    seed: int = 11,
    reduction: DataReductionConfig = DataReductionConfig.enabled(),
    with_rfid: bool = False,
    store_kind: str = "flat",
    shard_seconds: Optional[float] = None,
) -> Scenario:
    """Build the university-floor scenario of Section 5.2.

    The defaults follow the paper's reported data characteristics; the
    duration defaults to 30 simulated minutes (the paper uses 150) to keep
    test and benchmark runtimes reasonable — pass a larger value for
    paper-scale runs.  ``store_kind`` selects the IUPT storage backend
    (``"flat"`` or ``"sharded"``); ``shard_seconds`` overrides the sharded
    store's partition duration.
    """
    plan = build_university_floorplan()
    system = IndoorFlowSystem(plan, reduction=reduction)

    movement = RandomWaypointSimulator(
        plan,
        MovementConfig(max_speed=1.2, dwell_min_seconds=60.0, dwell_max_seconds=300.0),
        seed=seed,
    )
    trajectories = movement.simulate(num_users, start_time=0.0, duration_seconds=duration_seconds)

    positioning = WkNNPositioningSimulator(
        plan,
        PositioningConfig(
            max_sample_set_size=max_sample_set_size,
            max_period_seconds=max_period_seconds,
            positioning_error=positioning_error,
        ),
        seed=seed + 1,
    )
    iupt = positioning.generate(
        trajectories, store_kind=store_kind, shard_seconds=shard_seconds
    )

    rfid = None
    if with_rfid:
        rfid = RFIDSimulator(plan).generate(trajectories)

    return Scenario(
        name="real",
        plan=plan,
        system=system,
        iupt=iupt,
        trajectories=trajectories,
        rfid=rfid,
        params={
            "num_users": num_users,
            "duration_seconds": duration_seconds,
            "T": max_period_seconds,
            "mss": max_sample_set_size,
            "mu": positioning_error,
            "seed": seed,
        },
        start_time=0.0,
        duration_seconds=duration_seconds,
    )


def build_synthetic_scenario(
    num_objects: int = 60,
    floors: int = 2,
    room_rows: int = 2,
    rooms_per_row: int = 5,
    duration_seconds: float = 900.0,
    max_period_seconds: float = 3.0,
    max_sample_set_size: int = 4,
    positioning_error: float = 2.0,
    presence_grid_step: float = 6.0,
    max_speed: float = 1.0,
    seed: int = 23,
    reduction: DataReductionConfig = DataReductionConfig.enabled(),
    with_rfid: bool = False,
    store_kind: str = "flat",
    shard_seconds: Optional[float] = None,
) -> Scenario:
    """Build the Vita-like synthetic scenario of Section 5.3.

    The defaults use a reduced scale (2 floors, tens of objects, 15 simulated
    minutes) so the full benchmark suite runs in minutes on a laptop; every
    knob of the paper's Table 6 (``|O|``, ``T``, ``µ``, ``mss``, ``Δt``) is a
    parameter, and floors / rooms can be dialled up to the paper's 5-floor,
    100-rooms-per-floor configuration for full-scale runs.

    The default positioning error matches the real dataset's reported
    ~2.1 m: with 12 m rooms, a larger µ (the historical default was 5 m,
    i.e. a 10 m candidate radius) makes the simulated WkNN report reference
    points from beyond a whole room away, which yields topologically
    impossible positioning sequences and all-zero flows.  ``store_kind``
    selects the IUPT storage backend (``"flat"`` or ``"sharded"``);
    ``shard_seconds`` overrides the sharded store's partition duration.
    """
    building = GridBuildingGenerator(
        BuildingConfig(
            floors=floors,
            room_rows=room_rows,
            rooms_per_row=rooms_per_row,
            presence_grid_step=presence_grid_step,
            seed=seed,
        )
    ).generate()
    plan = building.plan
    system = IndoorFlowSystem(plan, reduction=reduction)

    movement = RandomWaypointSimulator(
        plan,
        MovementConfig(
            max_speed=max_speed,
            dwell_min_seconds=30.0,
            dwell_max_seconds=240.0,
        ),
        seed=seed,
    )
    trajectories = movement.simulate(
        num_objects, start_time=0.0, duration_seconds=duration_seconds
    )

    positioning = WkNNPositioningSimulator(
        plan,
        PositioningConfig(
            max_sample_set_size=max_sample_set_size,
            max_period_seconds=max_period_seconds,
            positioning_error=positioning_error,
        ),
        seed=seed + 1,
    )
    iupt = positioning.generate(
        trajectories, store_kind=store_kind, shard_seconds=shard_seconds
    )

    rfid = None
    if with_rfid:
        rfid = RFIDSimulator(plan, RFIDConfig(detection_range=3.0)).generate(trajectories)

    return Scenario(
        name="synthetic",
        plan=plan,
        system=system,
        iupt=iupt,
        trajectories=trajectories,
        rfid=rfid,
        params={
            "num_objects": num_objects,
            "floors": floors,
            "duration_seconds": duration_seconds,
            "T": max_period_seconds,
            "mss": max_sample_set_size,
            "mu": positioning_error,
            "Vmax": max_speed,
            "seed": seed,
        },
        start_time=0.0,
        duration_seconds=duration_seconds,
    )
