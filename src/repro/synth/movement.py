"""Random-waypoint indoor movement simulator (Section 5.3).

Objects follow the random waypoint model constrained to the indoor topology:
an object repeatedly picks a random destination partition, walks there along
the shortest indoor (door-to-door) route at a speed bounded by ``Vmax``,
dwells for a random period, and moves on.  The exact location is recorded
every second, producing the ground-truth trajectories used both by the
positioning / RFID simulators and by the effectiveness metrics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..data.trajectory import Trajectory, TrajectoryPoint, TrajectoryStore
from ..geometry import Point, interpolate
from ..space import DoorGraphRouter, FloorPlan


@dataclass(frozen=True)
class MovementConfig:
    """Parameters of the random waypoint simulation."""

    max_speed: float = 1.0
    min_speed: float = 0.4
    dwell_min_seconds: float = 30.0
    dwell_max_seconds: float = 180.0
    tick_seconds: float = 1.0
    min_lifespan_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_speed <= 0 or self.min_speed <= 0:
            raise ValueError("speeds must be positive")
        if self.min_speed > self.max_speed:
            raise ValueError("min_speed cannot exceed max_speed")
        if self.dwell_min_seconds > self.dwell_max_seconds:
            raise ValueError("dwell_min_seconds cannot exceed dwell_max_seconds")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if not (0.0 < self.min_lifespan_fraction <= 1.0):
            raise ValueError("min_lifespan_fraction must be in (0, 1]")


class RandomWaypointSimulator:
    """Simulates ground-truth trajectories over a floor plan."""

    def __init__(
        self,
        plan: FloorPlan,
        config: MovementConfig = MovementConfig(),
        seed: Optional[int] = None,
        movable_partitions: Optional[Sequence[int]] = None,
    ):
        self._plan = plan.freeze()
        self._config = config
        self._rng = random.Random(seed)
        self._router = DoorGraphRouter(self._plan)
        self._partitions = (
            list(movable_partitions)
            if movable_partitions is not None
            else sorted(self._plan.partitions)
        )
        if not self._partitions:
            raise ValueError("no partitions available for movement simulation")

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self, object_count: int, start_time: float, duration_seconds: float
    ) -> TrajectoryStore:
        """Simulate ``object_count`` objects over ``[start_time, start_time + duration]``."""
        if object_count < 1:
            raise ValueError("object_count must be positive")
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        store = TrajectoryStore()
        for object_id in range(object_count):
            store.add(self._simulate_object(object_id, start_time, duration_seconds))
        return store

    def _simulate_object(
        self, object_id: int, start_time: float, duration_seconds: float
    ) -> Trajectory:
        config = self._config
        rng = self._rng
        lifespan = duration_seconds * rng.uniform(config.min_lifespan_fraction, 1.0)
        begin = start_time + rng.uniform(0.0, duration_seconds - lifespan)
        end = begin + lifespan

        trajectory = Trajectory(object_id)
        current = self._random_point_in(self._random_partition())
        time_cursor = begin
        self._record(trajectory, time_cursor, current)

        while time_cursor < end:
            destination_partition = self._random_partition()
            destination = self._random_point_in(destination_partition)
            time_cursor = self._walk(
                trajectory, current, destination, time_cursor, end
            )
            current = destination if time_cursor < end else trajectory.points[-1].location
            if time_cursor >= end:
                break
            time_cursor = self._dwell(trajectory, current, time_cursor, end)
        return trajectory

    # ------------------------------------------------------------------
    # Movement phases
    # ------------------------------------------------------------------
    def _walk(
        self,
        trajectory: Trajectory,
        origin: Point,
        destination: Point,
        start: float,
        deadline: float,
    ) -> float:
        config = self._config
        route = self._router.route(origin, destination)
        if route is None:
            # Disconnected targets should not occur in generated buildings,
            # but if they do the object simply stays put for one tick.
            self._record(trajectory, start + config.tick_seconds, origin)
            return start + config.tick_seconds

        speed = self._rng.uniform(config.min_speed, config.max_speed)
        time_cursor = start
        waypoints = list(route.waypoints)
        position = waypoints[0]
        for target in waypoints[1:]:
            leg_length = position.distance_to(target)
            if leg_length == float("inf"):
                # Floor change inside a staircase: jump to the target point
                # after a nominal climbing time.
                climb_seconds = 8.0
                steps = max(int(climb_seconds / config.tick_seconds), 1)
                for _ in range(steps):
                    time_cursor += config.tick_seconds
                    if time_cursor > deadline:
                        return time_cursor
                    self._record(trajectory, time_cursor, position)
                position = target
                self._record(trajectory, time_cursor, position)
                continue
            travelled = 0.0
            while travelled < leg_length:
                time_cursor += config.tick_seconds
                if time_cursor > deadline:
                    return time_cursor
                travelled = min(travelled + speed * config.tick_seconds, leg_length)
                fraction = travelled / leg_length if leg_length > 0 else 1.0
                self._record(trajectory, time_cursor, interpolate(position, target, fraction))
            position = target
        return time_cursor

    def _dwell(
        self, trajectory: Trajectory, position: Point, start: float, deadline: float
    ) -> float:
        config = self._config
        dwell = self._rng.uniform(config.dwell_min_seconds, config.dwell_max_seconds)
        time_cursor = start
        elapsed = 0.0
        while elapsed < dwell:
            time_cursor += config.tick_seconds
            if time_cursor > deadline:
                return time_cursor
            elapsed += config.tick_seconds
            self._record(trajectory, time_cursor, position)
        return time_cursor

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _random_partition(self) -> int:
        return self._rng.choice(self._partitions)

    def _random_point_in(self, partition_id: int) -> Point:
        rect = self._plan.partitions[partition_id].rect
        margin_x = min(0.5, rect.width / 4.0)
        margin_y = min(0.5, rect.height / 4.0)
        return Point(
            self._rng.uniform(rect.xmin + margin_x, rect.xmax - margin_x),
            self._rng.uniform(rect.ymin + margin_y, rect.ymax - margin_y),
            rect.floor,
        )

    def _record(self, trajectory: Trajectory, timestamp: float, location: Point) -> None:
        partition_id = self._plan.partition_containing(location)
        trajectory.append(
            TrajectoryPoint(timestamp=timestamp, location=location, partition_id=partition_id)
        )
