"""WkNN-style probabilistic positioning simulator (Section 5.3).

The synthetic IUPT is derived from the ground-truth trajectories the same way
the paper describes: an object reports at most every ``T`` seconds; each
report contains between 1 and ``mss`` samples; a sample's P-location is drawn
from the reference points within ``µ`` metres of the object's true location;
its probability is proportional to ``1 / (dist * (1 + γ))`` where ``γ`` is a
small random perturbation — the weighting scheme of weighted k-nearest
neighbour (WkNN) fingerprinting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..data.iupt import IUPT
from ..data.records import Sample, SampleSet
from ..data.trajectory import Trajectory, TrajectoryStore
from ..geometry import Point, Rect
from ..indexes import RTree
from ..space import FloorPlan


@dataclass(frozen=True)
class PositioningConfig:
    """Parameters of the positioning simulation."""

    max_sample_set_size: int = 4
    max_period_seconds: float = 3.0
    min_period_seconds: float = 1.0
    positioning_error: float = 2.5
    weight_noise: float = 0.4
    distance_epsilon: float = 0.25
    candidate_radius_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_sample_set_size < 1:
            raise ValueError("max_sample_set_size must be at least 1")
        if self.min_period_seconds <= 0 or self.max_period_seconds < self.min_period_seconds:
            raise ValueError("invalid reporting period bounds")
        if self.positioning_error <= 0:
            raise ValueError("positioning_error must be positive")
        if not (0.0 <= self.weight_noise < 1.0):
            raise ValueError("weight_noise must be in [0, 1)")
        if self.candidate_radius_factor < 1.0:
            raise ValueError("candidate_radius_factor must be at least 1")

    @property
    def candidate_radius(self) -> float:
        """How far from the true location reported reference points may fall.

        Wi-Fi fingerprints of nearby but wall-separated spots often match, so
        the candidate pool spans a radius larger than the average positioning
        error; the weighting still favours close reference points, keeping the
        mean error near ``positioning_error``.
        """
        return self.positioning_error * self.candidate_radius_factor


class WkNNPositioningSimulator:
    """Turns ground-truth trajectories into an uncertain positioning table."""

    def __init__(
        self,
        plan: FloorPlan,
        config: PositioningConfig = PositioningConfig(),
        seed: Optional[int] = None,
    ):
        self._plan = plan.freeze()
        self._config = config
        self._rng = random.Random(seed)
        self._ploc_index = RTree.bulk_load(
            (
                (Rect.from_point(ploc.position), ploc.ploc_id)
                for ploc in self._plan.plocations.values()
            )
        )

    @property
    def config(self) -> PositioningConfig:
        return self._config

    # ------------------------------------------------------------------
    # IUPT generation
    # ------------------------------------------------------------------
    def generate(self, trajectories: TrajectoryStore, index_kind: str = "1dr-tree") -> IUPT:
        """Generate an IUPT covering every trajectory in the store."""
        iupt = IUPT(index_kind=index_kind)
        for trajectory in trajectories:
            for timestamp, sample_set in self.reports_for(trajectory):
                iupt.report(trajectory.object_id, sample_set, timestamp)
        return iupt

    def reports_for(self, trajectory: Trajectory) -> List[Tuple[float, SampleSet]]:
        """The (timestamp, sample set) reports of one trajectory."""
        reports: List[Tuple[float, SampleSet]] = []
        if len(trajectory) == 0:
            return reports
        start, end = trajectory.time_span()
        config = self._config
        time_cursor = start
        while time_cursor <= end:
            location = trajectory.location_at(time_cursor)
            if location is not None:
                sample_set = self._sample_report(location)
                if sample_set is not None:
                    reports.append((time_cursor, sample_set))
            time_cursor += self._rng.uniform(
                config.min_period_seconds, config.max_period_seconds
            )
        return reports

    # ------------------------------------------------------------------
    # One report
    # ------------------------------------------------------------------
    def _sample_report(self, true_location: Point) -> Optional[SampleSet]:
        config = self._config
        candidates = self._candidate_plocations(true_location)
        if not candidates:
            return None
        sample_count = self._rng.randint(1, config.max_sample_set_size)
        sample_count = min(sample_count, len(candidates))
        chosen = self._rng.sample(candidates, sample_count)

        weighted: List[Tuple[int, float]] = []
        for ploc_id in chosen:
            position = self._plan.plocations[ploc_id].position
            distance = max(position.distance_to(true_location), config.distance_epsilon)
            noise = self._rng.uniform(-config.weight_noise, config.weight_noise)
            weight = 1.0 / (distance * (1.0 + noise))
            weighted.append((ploc_id, weight))
        total = sum(weight for _, weight in weighted)
        samples = [Sample(ploc_id, weight / total) for ploc_id, weight in weighted]
        return SampleSet(samples, normalise=True)

    def _candidate_plocations(self, true_location: Point) -> List[int]:
        """Reference points within the positioning error radius of the true spot.

        When the error radius captures nothing (sparse deployments), the
        nearest reference point is used so the object is still reported,
        mirroring how a fingerprinting system always returns its best match.
        """
        radius = self._config.candidate_radius
        window = Rect.from_point(true_location, radius)
        hits = [
            ploc_id
            for _, ploc_id in self._ploc_index.search_entries(window)
            if self._plan.plocations[ploc_id].position.distance_to(true_location)
            <= radius
        ]
        if hits:
            return sorted(hits)
        nearest = self._ploc_index.nearest(true_location, count=1)
        return [item for _, item in nearest]
