"""WkNN-style probabilistic positioning simulator (Section 5.3).

The synthetic IUPT is derived from the ground-truth trajectories the same way
the paper describes: an object reports at most every ``T`` seconds; each
report contains between 1 and ``mss`` samples; a sample's P-location is drawn
from the reference points within ``µ`` metres of the object's true location;
its probability is proportional to ``1 / (dist * (1 + γ))`` where ``γ`` is a
small random perturbation — the weighting scheme of weighted k-nearest
neighbour (WkNN) fingerprinting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..data.iupt import IUPT
from ..data.records import PositioningRecord, Sample, SampleSet
from ..storage import DEFAULT_SHARD_SECONDS, make_store
from ..data.trajectory import Trajectory, TrajectoryStore
from ..geometry import Point, Rect
from ..indexes import RTree
from ..space import FloorPlan


@dataclass(frozen=True)
class PositioningConfig:
    """Parameters of the positioning simulation."""

    max_sample_set_size: int = 4
    max_period_seconds: float = 3.0
    min_period_seconds: float = 1.0
    positioning_error: float = 2.5
    weight_noise: float = 0.4
    distance_epsilon: float = 0.25
    candidate_radius_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_sample_set_size < 1:
            raise ValueError("max_sample_set_size must be at least 1")
        if self.min_period_seconds <= 0 or self.max_period_seconds < self.min_period_seconds:
            raise ValueError("invalid reporting period bounds")
        if self.positioning_error <= 0:
            raise ValueError("positioning_error must be positive")
        if not (0.0 <= self.weight_noise < 1.0):
            raise ValueError("weight_noise must be in [0, 1)")
        if self.candidate_radius_factor < 1.0:
            raise ValueError("candidate_radius_factor must be at least 1")

    @property
    def candidate_radius(self) -> float:
        """How far from the true location reported reference points may fall.

        Wi-Fi fingerprints of nearby but wall-separated spots often match, so
        the candidate pool spans a radius larger than the average positioning
        error; the weighting still favours close reference points, keeping the
        mean error near ``positioning_error``.
        """
        return self.positioning_error * self.candidate_radius_factor


class WkNNPositioningSimulator:
    """Turns ground-truth trajectories into an uncertain positioning table."""

    def __init__(
        self,
        plan: FloorPlan,
        config: PositioningConfig = PositioningConfig(),
        seed: Optional[int] = None,
    ):
        self._plan = plan.freeze()
        self._config = config
        self._rng = random.Random(seed)
        self._ploc_index = RTree.bulk_load(
            (
                (Rect.from_point(ploc.position), ploc.ploc_id)
                for ploc in self._plan.plocations.values()
            )
        )

    @property
    def config(self) -> PositioningConfig:
        return self._config

    # ------------------------------------------------------------------
    # IUPT generation
    # ------------------------------------------------------------------
    def generate(
        self,
        trajectories: TrajectoryStore,
        index_kind: str = "1dr-tree",
        store_kind: str = "flat",
        shard_seconds: Optional[float] = None,
        batch_seconds: float = 60.0,
    ) -> IUPT:
        """Generate an IUPT covering every trajectory in the store.

        The reports are ingested the way a live deployment receives them:
        globally time-ordered, in batches of ``batch_seconds`` of traffic,
        through :meth:`~repro.data.iupt.IUPT.ingest_batch`.  ``store_kind``
        selects the storage backend (``"flat"`` or ``"sharded"``);
        ``shard_seconds`` overrides the sharded store's partition duration.
        """
        store = make_store(
            kind=store_kind,
            index_kind=index_kind,
            shard_seconds=(
                shard_seconds if shard_seconds is not None else DEFAULT_SHARD_SECONDS
            ),
        )
        iupt = IUPT(index_kind=index_kind, store=store)
        self.stream_into(iupt, trajectories, batch_seconds=batch_seconds)
        return iupt

    def stream_into(
        self,
        iupt: IUPT,
        trajectories: TrajectoryStore,
        batch_seconds: float = 60.0,
    ) -> int:
        """Stream every trajectory's reports into ``iupt`` in time-ordered batches.

        Returns the number of ingested records.  Mirrors a positioning
        backend forwarding report traffic to the storage layer every
        ``batch_seconds``; on a sharded table each flush touches only the
        shards its time slice overlaps.
        """
        if batch_seconds <= 0:
            raise ValueError("batch_seconds must be positive")
        records = [
            PositioningRecord(trajectory.object_id, sample_set, timestamp)
            for trajectory in trajectories
            for timestamp, sample_set in self.reports_for(trajectory)
        ]
        records.sort(key=lambda record: record.timestamp)
        total = 0
        batch: List[PositioningRecord] = []
        flush_at: Optional[float] = None
        for record in records:
            if flush_at is not None and record.timestamp >= flush_at:
                total += iupt.ingest_batch(batch).records_ingested
                batch = []
                flush_at = None
            if flush_at is None:
                flush_at = record.timestamp + batch_seconds
            batch.append(record)
        if batch:
            total += iupt.ingest_batch(batch).records_ingested
        return total

    def reports_for(self, trajectory: Trajectory) -> List[Tuple[float, SampleSet]]:
        """The (timestamp, sample set) reports of one trajectory."""
        reports: List[Tuple[float, SampleSet]] = []
        if len(trajectory) == 0:
            return reports
        start, end = trajectory.time_span()
        config = self._config
        time_cursor = start
        while time_cursor <= end:
            location = trajectory.location_at(time_cursor)
            if location is not None:
                sample_set = self._sample_report(location)
                if sample_set is not None:
                    reports.append((time_cursor, sample_set))
            time_cursor += self._rng.uniform(
                config.min_period_seconds, config.max_period_seconds
            )
        return reports

    # ------------------------------------------------------------------
    # One report
    # ------------------------------------------------------------------
    def _sample_report(self, true_location: Point) -> Optional[SampleSet]:
        """One WkNN report: the ``k`` best-matching reference points.

        Every candidate matches the (simulated) fingerprint with a
        noise-perturbed distance; the ``sample_count`` *best matches* are
        reported, weighted by inverse matched distance — the selection rule
        of weighted k-nearest-neighbour fingerprinting.  (An earlier version
        drew the reported P-locations uniformly at random from the whole
        candidate radius, which produced topologically incoherent
        consecutive reports no real positioning system emits — and, through
        the path construction's validity pruning, all-zero flows on the
        synthetic grid building.)
        """
        config = self._config
        candidates = self._candidate_plocations(true_location)
        if not candidates:
            return None
        sample_count = self._rng.randint(1, config.max_sample_set_size)
        sample_count = min(sample_count, len(candidates))

        matched: List[Tuple[float, int]] = []
        for ploc_id in candidates:
            position = self._plan.plocations[ploc_id].position
            distance = max(position.distance_to(true_location), config.distance_epsilon)
            noise = self._rng.uniform(-config.weight_noise, config.weight_noise)
            matched.append((distance * (1.0 + noise), ploc_id))
        matched.sort()
        samples = [
            Sample(ploc_id, 1.0 / match_distance)
            for match_distance, ploc_id in matched[:sample_count]
        ]
        return SampleSet(samples, normalise=True)

    def _candidate_plocations(self, true_location: Point) -> List[int]:
        """Reference points within the positioning error radius of the true spot.

        When the error radius captures nothing (sparse deployments), the
        nearest reference point is used so the object is still reported,
        mirroring how a fingerprinting system always returns its best match.
        """
        radius = self._config.candidate_radius
        window = Rect.from_point(true_location, radius)
        hits = [
            ploc_id
            for _, ploc_id in self._ploc_index.search_entries(window)
            if self._plan.plocations[ploc_id].position.distance_to(true_location)
            <= radius
        ]
        if hits:
            return sorted(hits)
        nearest = self._ploc_index.nearest(true_location, count=1)
        return [item for _, item in nearest]
