"""Synthetic multi-floor building generator (the Vita-like substrate).

The paper's synthetic evaluation uses the Vita generator to build a 5-floor
building (each floor 120 m x 120 m with 100 rooms and 4 staircases) and to
simulate moving objects inside it.  Vita itself is not available, so this
module provides a parameterised grid building generator producing the same
kind of floor plan:

* each floor is a grid of rectangular rooms organised in rows;
* a horizontal hallway runs below every room row and a vertical hallway
  connects all horizontal hallways;
* staircases sit next to the vertical hallway and connect adjacent floors;
* every room has one door to its hallway, hallways interconnect through open
  (unguarded) doors;
* partitioning P-locations guard a configurable fraction of the room doors
  and every staircase door, presence P-locations are laid out on a regular
  lattice inside the partitions (the pre-selected reference points of a
  fingerprinting deployment);
* every partition doubles as an S-location.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geometry import Point, Rect
from ..space import FloorPlan, PartitionKind


@dataclass(frozen=True)
class BuildingConfig:
    """Parameters of the synthetic grid building."""

    floors: int = 1
    room_rows: int = 2
    rooms_per_row: int = 5
    room_width: float = 12.0
    room_height: float = 12.0
    hallway_height: float = 4.0
    vertical_hallway_width: float = 4.0
    staircase_size: float = 6.0
    door_guard_fraction: float = 1.0
    presence_grid_step: float = 6.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.floors < 1:
            raise ValueError("a building needs at least one floor")
        if self.room_rows < 1 or self.rooms_per_row < 1:
            raise ValueError("the room grid must contain at least one room")
        if not (0.0 <= self.door_guard_fraction <= 1.0):
            raise ValueError("door_guard_fraction must be in [0, 1]")

    @property
    def floor_width(self) -> float:
        return self.rooms_per_row * self.room_width + self.vertical_hallway_width

    @property
    def floor_height(self) -> float:
        return self.room_rows * (self.room_height + self.hallway_height)


@dataclass
class GeneratedBuilding:
    """The generator output: a frozen floor plan plus id bookkeeping."""

    plan: FloorPlan
    config: BuildingConfig
    room_partitions: List[int] = field(default_factory=list)
    hallway_partitions: List[int] = field(default_factory=list)
    staircase_partitions: List[int] = field(default_factory=list)

    def partition_count(self) -> int:
        return len(self.plan.partitions)

    def slocation_ids(self) -> List[int]:
        return sorted(self.plan.slocations)


class GridBuildingGenerator:
    """Builds a :class:`GeneratedBuilding` from a :class:`BuildingConfig`."""

    def __init__(self, config: BuildingConfig = BuildingConfig()):
        self._config = config

    @property
    def config(self) -> BuildingConfig:
        return self._config

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self) -> GeneratedBuilding:
        config = self._config
        rng = random.Random(config.seed)
        plan = FloorPlan()
        building = GeneratedBuilding(plan=plan, config=config)

        staircases_by_floor: Dict[int, int] = {}
        hallways_by_floor: Dict[int, List[int]] = {}

        for floor in range(config.floors):
            rooms, hallways, vertical = self._build_floor_partitions(plan, floor)
            building.room_partitions.extend(rooms.values())
            building.hallway_partitions.extend(hallways + [vertical])
            hallways_by_floor[floor] = hallways + [vertical]

            self._connect_rooms_to_hallways(plan, rng, floor, rooms, hallways)
            self._connect_hallways(plan, floor, hallways, vertical)

            staircase_id = self._build_staircase(plan, floor, vertical)
            building.staircase_partitions.append(staircase_id)
            staircases_by_floor[floor] = staircase_id

        self._connect_staircases(plan, staircases_by_floor)
        self._add_presence_plocations(plan)
        self._add_slocations(plan)
        plan.freeze()
        return building

    # ------------------------------------------------------------------
    # Floor construction
    # ------------------------------------------------------------------
    def _build_floor_partitions(
        self, plan: FloorPlan, floor: int
    ) -> Tuple[Dict[Tuple[int, int], int], List[int], int]:
        config = self._config
        rooms: Dict[Tuple[int, int], int] = {}
        hallways: List[int] = []
        for row in range(config.room_rows):
            base_y = row * (config.room_height + config.hallway_height)
            for column in range(config.rooms_per_row):
                rect = Rect(
                    column * config.room_width,
                    base_y,
                    (column + 1) * config.room_width,
                    base_y + config.room_height,
                    floor,
                )
                rooms[(row, column)] = plan.add_partition(
                    rect, PartitionKind.ROOM, name=f"f{floor}-room-{row}-{column}"
                )
            hallway_rect = Rect(
                0.0,
                base_y + config.room_height,
                config.rooms_per_row * config.room_width,
                base_y + config.room_height + config.hallway_height,
                floor,
            )
            hallways.append(
                plan.add_partition(
                    hallway_rect, PartitionKind.HALLWAY, name=f"f{floor}-hall-{row}"
                )
            )
        vertical_rect = Rect(
            config.rooms_per_row * config.room_width,
            0.0,
            config.floor_width,
            config.floor_height,
            floor,
        )
        vertical = plan.add_partition(
            vertical_rect, PartitionKind.HALLWAY, name=f"f{floor}-hall-main"
        )
        return rooms, hallways, vertical

    def _connect_rooms_to_hallways(
        self,
        plan: FloorPlan,
        rng: random.Random,
        floor: int,
        rooms: Dict[Tuple[int, int], int],
        hallways: List[int],
    ) -> None:
        config = self._config
        for (row, column), room_id in rooms.items():
            room_rect = plan.partitions[room_id].rect
            door_point = Point(
                (room_rect.xmin + room_rect.xmax) / 2.0, room_rect.ymax, floor
            )
            door_id = plan.add_door(door_point, (room_id, hallways[row]))
            if rng.random() < config.door_guard_fraction:
                plan.add_partitioning_plocation(door_point, door_id)

    def _connect_hallways(
        self, plan: FloorPlan, floor: int, hallways: List[int], vertical: int
    ) -> None:
        config = self._config
        for row, hallway_id in enumerate(hallways):
            hallway_rect = plan.partitions[hallway_id].rect
            junction = Point(
                hallway_rect.xmax,
                (hallway_rect.ymin + hallway_rect.ymax) / 2.0,
                floor,
            )
            # Hallway junctions stay unguarded so the hallway network of a
            # floor forms one open cell, as in a typical deployment.
            plan.add_door(junction, (hallway_id, vertical))

    def _build_staircase(self, plan: FloorPlan, floor: int, vertical: int) -> int:
        config = self._config
        vertical_rect = plan.partitions[vertical].rect
        # The staircase sits next to the top of the vertical hallway as a
        # separate partition outside the room grid, so nothing overlaps.
        staircase_rect = Rect(
            vertical_rect.xmax,
            vertical_rect.ymax - config.staircase_size,
            vertical_rect.xmax + config.staircase_size,
            vertical_rect.ymax,
            floor,
        )
        staircase = plan.add_partition(
            staircase_rect, PartitionKind.STAIRCASE, name=f"f{floor}-stairs"
        )
        door_point = Point(
            staircase_rect.xmin,
            (staircase_rect.ymin + staircase_rect.ymax) / 2.0,
            floor,
        )
        door_id = plan.add_door(door_point, (staircase, vertical))
        plan.add_partitioning_plocation(door_point, door_id)
        return staircase

    def _connect_staircases(
        self, plan: FloorPlan, staircases_by_floor: Dict[int, int]
    ) -> None:
        floors = sorted(staircases_by_floor)
        for lower, upper in zip(floors, floors[1:]):
            lower_id = staircases_by_floor[lower]
            upper_id = staircases_by_floor[upper]
            lower_rect = plan.partitions[lower_id].rect
            door_point = Point(
                (lower_rect.xmin + lower_rect.xmax) / 2.0,
                (lower_rect.ymin + lower_rect.ymax) / 2.0,
                lower,
            )
            door_id = plan.add_door(door_point, (lower_id, upper_id))
            plan.add_partitioning_plocation(door_point, door_id)

    # ------------------------------------------------------------------
    # P-locations and S-locations
    # ------------------------------------------------------------------
    def _add_presence_plocations(self, plan: FloorPlan) -> None:
        """Lay the reference-point lattice, clamped to each partition's extent.

        ``Rect.sample_grid`` yields nothing along a dimension shorter than
        the step, which used to leave the (4 m wide) hallways without any
        presence P-location: an object transiting a hallway could then only
        report P-locations of *other* cells, its positioning sequence became
        topologically inconsistent, every possible path died, and the whole
        synthetic building produced all-zero flows.  Clamping the step per
        partition guarantees every partition at least a centre line of
        reference points, matching how a real fingerprint deployment always
        covers its corridors.
        """
        step = self._config.presence_grid_step
        for partition in list(plan.partitions.values()):
            for point in clamped_lattice(partition.rect, step):
                plan.add_presence_plocation(point, partition.partition_id)

    def _add_slocations(self, plan: FloorPlan) -> None:
        for partition in list(plan.partitions.values()):
            plan.add_slocation_for_partition(partition.partition_id)


def clamped_lattice(rect: Rect, step: float) -> List[Point]:
    """A regular interior lattice with the step clamped to the rect's extent.

    Unlike :meth:`~repro.geometry.rect.Rect.sample_grid`, which yields
    nothing along a dimension shorter than the step, this always covers the
    rect: thin corridors get a centre line of points and degenerate rects
    fall back to the centre point — the coverage rule every reference-point
    deployment needs (see the all-zero-flows regression in
    ``tests/test_synth.py``).
    """
    if step <= 0:
        raise ValueError("step must be positive")  # same contract as sample_grid
    step_x = min(step, rect.width)
    step_y = min(step, rect.height)
    if step_x <= 0 or step_y <= 0:
        # Degenerate rect (zero-width/height), not a bad step.
        return [rect.center]
    points: List[Point] = []
    x = rect.xmin + step_x / 2.0
    while x <= rect.xmax - step_x / 2.0 + 1e-9:
        y = rect.ymin + step_y / 2.0
        while y <= rect.ymax - step_y / 2.0 + 1e-9:
            points.append(Point(x, y, rect.floor))
            y += step_y
        x += step_x
    return points or [rect.center]


def build_grid_building(**overrides) -> GeneratedBuilding:
    """Convenience wrapper: generate a building from keyword overrides."""
    config = BuildingConfig(**overrides)
    return GridBuildingGenerator(config).generate()
