"""Effectiveness and efficiency metrics (Section 5.1).

Three measures are used throughout the evaluation:

* **recall** — the fraction of the ground-truth top-k locations present in the
  returned top-k;
* **Kendall coefficient τ** — rank correlation between the returned ranking
  and the ground-truth ranking, extended to a common element set when the two
  rankings differ (the paper's extension: missing elements are appended with a
  shared, tied ordering value);
* **pruning ratio** — ``(|O| - |Of|) / |O|`` where ``Of`` are the objects
  whose presence the algorithm had to compute (reported by the search
  statistics, see :class:`repro.core.SearchStats`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def recall_at_k(result_ranking: Sequence[int], truth_ranking: Sequence[int]) -> float:
    """The fraction of ground-truth top-k locations found in the result top-k.

    Both rankings are interpreted as top-k lists; the denominator is the size
    of the ground-truth list (``k``).
    """
    if not truth_ranking:
        return 1.0
    truth = set(truth_ranking)
    found = truth & set(result_ranking)
    return len(found) / len(truth)


def extend_rankings(
    result_ranking: Sequence[int], truth_ranking: Sequence[int]
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Extend two top-k rankings to a common element set (paper's scheme).

    Elements missing from a ranking are appended after its last position with
    a single shared (tied) ordering value, exactly as in the paper's example:
    with ``ϕr = ⟨A, B, C⟩`` and ``ϕg = ⟨B, D, E⟩``, elements ``A`` and ``C``
    are both ranked 4th in the extended ``ϕg``.

    Returns two dictionaries mapping each element of the union to its ordering
    value in the (extended) rankings.
    """
    result_rank = {item: float(position) for position, item in enumerate(result_ranking, start=1)}
    truth_rank = {item: float(position) for position, item in enumerate(truth_ranking, start=1)}
    union = set(result_rank) | set(truth_rank)

    missing_in_result = len(result_rank) + 1.0
    missing_in_truth = len(truth_rank) + 1.0
    for item in union:
        result_rank.setdefault(item, missing_in_result)
        truth_rank.setdefault(item, missing_in_truth)
    return result_rank, truth_rank


def kendall_coefficient(
    result_ranking: Sequence[int], truth_ranking: Sequence[int]
) -> float:
    """The Kendall coefficient τ between a result ranking and the ground truth.

    ``τ = (cp - dp) / total`` where ``cp`` (``dp``) counts the concordant
    (discordant) pairs over the extended element set: a pair is concordant
    when the two rankings order it the same way (ties in both rankings also
    count as concordant), discordant when they order it opposite ways, and a
    tie in exactly one ranking counts as neither.  Identical rankings give 1,
    reversed rankings give -1.
    """
    if not result_ranking and not truth_ranking:
        return 1.0
    result_rank, truth_rank = extend_rankings(result_ranking, truth_ranking)
    items = sorted(result_rank)
    concordant = 0
    discordant = 0
    total = 0
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            total += 1
            delta_result = result_rank[a] - result_rank[b]
            delta_truth = truth_rank[a] - truth_rank[b]
            if delta_result == 0.0 and delta_truth == 0.0:
                concordant += 1
            elif delta_result * delta_truth > 0.0:
                concordant += 1
            elif delta_result * delta_truth < 0.0:
                discordant += 1
    if total == 0:
        return 1.0
    return (concordant - discordant) / total


def pruning_ratio(objects_total: int, objects_computed: int) -> float:
    """``σ = (|O| - |Of|) / |O|`` (0 when no object fell into the window)."""
    if objects_total <= 0:
        return 0.0
    return (objects_total - objects_computed) / objects_total


def rank_by_score(scores: Dict[int, float], k: int) -> List[int]:
    """Rank identifiers by descending score (ties by smaller id), top-k only."""
    ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [identifier for identifier, _ in ordered[:k]]
