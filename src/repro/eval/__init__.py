"""Evaluation support: metrics, ground truth, and the experiment harness."""

from .ground_truth import ground_truth_flows, ground_truth_ranking
from .harness import (
    ALL_METHODS,
    BASELINE_METHODS,
    SEARCH_METHODS,
    MethodOutcome,
    run_batched,
    run_method,
    run_methods,
)
from .metrics import (
    extend_rankings,
    kendall_coefficient,
    pruning_ratio,
    rank_by_score,
    recall_at_k,
)

__all__ = [
    "ALL_METHODS",
    "BASELINE_METHODS",
    "SEARCH_METHODS",
    "MethodOutcome",
    "extend_rankings",
    "ground_truth_flows",
    "ground_truth_ranking",
    "kendall_coefficient",
    "pruning_ratio",
    "rank_by_score",
    "recall_at_k",
    "run_batched",
    "run_method",
    "run_methods",
]
