"""Experiment harness: run any method on a scenario and score it.

The harness provides a single entry point, :func:`run_method`, that executes
one of the evaluated methods (the paper's three search algorithms with or
without data reduction, and the SC / SC-ρ / MC / SCC / UR baselines) on a
:class:`~repro.synth.scenario.Scenario` and returns both efficiency and
effectiveness measures against the ground truth.  Every experiment module and
benchmark is a thin sweep over this function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import (
    MonteCarlo,
    SemiConstrainedCounting,
    SimpleCounting,
    UncertaintyRegionFlow,
)
from ..core import (
    DataReductionConfig,
    FlowComputer,
    TkPLQResult,
    TkPLQuery,
)
from ..engine import BatchReport, EngineConfig, QueryEngine
from ..synth.scenario import Scenario
from .ground_truth import ground_truth_ranking
from .metrics import kendall_coefficient, recall_at_k

SEARCH_METHODS = (
    "bf",
    "nl",
    "naive",
    "bf-org",
    "nl-org",
    "naive-org",
)
BASELINE_METHODS = ("sc", "sc-rho", "mc", "scc", "ur")
ALL_METHODS = SEARCH_METHODS + BASELINE_METHODS


@dataclass
class MethodOutcome:
    """The outcome of running one method on one query."""

    method: str
    ranking: List[int]
    flows: Dict[int, float]
    elapsed_seconds: float
    pruning_ratio: float
    kendall: float
    recall: float
    details: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """A flat dictionary row for tables / benchmark reports."""
        return {
            "method": self.method,
            "time_s": round(self.elapsed_seconds, 4),
            "pruning_ratio": round(self.pruning_ratio, 4),
            "kendall": round(self.kendall, 4),
            "recall": round(self.recall, 4),
            "top_k": list(self.ranking),
        }


def run_method(
    scenario: Scenario,
    method: str,
    query: TkPLQuery,
    sc_rho: float = 0.25,
    mc_rounds: int = 100,
    mc_seed: int = 97,
    truth_ranking: Optional[Sequence[int]] = None,
) -> MethodOutcome:
    """Run ``method`` on ``scenario`` for ``query`` and score it.

    ``truth_ranking`` may be passed to avoid recomputing the ground truth when
    many methods are evaluated on the same query.
    """
    method = method.lower()
    if method not in ALL_METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {ALL_METHODS}")

    if truth_ranking is None:
        truth_ranking = ground_truth_ranking(
            scenario.trajectories,
            scenario.plan,
            query.start,
            query.end,
            query.query_slocations,
            query.k,
        )

    began = time.perf_counter()
    result = _execute(scenario, method, query, sc_rho, mc_rounds, mc_seed)
    elapsed = time.perf_counter() - began

    ranking = result.top_k_ids()
    return MethodOutcome(
        method=method,
        ranking=ranking,
        flows=dict(result.flows),
        elapsed_seconds=elapsed,
        pruning_ratio=result.stats.pruning_ratio,
        kendall=kendall_coefficient(ranking, list(truth_ranking)),
        recall=recall_at_k(ranking, list(truth_ranking)),
        details=result.stats.as_dict(),
    )


def run_methods(
    scenario: Scenario,
    methods: Sequence[str],
    query: TkPLQuery,
    **kwargs,
) -> List[MethodOutcome]:
    """Run several methods on the same query, sharing the ground truth."""
    truth = ground_truth_ranking(
        scenario.trajectories,
        scenario.plan,
        query.start,
        query.end,
        query.query_slocations,
        query.k,
    )
    return [
        run_method(scenario, method, query, truth_ranking=truth, **kwargs)
        for method in methods
    ]


# ----------------------------------------------------------------------
# Method dispatch
# ----------------------------------------------------------------------
def _execute(
    scenario: Scenario,
    method: str,
    query: TkPLQuery,
    sc_rho: float,
    mc_rounds: int,
    mc_seed: int,
) -> TkPLQResult:
    if method in ("bf", "nl", "naive"):
        return _run_search(scenario, method, query, DataReductionConfig.enabled())
    if method == "bf-org":
        return _run_search(scenario, "bf", query, DataReductionConfig.original_with_psls())
    if method in ("nl-org", "naive-org"):
        return _run_search(
            scenario, method.replace("-org", ""), query, DataReductionConfig.disabled()
        )
    if method == "sc":
        return SimpleCounting(scenario.plan).search(scenario.iupt, query)
    if method == "sc-rho":
        return SimpleCounting(scenario.plan, threshold=sc_rho).search(scenario.iupt, query)
    if method == "mc":
        computer = FlowComputer(
            scenario.system.graph, scenario.system.matrix, DataReductionConfig.disabled()
        )
        return MonteCarlo(computer, rounds=mc_rounds, seed=mc_seed).search(
            scenario.iupt, query
        )
    if method in ("scc", "ur"):
        if scenario.rfid is None:
            raise ValueError(
                f"method {method!r} needs RFID data; build the scenario with with_rfid=True"
            )
        if method == "scc":
            return SemiConstrainedCounting(scenario.plan, scenario.rfid).search(query)
        max_speed = float(scenario.params.get("Vmax", 1.0))
        return UncertaintyRegionFlow(
            scenario.plan, scenario.rfid, max_speed=max_speed
        ).search(query)
    raise AssertionError(f"unhandled method {method!r}")


_ALGORITHM_NAMES = {"bf": "best-first", "nl": "nested-loop", "naive": "naive"}


def _run_search(
    scenario: Scenario,
    algorithm: str,
    query: TkPLQuery,
    reduction: DataReductionConfig,
) -> TkPLQResult:
    # A fresh engine without the cross-query presence store: the paper's
    # efficiency experiments measure each method cold, so no cached artefact
    # may leak between the repeated runs of one sweep.
    engine = _search_engine(scenario, reduction)
    return engine.search(scenario.iupt, query, _ALGORITHM_NAMES[algorithm])


def _search_engine(
    scenario: Scenario,
    reduction: DataReductionConfig,
    config: Optional[EngineConfig] = None,
) -> QueryEngine:
    return QueryEngine(
        scenario.system.graph,
        scenario.system.matrix,
        reduction,
        config=config or EngineConfig.uncached(),
    )


def run_batched(
    scenario: Scenario,
    queries: Sequence[TkPLQuery],
    reduction: DataReductionConfig = DataReductionConfig.enabled(),
    engine_config: Optional[EngineConfig] = None,
) -> BatchReport:
    """Answer many TkPLQ queries in one batched pass over the scenario.

    The batch planner groups queries by window and shares the per-object
    reduce/path work across every query of a group; the per-query rankings
    are identical to independent ``run_method(..., "nl", ...)`` calls.
    """
    engine = _search_engine(scenario, reduction, config=engine_config)
    try:
        return engine.batch(scenario.iupt, queries)
    finally:
        engine.close()
