"""Ground-truth rankings derived from exact trajectories.

The synthetic experiments record every object's exact location once per
second; the ground-truth flow of an S-location over a window is the number of
distinct objects whose exact trajectory entered the location during that
window, and the ground-truth top-k ranking orders the query locations by that
count.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..data.trajectory import TrajectoryStore
from ..space import FloorPlan
from .metrics import rank_by_score


def ground_truth_flows(
    trajectories: TrajectoryStore,
    plan: FloorPlan,
    start: float,
    end: float,
    query_slocations: Sequence[int],
) -> Dict[int, float]:
    """True visit counts restricted to the query S-locations."""
    counts = trajectories.true_visit_counts(plan, start, end)
    return {sloc_id: float(counts.get(sloc_id, 0)) for sloc_id in query_slocations}


def ground_truth_ranking(
    trajectories: TrajectoryStore,
    plan: FloorPlan,
    start: float,
    end: float,
    query_slocations: Sequence[int],
    k: int,
) -> List[int]:
    """The ground-truth top-k ranking over the query S-locations."""
    flows = ground_truth_flows(trajectories, plan, start, end, query_slocations)
    return rank_by_score(flows, k)
