"""The IUPT storage layer: record-store backends behind the table facade.

See :mod:`repro.storage.base` for the backend contract,
:mod:`repro.storage.memory` for the seed's flat in-memory store,
:mod:`repro.storage.sharded` for the time-partitioned sharded store with
bulk-loaded per-shard indexes, shard-pruned window queries, per-shard
versioning, and retention eviction, and :mod:`repro.storage.durable` for the
write-ahead-logged, snapshot-recovered durable wrapper around it.
"""

from .base import (
    EvictedRangeError,
    EvictionEvent,
    IngestEvent,
    IngestReceipt,
    RecordStore,
    STORE_KINDS,
    StoreListener,
    VersionToken,
    summarise_object_spans,
)
from .durable import (
    DurabilityConfig,
    DurableRecordStore,
    SimulatedCrashError,
    decode_wal_frames,
    encode_wal_frame,
)
from .memory import InMemoryRecordStore
from .sharded import DEFAULT_SHARD_SECONDS, ShardedRecordStore

__all__ = [
    "DEFAULT_SHARD_SECONDS",
    "DurabilityConfig",
    "DurableRecordStore",
    "EvictedRangeError",
    "EvictionEvent",
    "IngestEvent",
    "IngestReceipt",
    "InMemoryRecordStore",
    "RecordStore",
    "STORE_KINDS",
    "SimulatedCrashError",
    "StoreListener",
    "ShardedRecordStore",
    "VersionToken",
    "decode_wal_frames",
    "encode_wal_frame",
    "summarise_object_spans",
]


def make_store(
    kind: str = "flat",
    index_kind: str = "1dr-tree",
    shard_seconds: float = DEFAULT_SHARD_SECONDS,
) -> RecordStore:
    """Build a record store by kind name (the scenario/experiment entry point)."""
    if kind == "flat":
        return InMemoryRecordStore(index_kind=index_kind)
    if kind == "sharded":
        return ShardedRecordStore(shard_seconds=shard_seconds, index_kind=index_kind)
    raise ValueError(f"unknown store kind {kind!r}; expected one of {STORE_KINDS}")
