"""The time-partitioned sharded record store.

Records are partitioned into fixed-duration time shards (shard key
``floor(timestamp / shard_seconds)``).  Each shard owns its records in time
order plus one bulk-loaded time index, and carries its own version counter:

* **window queries prune to overlapping shards** — a query first selects the
  shards whose time range intersects the window (two bisections over the
  sorted shard keys), serves fully-covered shards straight from their sorted
  record lists, and only consults a shard's index for the (at most two)
  partially-covered boundary shards;
* **batch ingestion costs one bulk index build per touched shard** — the
  batch is sorted once, sliced per shard, merged into each shard's record
  list, and the shard's index is rebuilt with the bulk-load constructor
  (:meth:`~repro.indexes.interval_index.OneDimensionalRTree.from_sorted` /
  :meth:`~repro.indexes.bplustree.BPlusTree.bulk_load`) instead of one
  insert per record;
* **versions advance per shard** — :meth:`ShardedRecordStore.version_token`
  over a window only covers the overlapping shards, so the engine's cached
  presences die exactly when a batch touches the shards their windows read;
* **retention drops whole shards** — :meth:`ShardedRecordStore.evict_before`
  removes shards ending at or before the cut-off and records a watermark;
  later queries reaching below the watermark raise
  :class:`~repro.storage.base.EvictedRangeError` instead of silently
  answering from partial history.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..codec.packed import PackedRecordBatch
from ..data.records import PositioningRecord
from ..indexes import BPlusTree, OneDimensionalRTree
from .base import (
    EvictionEvent,
    IngestEvent,
    IngestReceipt,
    RecordStore,
    STORE_UIDS,
    VersionToken,
    check_not_evicted,
    summarise_object_spans,
)

DEFAULT_SHARD_SECONDS = 600.0


class _Shard:
    """One time partition: sorted records plus a bulk-loaded time index.

    Records live either *materialised* (the sorted list the query paths
    walk) or *packed* (the codec's columnar batch, as recovered from a
    binary snapshot).  A packed shard decodes lazily on first record
    access, so recovering a large table never pays per-record object
    construction for shards no query touches — its record count, time
    bounds and version are available without decoding.
    """

    __slots__ = ("key", "version", "_records", "_packed", "_index", "_timestamps")

    def __init__(
        self,
        key: int,
        records: Optional[List[PositioningRecord]] = None,
        version: int = 0,
        packed: Optional[PackedRecordBatch] = None,
    ):
        self.key = key
        self.version = version
        if records is None and packed is None:
            records = []
        self._records = records
        self._packed = packed
        self._index: Optional[object] = None
        self._timestamps: Optional[List[float]] = None

    @property
    def records(self) -> List[PositioningRecord]:
        if self._records is None:
            self._records = self._packed.to_records()
        return self._records

    @property
    def materialised(self) -> bool:
        return self._records is not None

    @property
    def record_count(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._packed)

    def absorb(self, incoming: List[PositioningRecord]) -> None:
        """Merge a time-sorted batch slice into this shard and bump its version.

        ``list.sort`` is stable, so records already present keep preceding
        newly ingested ones on timestamp ties — the same arrival-order tie
        rule the flat store's insort-based path follows.
        """
        records = self.records
        records.extend(incoming)
        records.sort(key=lambda record: record.timestamp)
        self._index = None
        self._timestamps = None
        self._packed = None
        self.version += 1

    def packed(self) -> PackedRecordBatch:
        """The shard's records in the codec's columnar layout (cached)."""
        if self._packed is None:
            self._packed = PackedRecordBatch.from_records(self.records)
        return self._packed

    def timestamps(self) -> List[float]:
        """The sorted timestamp column; served from the packed form when the
        records themselves were never materialised."""
        if self._timestamps is None:
            if self._records is not None:
                self._timestamps = [record.timestamp for record in self._records]
            else:
                self._timestamps = self._packed.timestamps_list()
        return self._timestamps

    def index(self, index_kind: str):
        """The shard's time index, bulk-loaded lazily after the last absorb."""
        if self._index is None:
            pairs = [(record.timestamp, record) for record in self.records]
            if index_kind == "1dr-tree":
                self._index = OneDimensionalRTree.from_sorted(pairs)
            else:
                self._index = BPlusTree.bulk_load(pairs)
        return self._index


class ShardedRecordStore(RecordStore):
    """Time-partitioned record store with per-shard bulk-loaded indexes.

    Parameters
    ----------
    shard_seconds:
        Duration of one time shard.  Shorter shards prune harder and
        invalidate less on ingestion but carry more per-shard overhead;
        the default suits report streams spanning minutes to hours.
    index_kind:
        ``"1dr-tree"`` (default) or ``"bplus-tree"``: the kind of index each
        shard bulk-loads.  ``"packed"`` skips tree building entirely and
        answers boundary-shard probes by bisecting the shard's sorted
        timestamp column (identical results: a shard's record list is the
        index's leaf order).
    """

    kind = "sharded"

    VALID_INDEXES = ("1dr-tree", "bplus-tree", "packed")

    def __init__(
        self,
        shard_seconds: float = DEFAULT_SHARD_SECONDS,
        index_kind: str = "1dr-tree",
    ):
        super().__init__()
        if shard_seconds <= 0:
            raise ValueError("shard_seconds must be positive")
        if index_kind not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index kind {index_kind!r}; expected one of {self.VALID_INDEXES}"
            )
        self._shard_seconds = float(shard_seconds)
        self._index_kind = index_kind
        self._shards: Dict[int, _Shard] = {}
        self._shard_keys: List[int] = []  # sorted view of self._shards
        self._uid = next(STORE_UIDS)
        self._count = 0
        self._watermark = float("-inf")
        self.shards_probed = 0
        self.shards_pruned = 0

    @property
    def index_kind(self) -> str:
        return self._index_kind

    @property
    def shard_seconds(self) -> float:
        return self._shard_seconds

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_key(self, timestamp: float) -> int:
        return math.floor(timestamp / self._shard_seconds)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, record: PositioningRecord) -> None:
        self.ingest_batch((record,))

    def slice_batch(
        self, batch: Sequence[PositioningRecord]
    ) -> List[Tuple[int, List[PositioningRecord]]]:
        """Slice a time-sorted batch into per-shard ``(key, records)`` runs.

        The single source of truth for how a batch maps onto shards: both
        this store's ingest path and the durable layer's WAL writer slice
        through here, so the logged frames can never diverge from the
        in-memory shards.
        """
        slices: List[Tuple[int, List[PositioningRecord]]] = []
        start = 0
        while start < len(batch):
            key = self.shard_key(batch[start].timestamp)
            stop = start
            while stop < len(batch) and self.shard_key(batch[stop].timestamp) == key:
                stop += 1
            slices.append((key, list(batch[start:stop])))
            start = stop
        return slices

    def ingest_batch(self, records: Iterable[PositioningRecord]) -> IngestReceipt:
        batch = sorted(records, key=lambda record: record.timestamp)
        if not batch:
            return IngestReceipt()
        with self._lock:
            if batch[0].timestamp < self._watermark:
                raise ValueError(
                    f"batch contains records before the retention watermark "
                    f"t={self._watermark}; evicted shards cannot be refilled"
                )

            touched: List[int] = []
            for key, slice_records in self.slice_batch(batch):
                shard = self._shards.get(key)
                if shard is None:
                    shard = _Shard(key=key)
                    self._shards[key] = shard
                    insert_at = bisect_left(self._shard_keys, key)
                    self._shard_keys.insert(insert_at, key)
                shard.absorb(slice_records)
                touched.append(key)
                self._count += len(slice_records)

            receipt = IngestReceipt(
                records_ingested=len(batch),
                shards_touched=tuple(touched),
                object_spans=summarise_object_spans(batch),
            )
            self._notify(IngestEvent(receipt))
            return receipt

    # ------------------------------------------------------------------
    # Shard selection
    # ------------------------------------------------------------------
    def overlapping_shard_keys(self, start: float, end: float) -> List[int]:
        """The existing shard keys whose time range intersects ``[start, end]``."""
        if start > end:
            raise ValueError("query interval start must not exceed its end")
        first = self.shard_key(start)
        last = self.shard_key(end)
        lo = bisect_left(self._shard_keys, first)
        hi = bisect_right(self._shard_keys, last)
        return self._shard_keys[lo:hi]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, start: float, end: float) -> List[PositioningRecord]:
        with self._lock:
            check_not_evicted(self, start, end)
            overlapping = self.overlapping_shard_keys(start, end)
            self.shards_probed += len(overlapping)
            self.shards_pruned += len(self._shard_keys) - len(overlapping)

            results: List[PositioningRecord] = []
            for key in overlapping:
                shard = self._shards[key]
                shard_start = key * self._shard_seconds
                shard_end = (key + 1) * self._shard_seconds
                if start <= shard_start and shard_end <= end:
                    # Fully covered: the sorted record list IS the answer.
                    results.extend(shard.records)
                elif self._index_kind == "packed":
                    stamps = shard.timestamps()
                    lo = bisect_left(stamps, start)
                    hi = bisect_right(stamps, end)
                    if lo < hi:
                        results.extend(shard.records[lo:hi])
                else:
                    results.extend(
                        shard.index(self._index_kind).range_query(start, end)
                    )
            return results

    def version_token(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> VersionToken:
        # The eviction watermark is deliberately NOT part of the token:
        # evicting shards strictly below a window leaves the window's
        # visible records unchanged (its cached artefacts stay valid), a
        # window that loses an overlapping shard changes token through the
        # shard list itself, and a window reaching into evicted history
        # raises EvictedRangeError before any cache read.
        with self._lock:
            if start is None or end is None:
                shard_part = tuple(
                    (key, self._shards[key].version) for key in self._shard_keys
                )
            else:
                shard_part = tuple(
                    (key, self._shards[key].version)
                    for key in self.overlapping_shard_keys(start, end)
                )
            return (self._uid, shard_part)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def evict_before(self, timestamp: float) -> int:
        """Drop every shard whose time range ends at or before ``timestamp``."""
        with self._lock:
            dropped = 0
            kept_keys: List[int] = []
            for key in self._shard_keys:
                shard_end = (key + 1) * self._shard_seconds
                if shard_end <= timestamp:
                    dropped += self._shards[key].record_count
                    watermark = shard_end
                    del self._shards[key]
                    self._watermark = max(self._watermark, watermark)
                else:
                    kept_keys.append(key)
            self._shard_keys = kept_keys
            self._count -= dropped
            if dropped:
                self._notify(EvictionEvent(self._watermark, dropped))
            return dropped

    @property
    def eviction_watermark(self) -> float:
        return self._watermark

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def records_in_time_order(self) -> Sequence[PositioningRecord]:
        with self._lock:
            ordered: List[PositioningRecord] = []
            for key in self._shard_keys:
                ordered.extend(self._shards[key].records)
            return tuple(ordered)

    def time_span(self) -> Tuple[float, float]:
        with self._lock:
            if not self._shard_keys:
                return (float("inf"), float("-inf"))
            # Timestamp columns keep lazily recovered shards unmaterialised.
            earliest = self._shards[self._shard_keys[0]].timestamps()[0]
            latest = max(
                shard.timestamps()[-1] for shard in self._shards.values()
            )
            return (earliest, latest)

    def shard_versions(self) -> Dict[int, int]:
        """``shard key -> version`` snapshot (diagnostics and tests)."""
        with self._lock:
            return {key: self._shards[key].version for key in self._shard_keys}

    def shard_states(
        self, keys: Optional[Iterable[int]] = None
    ) -> List[Tuple[int, int, Tuple[PositioningRecord, ...]]]:
        """``(key, version, records)`` per shard in key order.

        The durable layer snapshots shards through this accessor; the record
        tuples are copies, safe to serialise outside the lock.  Pass ``keys``
        to copy only the named shards (a checkpoint only needs the dirty
        ones — copying the whole table under the lock would stall readers
        for no reason); unknown keys are ignored.
        """
        with self._lock:
            if keys is None:
                selected = self._shard_keys
            else:
                wanted = set(keys)
                selected = [key for key in self._shard_keys if key in wanted]
            return [
                (key, self._shards[key].version, tuple(self._shards[key].records))
                for key in selected
            ]

    def packed_shard_states(
        self,
    ) -> List[Tuple[int, int, PackedRecordBatch]]:
        """``(key, version, packed batch)`` per shard in key order.

        The replication layer's snapshot accessor: each shard's records in
        the codec's columnar layout (cached on the shard, so repeated
        snapshots of an untouched shard are free).  The batches are
        immutable blobs, safe to encode and ship outside the lock.
        """
        with self._lock:
            return [
                (key, self._shards[key].version, self._shards[key].packed())
                for key in self._shard_keys
            ]

    # ------------------------------------------------------------------
    # Recovery hooks (durable layer only)
    # ------------------------------------------------------------------
    def load_shard(
        self, key: int, records: Sequence[PositioningRecord], version: int
    ) -> None:
        """Install one shard's persisted state verbatim (no events, no bumps).

        Recovery-only: ``records`` must already be in time order with
        arrival-order ties, exactly as :meth:`shard_states` reported them,
        and ``version`` is restored as-is so recovered
        :meth:`version_token` values reproduce the pre-crash tokens.
        """
        if version < 1:
            raise ValueError("a restored shard's version must be at least 1")
        with self._lock:
            if key in self._shards:
                raise ValueError(f"shard {key} is already loaded")
            shard = _Shard(key=key, records=list(records), version=version)
            self._shards[key] = shard
            insert_at = bisect_left(self._shard_keys, key)
            self._shard_keys.insert(insert_at, key)
            self._count += shard.record_count

    def load_shard_packed(
        self, key: int, packed: PackedRecordBatch, version: int
    ) -> None:
        """Install one shard's persisted state as a packed batch (lazy).

        The binary-snapshot twin of :meth:`load_shard`: the columnar batch
        is adopted as-is and only decoded into record objects when a query
        first touches the shard, so cold recovery costs one blob read per
        shard instead of per-record parsing.
        """
        if version < 1:
            raise ValueError("a restored shard's version must be at least 1")
        with self._lock:
            if key in self._shards:
                raise ValueError(f"shard {key} is already loaded")
            shard = _Shard(key=key, version=version, packed=packed)
            self._shards[key] = shard
            insert_at = bisect_left(self._shard_keys, key)
            self._shard_keys.insert(insert_at, key)
            self._count += shard.record_count

    def unmaterialised_shard_count(self) -> int:
        """How many shards still hold only their packed (undecoded) form."""
        with self._lock:
            return sum(
                1 for shard in self._shards.values() if not shard.materialised
            )

    def reset_to_packed_shards(
        self,
        shards: Iterable[Tuple[int, int, PackedRecordBatch]],
        watermark: float = float("-inf"),
    ) -> None:
        """Replace the whole table with a snapshot's packed shards.

        The replication layer's re-catch-up hook: when a follower's WAL
        cursor falls below the primary's replay floor (compaction or
        eviction dropped the frames it needs), it adopts the primary's
        current per-shard state wholesale.  Versions are restored verbatim —
        a shard at the same ``(key, version)`` holds bit-identical records
        on both sides (versions advance once per committed batch touching
        the shard, and both sides applied the same commit prefix), so
        engine caches keyed by version tokens stay valid across the reset.

        No store events fire: a reset is not an ingest.  Callers owning
        standing subscriptions must explicitly resync them afterwards
        (:meth:`repro.engine.continuous.ContinuousQueryEngine.resync`).
        """
        with self._lock:
            self._shards = {}
            self._shard_keys = []
            self._count = 0
            for key, version, packed in sorted(shards, key=lambda s: s[0]):
                if int(version) < 1:
                    raise ValueError(
                        "a restored shard's version must be at least 1"
                    )
                shard = _Shard(key=int(key), version=int(version), packed=packed)
                self._shards[shard.key] = shard
                self._shard_keys.append(shard.key)
                self._count += shard.record_count
            self._watermark = max(self._watermark, float(watermark))

    def restore_identity(self, uid: object) -> None:
        """Adopt a persisted store identity (recovery-only).

        Version tokens embed the store uid; a durable store recovered from
        the same directory IS the same logical store, so its tokens must
        compare equal to the pre-crash ones when the data matches.  The
        persisted uid is a string, so it can never collide with the integer
        uids the in-process :data:`~repro.storage.base.STORE_UIDS` counter
        hands to volatile stores.
        """
        with self._lock:
            self._uid = uid

    def restore_watermark(self, watermark: float) -> None:
        """Adopt a persisted retention watermark (recovery-only)."""
        with self._lock:
            self._watermark = max(self._watermark, watermark)

    def describe(self) -> dict:
        summary = super().describe()
        summary.update(
            {
                "index_kind": self._index_kind,
                "shard_seconds": self._shard_seconds,
                "shards": len(self._shards),
                "shards_unmaterialised": self.unmaterialised_shard_count(),
                "shards_probed": self.shards_probed,
                "shards_pruned": self.shards_pruned,
                "eviction_watermark": self._watermark,
            }
        )
        return summary
