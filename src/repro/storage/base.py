"""The record-store backend protocol of the IUPT storage layer.

The paper treats the IUPT as a static table behind a single time index; a
production deployment instead receives positioning reports continuously and
serves window queries concurrently.  This module defines the contract between
the :class:`~repro.data.iupt.IUPT` facade (and through it the execution
engine) and the storage backends that actually hold the records:

* :class:`~repro.storage.memory.InMemoryRecordStore` — the seed behaviour:
  one flat record list behind whole-table time indexes, per-record index
  inserts, one version for the entire table;
* :class:`~repro.storage.sharded.ShardedRecordStore` — time-partitioned
  shards, each owning a bulk-loaded time index and its own version, so
  window queries prune to overlapping shards, batch ingestion costs one
  bulk index build per touched shard, and retention can drop old shards;
* :class:`~repro.storage.durable.DurableRecordStore` — a sharded store
  behind a write-ahead log and per-shard snapshots, so a process restart
  recovers the exact pre-crash state (see :mod:`repro.storage.durable`).

The key protocol addition over the historical ``IUPT`` internals is
**window-scoped versioning**: :meth:`RecordStore.version_token` describes the
state of the records *visible to one window* rather than of the whole table.
The engine keys its cross-query presence cache on that token, so ingesting a
batch only invalidates cached artefacts whose query windows overlap the
touched shards — the flat store degenerates to a whole-table token, which
reproduces the seed's invalidate-everything behaviour.

Stores are also **observable**: :meth:`RecordStore.subscribe` registers a
listener that receives an :class:`IngestEvent` after every ingestion and an
:class:`EvictionEvent` after every retention eviction that dropped records.
The continuous-query subsystem (:mod:`repro.engine.continuous`) maintains
standing query results through exactly this hook, using the
:attr:`IngestReceipt.object_spans` of each event to decide which objects'
presences a batch actually changed.
"""

from __future__ import annotations

import itertools
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..data.records import PositioningRecord

#: Process-wide identity counter shared by every store (and therefore every
#: IUPT facade): version tokens from different tables must never collide.
STORE_UIDS = itertools.count(1)

#: A hashable token pinning the state of (part of) a store; see
#: :meth:`RecordStore.version_token`.
VersionToken = Tuple

STORE_KINDS = ("flat", "sharded")


class EvictedRangeError(LookupError):
    """A window query reached into data dropped by retention eviction.

    Raised instead of silently answering from the surviving shards only:
    a partial flow looks exactly like a small real flow, which would corrupt
    rankings without any signal that retention truncated the input.
    """

    def __init__(self, start: float, end: float, watermark: float):
        super().__init__(
            f"window [{start}, {end}] overlaps evicted history: records before "
            f"t={watermark} were dropped by retention eviction; narrow the "
            f"window to start at or after the watermark"
        )
        self.start = start
        self.end = end
        self.watermark = watermark


@dataclass
class IngestReceipt:
    """What one :meth:`RecordStore.ingest_batch` call did.

    ``shards_touched`` lists the shard keys whose version advanced (the flat
    store reports the pseudo-shard ``"table"``); streaming callers can use it
    to reason about which cached windows the batch invalidated.

    ``object_spans`` summarises *whose* records the batch carried: one
    ``(object_id, earliest_ts, latest_ts)`` triple per distinct object, in
    ascending object-id order.  A standing query over ``[start, end]`` only
    needs to recompute the presence of objects whose span overlaps the
    window; every other object's cached artefact is still valid (its visible
    sequence is unchanged) and can be re-keyed to the new version token.
    """

    records_ingested: int = 0
    shards_touched: Tuple = ()
    object_spans: Tuple[Tuple[int, float, float], ...] = ()

    @property
    def shards_touched_count(self) -> int:
        return len(self.shards_touched)

    def objects_overlapping(self, start: float, end: float) -> frozenset:
        """The ingested object ids whose new records may fall in ``[start, end]``.

        The test is conservative (span overlap, not per-record membership):
        an object reporting both before and after the window is counted even
        if no individual record landed inside, which can only cause an
        unnecessary — never a missing — recomputation downstream.
        """
        return frozenset(
            object_id
            for object_id, earliest, latest in self.object_spans
            if earliest <= end and latest >= start
        )


def summarise_object_spans(
    records: Sequence[PositioningRecord],
) -> Tuple[Tuple[int, float, float], ...]:
    """Per-object ``(id, earliest_ts, latest_ts)`` triples of one batch."""
    spans: Dict[int, Tuple[float, float]] = {}
    for record in records:
        span = spans.get(record.object_id)
        if span is None:
            spans[record.object_id] = (record.timestamp, record.timestamp)
        else:
            spans[record.object_id] = (
                min(span[0], record.timestamp),
                max(span[1], record.timestamp),
            )
    return tuple(
        (object_id, spans[object_id][0], spans[object_id][1])
        for object_id in sorted(spans)
    )


@dataclass(frozen=True)
class IngestEvent:
    """Delivered to store listeners after one ingestion completed."""

    receipt: IngestReceipt


@dataclass(frozen=True)
class EvictionEvent:
    """Delivered to store listeners after retention dropped records."""

    watermark: float
    records_dropped: int


#: A store listener: called synchronously with each event, after the store
#: mutation has fully completed (the store is consistent and queryable).
StoreListener = Callable[[object], None]


class RecordStore(ABC):
    """Storage backend contract for uncertain positioning records.

    Implementations must keep :meth:`range_query` results in global time
    order with ties preserving arrival order — the deterministic ordering
    every flow computation downstream relies on.
    """

    #: Short backend identifier (``"flat"`` / ``"sharded"``).
    kind: str = "abstract"

    def __init__(self) -> None:
        self._listeners: Dict[int, StoreListener] = {}
        self._listener_tokens = itertools.count(1)
        self._lock = threading.RLock()

    @property
    def lock(self) -> threading.RLock:
        """The store's single re-entrant mutation/read lock.

        Every mutation (``ingest_batch`` / ``append`` / ``evict_before``) and
        every structural read (``range_query``, ``version_token``, …) runs
        under this lock, so concurrent threads — the query service executes
        requests on a worker pool — see each batch (including the listener
        notifications it triggers) as one atomic step.  The lock is
        re-entrant and *shared*: the continuous-query engine synchronises its
        subscription state on the same object, which rules out the AB-BA
        deadlock a second lock would invite (ingest holds the store lock and
        enters the maintenance engine; registration enters the maintenance
        engine and reads the store).
        """
        return self._lock

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, listener: StoreListener) -> int:
        """Register a listener for :class:`IngestEvent` / :class:`EvictionEvent`.

        Listeners are invoked synchronously, in registration order, after the
        mutation has fully completed — the store is consistent and queryable
        from inside a listener.  Returns a token for :meth:`unsubscribe`.
        """
        token = next(self._listener_tokens)
        self._listeners[token] = listener
        return token

    def unsubscribe(self, token: int) -> bool:
        """Remove a listener by its token; returns whether it was registered."""
        return self._listeners.pop(token, None) is not None

    @property
    def listener_count(self) -> int:
        return len(self._listeners)

    def _notify(self, event: object) -> None:
        for listener in list(self._listeners.values()):
            listener(event)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @abstractmethod
    def append(self, record: PositioningRecord) -> None:
        """Ingest a single record (bumps the owning version once)."""

    @abstractmethod
    def ingest_batch(
        self, records: Iterable[PositioningRecord]
    ) -> IngestReceipt:
        """Ingest a batch of records with one version bump per touched shard."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abstractmethod
    def range_query(self, start: float, end: float) -> List[PositioningRecord]:
        """Records with timestamps in ``[start, end]``, in time order.

        Both window endpoints are **inclusive** (the paper's
        ``RangeQuery([ts, te])``).  Raises :class:`EvictedRangeError` when
        ``start`` lies strictly below the :attr:`eviction_watermark`; a
        window starting exactly at the watermark is fully answerable.
        """

    @abstractmethod
    def version_token(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> VersionToken:
        """A hashable token pinning the state of the records in ``[start, end]``.

        With no window, the token covers the whole table.  Two calls return
        equal tokens exactly when every record visible to the window (and the
        set of shards that could hold such records) is unchanged between
        them; tokens from different store instances never compare equal.
        """

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    @abstractmethod
    def evict_before(self, timestamp: float) -> int:
        """Drop old records to enforce retention; returns how many were dropped.

        **The retention boundary contract** (identical across backends, and
        exercised by the flat-vs-sharded parity tests in
        ``tests/test_storage.py``):

        * the cut-off is **exclusive**: only records with
          ``record.timestamp < timestamp`` may be dropped; a record with
          ``timestamp == cutoff`` is *always* retained;
        * a backend may retain *more* than the contract requires — the
          sharded store only drops whole shards, so records of a partially
          covered trailing shard survive.  When the cut-off falls exactly on
          a shard boundary both backends drop exactly the records strictly
          below it and behave identically;
        * after an eviction that dropped records, :attr:`eviction_watermark`
          advances to ``w`` such that every record with ``timestamp < w`` is
          gone and no record with ``timestamp >= w`` was dropped.  An
          eviction that dropped nothing leaves the watermark unchanged (so
          an empty store never grows an artificial dead zone);
        * window queries treat the watermark as an **inclusive lower bound
          on queryable time**: ``range_query(start, end)`` raises
          :class:`EvictedRangeError` exactly when ``start < watermark`` — a
          window starting *exactly at* the watermark is fully answerable
          and must not raise (see :func:`check_not_evicted`);
        * a later ``ingest_batch`` carrying any record with
          ``timestamp < watermark`` is rejected with :class:`ValueError`:
          evicted history cannot be refilled.
        """

    @property
    def eviction_watermark(self) -> float:
        """Timestamps strictly below this have been evicted (``-inf`` if none).

        Every surviving record satisfies ``timestamp >= eviction_watermark``,
        and a query window with ``start >= eviction_watermark`` is fully
        answerable (see the contract on :meth:`evict_before`).
        """
        return float("-inf")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @abstractmethod
    def __len__(self) -> int:
        ...

    @abstractmethod
    def records_in_time_order(self) -> Sequence[PositioningRecord]:
        """Every stored record in global time order (arrival order on ties)."""

    @abstractmethod
    def time_span(self) -> Tuple[float, float]:
        """``(earliest, latest)`` stored timestamps, ``(inf, -inf)`` if empty."""

    def describe(self) -> dict:
        """Backend description for experiment logs."""
        return {"kind": self.kind, "records": len(self)}


def check_not_evicted(store: RecordStore, start: float, end: float) -> None:
    """Raise :class:`EvictedRangeError` when ``[start, end]`` reaches evicted data.

    The check is strict (``start < watermark``): the watermark itself is the
    first queryable instant, so a window starting exactly there never raises —
    every record at or above the watermark survived eviction (see the
    boundary contract on :meth:`RecordStore.evict_before`).
    """
    watermark = store.eviction_watermark
    if start < watermark:
        raise EvictedRangeError(start, end, watermark)
