"""The flat in-memory record store (the seed's IUPT internals).

One record list and two whole-table time indexes (the paper's 1D R-tree plus
the B+-tree of the index ablation), inserted into record by record.  The only
behavioural change from the seed is versioning: a batch ingested through
:meth:`InMemoryRecordStore.ingest_batch` bumps the table version once instead
of once per record, so a streamed-in batch no longer churns the engine's
cache key once per appended row.  The token still covers the whole table —
any ingestion invalidates every cached window — which is exactly the
granularity the sharded store improves on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..data.records import PositioningRecord
from ..indexes import BPlusTree, OneDimensionalRTree
from .base import (
    EvictionEvent,
    IngestEvent,
    IngestReceipt,
    RecordStore,
    STORE_UIDS,
    VersionToken,
    check_not_evicted,
    summarise_object_spans,
)

#: The pseudo-shard identifier the flat store reports in receipts/tokens.
WHOLE_TABLE = "table"


class InMemoryRecordStore(RecordStore):
    """Flat record list behind whole-table time indexes.

    Parameters
    ----------
    index_kind:
        ``"1dr-tree"`` (the paper's choice) or ``"bplus-tree"``; selects the
        index answering :meth:`range_query`.  Both indexes are maintained so
        the index ablation can switch kinds over identical contents.
    """

    kind = "flat"

    VALID_INDEXES = ("1dr-tree", "bplus-tree")

    def __init__(self, index_kind: str = "1dr-tree"):
        super().__init__()
        if index_kind not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index kind {index_kind!r}; expected one of {self.VALID_INDEXES}"
            )
        self._index_kind = index_kind
        self._records: List[PositioningRecord] = []
        self._rtree: OneDimensionalRTree[PositioningRecord] = OneDimensionalRTree()
        self._bptree: BPlusTree[PositioningRecord] = BPlusTree()
        self._uid = next(STORE_UIDS)
        self._version = 0
        self._watermark = float("-inf")

    @property
    def index_kind(self) -> str:
        return self._index_kind

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _insert(self, record: PositioningRecord) -> None:
        self._records.append(record)
        self._rtree.insert(record.timestamp, record)
        self._bptree.insert(record.timestamp, record)

    def append(self, record: PositioningRecord) -> None:
        self.ingest_batch((record,))

    def ingest_batch(self, records: Iterable[PositioningRecord]) -> IngestReceipt:
        batch = list(records)
        if not batch:
            # Empty-batch parity with the sharded store: no lock, no version
            # bump, no listener events — an empty flush is a no-op everywhere.
            return IngestReceipt()
        with self._lock:
            earliest = min(record.timestamp for record in batch)
            if earliest < self._watermark:
                raise ValueError(
                    f"batch contains records before the retention watermark "
                    f"t={self._watermark}; evicted history cannot be refilled"
                )
            for record in batch:
                self._insert(record)
            self._version += 1
            receipt = IngestReceipt(
                records_ingested=len(batch),
                shards_touched=(WHOLE_TABLE,),
                object_spans=summarise_object_spans(batch),
            )
            self._notify(IngestEvent(receipt))
            return receipt

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, start: float, end: float) -> List[PositioningRecord]:
        with self._lock:
            check_not_evicted(self, start, end)
            if self._index_kind == "1dr-tree":
                return self._rtree.range_query(start, end)
            return self._bptree.range_query(start, end)

    def version_token(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> VersionToken:
        # Whole-table granularity regardless of the window: the flat store
        # cannot tell which part of the table an ingestion touched.
        with self._lock:
            return (self._uid, self._version)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def evict_before(self, timestamp: float) -> int:
        """Drop every record with ``timestamp`` strictly below the cut-off.

        The flat store has no shard structure, so it can honour the
        exclusive-cutoff contract exactly: a record at ``timestamp ==
        cutoff`` always survives, and — matching a sharded store whose shard
        boundary falls exactly on the cut-off — the watermark advances to
        the cut-off itself when anything was dropped.  Both whole-table
        indexes are bulk-rebuilt from the surviving records (preserving
        arrival order on timestamp ties), and the table version bumps so
        cached artefacts derived from evicted history die with it.
        """
        with self._lock:
            kept_arrival = [r for r in self._records if r.timestamp >= timestamp]
            dropped = len(self._records) - len(kept_arrival)
            if dropped == 0:
                return 0
            self._records = kept_arrival
            pairs = [(ts, record) for ts, record in self._rtree if ts >= timestamp]
            self._rtree = OneDimensionalRTree.from_sorted(pairs)
            self._bptree = BPlusTree.bulk_load(pairs)
            self._watermark = max(self._watermark, float(timestamp))
            self._version += 1
            self._notify(EvictionEvent(self._watermark, dropped))
            return dropped

    @property
    def eviction_watermark(self) -> float:
        return self._watermark

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records_in_time_order(self) -> Sequence[PositioningRecord]:
        # The R-tree keeps (timestamp, record) pairs sorted with arrival
        # order preserved on ties.
        with self._lock:
            return tuple(record for _, record in self._rtree)

    @property
    def records_in_arrival_order(self) -> Sequence[PositioningRecord]:
        """The records exactly as appended (the seed's ``IUPT.records``)."""
        with self._lock:
            return tuple(self._records)

    def time_span(self) -> Tuple[float, float]:
        with self._lock:
            if not self._records:
                return (float("inf"), float("-inf"))
            timestamps = [r.timestamp for r in self._records]
            return (min(timestamps), max(timestamps))

    def describe(self) -> dict:
        summary = super().describe()
        summary["index_kind"] = self._index_kind
        summary["version"] = self._version
        summary["eviction_watermark"] = self._watermark
        return summary
