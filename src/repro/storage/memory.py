"""The flat in-memory record store (the seed's IUPT internals).

One record list and two whole-table time indexes (the paper's 1D R-tree plus
the B+-tree of the index ablation), inserted into record by record.  The only
behavioural change from the seed is versioning: a batch ingested through
:meth:`InMemoryRecordStore.ingest_batch` bumps the table version once instead
of once per record, so a streamed-in batch no longer churns the engine's
cache key once per appended row.  The token still covers the whole table —
any ingestion invalidates every cached window — which is exactly the
granularity the sharded store improves on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..data.records import PositioningRecord
from ..indexes import BPlusTree, OneDimensionalRTree
from .base import (
    IngestEvent,
    IngestReceipt,
    RecordStore,
    STORE_UIDS,
    VersionToken,
    summarise_object_spans,
)

#: The pseudo-shard identifier the flat store reports in receipts/tokens.
WHOLE_TABLE = "table"


class InMemoryRecordStore(RecordStore):
    """Flat record list behind whole-table time indexes.

    Parameters
    ----------
    index_kind:
        ``"1dr-tree"`` (the paper's choice) or ``"bplus-tree"``; selects the
        index answering :meth:`range_query`.  Both indexes are maintained so
        the index ablation can switch kinds over identical contents.
    """

    kind = "flat"

    VALID_INDEXES = ("1dr-tree", "bplus-tree")

    def __init__(self, index_kind: str = "1dr-tree"):
        super().__init__()
        if index_kind not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index kind {index_kind!r}; expected one of {self.VALID_INDEXES}"
            )
        self._index_kind = index_kind
        self._records: List[PositioningRecord] = []
        self._rtree: OneDimensionalRTree[PositioningRecord] = OneDimensionalRTree()
        self._bptree: BPlusTree[PositioningRecord] = BPlusTree()
        self._uid = next(STORE_UIDS)
        self._version = 0

    @property
    def index_kind(self) -> str:
        return self._index_kind

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _insert(self, record: PositioningRecord) -> None:
        self._records.append(record)
        self._rtree.insert(record.timestamp, record)
        self._bptree.insert(record.timestamp, record)

    def append(self, record: PositioningRecord) -> None:
        self.ingest_batch((record,))

    def ingest_batch(self, records: Iterable[PositioningRecord]) -> IngestReceipt:
        with self._lock:
            batch = list(records)
            for record in batch:
                self._insert(record)
            if batch:
                self._version += 1
            receipt = IngestReceipt(
                records_ingested=len(batch),
                shards_touched=(WHOLE_TABLE,) if batch else (),
                object_spans=summarise_object_spans(batch),
            )
            if batch:
                self._notify(IngestEvent(receipt))
            return receipt

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, start: float, end: float) -> List[PositioningRecord]:
        with self._lock:
            if self._index_kind == "1dr-tree":
                return self._rtree.range_query(start, end)
            return self._bptree.range_query(start, end)

    def version_token(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> VersionToken:
        # Whole-table granularity regardless of the window: the flat store
        # cannot tell which part of the table an ingestion touched.
        with self._lock:
            return (self._uid, self._version)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records_in_time_order(self) -> Sequence[PositioningRecord]:
        # The R-tree keeps (timestamp, record) pairs sorted with arrival
        # order preserved on ties.
        with self._lock:
            return tuple(record for _, record in self._rtree)

    @property
    def records_in_arrival_order(self) -> Sequence[PositioningRecord]:
        """The records exactly as appended (the seed's ``IUPT.records``)."""
        with self._lock:
            return tuple(self._records)

    def time_span(self) -> Tuple[float, float]:
        with self._lock:
            if not self._records:
                return (float("inf"), float("-inf"))
            timestamps = [r.timestamp for r in self._records]
            return (min(timestamps), max(timestamps))

    def describe(self) -> dict:
        summary = super().describe()
        summary["index_kind"] = self._index_kind
        summary["version"] = self._version
        return summary
