"""Durable storage: a write-ahead log and snapshots around the sharded store.

Every layer above the storage backend — the execution engine, continuous
queries, the network service — assumed the table lives forever; in reality a
process restart silently lost every ingested record.  This module adds the
classic persistence design for a time-partitioned store, where the partition
structure maps one-to-one onto log segments and snapshot files:

* **write-ahead log** — :meth:`DurableRecordStore.ingest_batch` first appends
  the batch to the log, then applies it to the wrapped in-memory
  :class:`~repro.storage.sharded.ShardedRecordStore`.  The log is split into
  **one segment file per time shard** (``wal/segment-<key>.wal``): the batch
  is sliced exactly the way the sharded store slices it, and each slice
  becomes one length-prefixed, CRC-checked frame in its shard's segment.  A
  batch spanning several shards is made atomic by a **commit record** in the
  control log (``control.wal``): recovery replays only frames whose batch
  sequence number was committed, so a crash mid-batch rolls the whole batch
  back instead of resurrecting half of it;
* **fsync policy** — :class:`DurabilityConfig` picks the durability/latency
  trade-off: ``"always"`` fsyncs every segment append and every commit
  (survives OS crashes), ``"batch"`` fsyncs only the commit record (survives
  process crashes; the default), ``"never"`` leaves flushing to the OS
  (fastest; survives clean exits).  ``benchmarks/test_bench_durable.py``
  measures the cost of each;
* **snapshots** — :meth:`DurableRecordStore.checkpoint` writes each dirty
  shard's records *and version* to ``snapshots/shard-<key>.snap``
  (atomically, via a temp file and ``os.replace``), then deletes the shard's
  now-redundant segment and compacts the control log, so recovery loads the
  snapshot and replays only the frames appended after it.
  ``DurabilityConfig.snapshot_every_batches`` checkpoints automatically;
* **eviction** — :meth:`DurableRecordStore.evict_before` first persists a
  watermark record (the logical commit of the eviction), then drops the
  shards in memory and deletes their segment and snapshot files.  A crash
  between those steps only leaves files that recovery discards, because the
  watermark already says their history is gone;
* **recovery** — constructing a :class:`DurableRecordStore` over an existing
  directory rebuilds the exact pre-crash state: per-shard records in the
  same order, the same per-shard versions (so
  :meth:`~repro.storage.base.RecordStore.version_token` values compare equal
  to pre-crash tokens), and the same retention watermark.  Torn frames at a
  file tail (a crash mid-write) are detected by the length/CRC framing and
  truncated away.  The differential crash-recovery harness in
  ``tests/test_durable.py`` kills the store at arbitrary WAL frame
  boundaries (via :attr:`DurabilityConfig.fail_after_writes`) and asserts
  the recovered store is bit-identical to an in-memory oracle that applied
  exactly the committed batches.

Everything is standard-library only (``json``, ``struct``, ``zlib``, ``os``);
float timestamps and probabilities round-trip bit-exactly through the JSON
payloads (``repr`` ↔ ``float``), the same guarantee the wire protocol relies
on.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import time
import uuid
import zlib
from dataclasses import dataclass
from typing import (
    BinaryIO,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..codec.packed import PackedRecordBatch, active_backend, encode_batch
from ..data.records import PositioningRecord, Sample, SampleSet
from .base import IngestReceipt, RecordStore, StoreListener, VersionToken
from .sharded import DEFAULT_SHARD_SECONDS, ShardedRecordStore

FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
CONTROL_NAME = "control.wal"
WAL_DIR_NAME = "wal"
SNAPSHOT_DIR_NAME = "snapshots"
SUBSCRIPTIONS_NAME = "subscriptions.json"

FSYNC_KINDS = ("always", "batch", "never")

#: How many recent commits keep their wall-clock time for lag-in-seconds.
_COMMIT_TIME_WINDOW = 4096

CODEC_KINDS = ("binary", "json")

#: Frame header: payload byte length + CRC32 of the payload, big-endian.
_FRAME_HEADER = struct.Struct(">II")

#: Binary segment-frame body prefix: magic + batch sequence number.
SEGMENT_MAGIC = b"RSG1"
_SEGMENT_PREFIX = struct.Struct("<4sQ")

#: Binary snapshot-frame body prefix: magic + shard key + version + through.
SNAPSHOT_MAGIC = b"RSN1"
_SNAPSHOT_PREFIX = struct.Struct("<4sqQQ")


class SimulatedCrashError(RuntimeError):
    """The store hit its injected fault point and 'crashed'.

    Raised by every subsequent operation too: a crashed store is dead until
    a new :class:`DurableRecordStore` recovers its directory.
    """


@dataclass(frozen=True)
class DurabilityConfig:
    """Durability/latency knobs of one :class:`DurableRecordStore`.

    ``fsync``
        ``"always"``: fsync every segment append and every control-log
        record — an ingest survives an OS crash once it returned.
        ``"batch"`` (default): fsync only the control log's commit record —
        survives process crashes, and orders the commit after its data
        frames on the way to disk.  ``"never"``: flush to the OS but never
        fsync — fastest, survives clean process exits.
    ``snapshot_every_batches``
        Automatic checkpoint cadence (``None`` = only explicit
        :meth:`DurableRecordStore.checkpoint` calls).  Frequent snapshots
        shorten recovery (less WAL replay) at the cost of ingest-path
        pauses; the durable benchmark quantifies the trade-off.
    ``checkpoint_on_recover``
        Checkpoint immediately after a non-empty recovery (default): the
        directory is left canonical — snapshots only, no segments, a
        compacted control log — so the *next* recovery does no replay at
        all and crash garbage (uncommitted frames) is purged.
    ``fail_after_writes``
        Fault injection for the crash-recovery harness: the store performs
        exactly this many WAL file operations (frame appends, snapshot
        writes, file deletions), then raises :class:`SimulatedCrashError`
        immediately *before* the next one — i.e. it dies at a frame
        boundary, leaving whole frames on disk.  ``None`` disables.
    ``codec``
        Body encoding of segment frames and snapshots: ``"binary"``
        (default) writes the packed columnar layout of
        :mod:`repro.codec.packed`; ``"json"`` keeps the original JSON
        payloads.  Recovery is codec-agnostic — every frame declares its
        own encoding, so directories written by either (or both, across
        restarts) recover identically; only the control log stays JSON
        (its frames are a few dozen bytes).
    ``compact_above_bytes``
        Size-triggered WAL compaction: after a committed ingest pushes the
        total segment bytes past this threshold, the store checkpoints
        (snapshot + segment drop) automatically, so an eviction-free table
        stops growing one segment forever.  Compaction **holds back** while
        a registered replication follower's cursor still needs the frames —
        unless the follower lags by more than ``follower_lag_cap_frames``
        committed batches, in which case the segments are compacted anyway
        and the laggard has to re-catch-up from a snapshot
        (:meth:`DurableRecordStore.can_replay_from` turns false for its
        cursor).  ``None`` disables.
    ``follower_lag_cap_frames``
        How many committed batches a lagging follower may hold compaction
        back before the primary compacts past it (see above).
    """

    fsync: str = "batch"
    snapshot_every_batches: Optional[int] = None
    checkpoint_on_recover: bool = True
    fail_after_writes: Optional[int] = None
    codec: str = "binary"
    compact_above_bytes: Optional[int] = None
    follower_lag_cap_frames: int = 4096

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_KINDS:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; expected one of {FSYNC_KINDS}"
            )
        if self.codec not in CODEC_KINDS:
            raise ValueError(
                f"unknown WAL codec {self.codec!r}; expected one of {CODEC_KINDS}"
            )
        if self.snapshot_every_batches is not None and self.snapshot_every_batches < 1:
            raise ValueError("snapshot_every_batches must be at least 1 (or None)")
        if self.fail_after_writes is not None and self.fail_after_writes < 0:
            raise ValueError("fail_after_writes must be non-negative (or None)")
        if self.compact_above_bytes is not None and self.compact_above_bytes < 1:
            raise ValueError("compact_above_bytes must be positive (or None)")
        if self.follower_lag_cap_frames < 0:
            raise ValueError("follower_lag_cap_frames must be non-negative")


class WalCommit:
    """One committed batch, as observed by a WAL commit listener.

    ``records`` is the whole batch in its ingested (time-sorted) order —
    re-ingesting it into an identical store reproduces the primary's shard
    state and per-shard versions exactly.  :meth:`payload` packs the batch
    into the ``RPK1`` columnar layout once and caches it, so a primary with
    several attached followers encodes each commit a single time no matter
    how many connections ship it.
    """

    __slots__ = ("seq", "records", "wall_time", "_payload")

    def __init__(
        self, seq: int, records: Sequence[PositioningRecord], wall_time: float
    ):
        self.seq = seq
        self.records = tuple(records)
        self.wall_time = wall_time
        self._payload: Optional[bytes] = None

    def payload(self) -> bytes:
        """The batch as one packed ``RPK1`` blob (encoded once, cached)."""
        if self._payload is None:
            self._payload = encode_batch(self.records)
        return self._payload


class WalEviction:
    """One committed retention eviction, as observed by a commit listener."""

    __slots__ = ("watermark", "wall_time")

    def __init__(self, watermark: float, wall_time: float):
        self.watermark = watermark
        self.wall_time = wall_time


#: A WAL commit listener: called under the store lock, in commit order, with
#: each :class:`WalCommit` / :class:`WalEviction` the moment it is durable
#: and applied.  The replication layer tails the log through this hook.
CommitListener = Callable[[object], None]


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
def _frame_bytes(body: bytes) -> bytes:
    """Wrap a frame body in the ``>II`` (length, CRC32) outer framing."""
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def encode_wal_frame(payload: Mapping[str, object]) -> bytes:
    """One JSON log frame: length/CRC header + compact JSON body."""
    return _frame_bytes(json.dumps(payload, separators=(",", ":")).encode("utf-8"))


def encode_segment_frame(seq: int, records: Sequence[PositioningRecord]) -> bytes:
    """One binary segment frame: magic + sequence + packed record batch."""
    return _frame_bytes(
        _SEGMENT_PREFIX.pack(SEGMENT_MAGIC, seq) + encode_batch(records)
    )


def encode_snapshot_frame(
    shard_key: int, version: int, through: int, records: Sequence[PositioningRecord]
) -> bytes:
    """One binary snapshot frame: magic + shard metadata + packed batch."""
    return _frame_bytes(
        _SNAPSHOT_PREFIX.pack(SNAPSHOT_MAGIC, shard_key, version, through)
        + encode_batch(records)
    )


def _parse_frame_body(body: bytes) -> Optional[dict]:
    """One frame body to its dict form; ``None`` when undecodable.

    Binary bodies announce themselves with a magic prefix and carry their
    records as a :class:`~repro.codec.packed.PackedRecordBatch` under the
    ``"packed"`` key; everything else is the original compact JSON.  The
    dispatch is per frame, so one segment file may freely mix codecs (a
    store reopened under a different :attr:`DurabilityConfig.codec` keeps
    appending to its existing segments).
    """
    prefix = body[:4]
    if prefix == SEGMENT_MAGIC:
        try:
            _magic, seq = _SEGMENT_PREFIX.unpack_from(body)
            packed = PackedRecordBatch.decode(body[_SEGMENT_PREFIX.size :])
        except (ValueError, struct.error):
            return None
        return {"seq": seq, "packed": packed}
    if prefix == SNAPSHOT_MAGIC:
        try:
            _magic, shard_key, version, through = _SNAPSHOT_PREFIX.unpack_from(body)
            packed = PackedRecordBatch.decode(body[_SNAPSHOT_PREFIX.size :])
        except (ValueError, struct.error):
            return None
        return {
            "shard": shard_key,
            "version": version,
            "through": through,
            "packed": packed,
        }
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(frame, dict):
        return None
    return frame


def decode_wal_frames(data: bytes) -> Tuple[List[dict], int]:
    """Parse ``data`` into frames; returns ``(frames, valid_byte_length)``.

    Stops at the first torn or corrupt tail — a truncated header, a body
    shorter than its declared length, a CRC mismatch, or an undecodable
    body — and reports how many bytes of clean prefix precede it, so the
    caller can truncate the file back to a frame boundary.
    """
    frames: List[dict] = []
    offset = 0
    size = len(data)
    while offset + _FRAME_HEADER.size <= size:
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > size:
            break
        body = data[start:end]
        if zlib.crc32(body) != crc:
            break
        frame = _parse_frame_body(body)
        if frame is None:
            break
        frames.append(frame)
        offset = end
    return frames, offset


def frame_records(frame: Mapping[str, object]) -> List[PositioningRecord]:
    """Materialise the records a decoded segment/snapshot frame carries."""
    packed = frame.get("packed")
    if packed is not None:
        return packed.to_records()
    return [record_from_payload(p) for p in frame["records"]]


# ----------------------------------------------------------------------
# Record payloads
# ----------------------------------------------------------------------
def record_to_payload(record: PositioningRecord) -> List[object]:
    """``[object_id, timestamp, [[ploc, prob], ...]]`` — bit-exact floats."""
    return [
        record.object_id,
        record.timestamp,
        [[sample.ploc_id, sample.prob] for sample in record.sample_set],
    ]


def record_from_payload(payload: Sequence[object]) -> PositioningRecord:
    object_id, timestamp, samples = payload
    sample_set = SampleSet(
        Sample(int(ploc_id), float(prob)) for ploc_id, prob in samples
    )
    return PositioningRecord(int(object_id), sample_set, float(timestamp))


class DurableRecordStore(RecordStore):
    """A :class:`~repro.storage.sharded.ShardedRecordStore` that survives
    restarts.

    Pass a fresh directory to create a new table, or an existing one to
    recover it — the persisted manifest then decides ``shard_seconds`` and
    ``index_kind`` (the constructor arguments only seed a brand-new store).
    All query/introspection calls delegate to the wrapped in-memory store;
    mutations are logged first, applied second (see the module docstring).

    The wrapper shares the inner store's re-entrant lock, so the continuous
    query engine and the service keep the exact locking discipline they use
    with volatile stores.
    """

    kind = "durable"

    def __init__(
        self,
        directory: "os.PathLike[str] | str",
        shard_seconds: float = DEFAULT_SHARD_SECONDS,
        index_kind: str = "1dr-tree",
        config: Optional[DurabilityConfig] = None,
    ):
        super().__init__()
        self.config = config or DurabilityConfig()
        self._dir = pathlib.Path(directory)
        self._wal_dir = self._dir / WAL_DIR_NAME
        self._snap_dir = self._dir / SNAPSHOT_DIR_NAME
        self._writes_done = 0
        self._crashed = False
        self._closed = False
        self._segment_handles: Dict[int, BinaryIO] = {}
        self._control_handle: Optional[BinaryIO] = None
        self._next_seq = 1
        #: Per shard: the last committed batch sequence applied to it.
        self._shard_last_seq: Dict[int, int] = {}
        #: Per shard: the version its current snapshot file holds (0 = none).
        self._snapshotted_version: Dict[int, int] = {}
        self._batches_since_snapshot = 0
        #: Replication state: the highest committed batch sequence, and the
        #: sequence at/below which segment frames no longer exist on disk
        #: (checkpoint compaction folded them into snapshots).
        self._last_committed_seq = 0
        self._wal_base_seq = 0
        #: Per shard: bytes currently held by its segment file.
        self._segment_bytes: Dict[int, int] = {}
        #: Registered follower cursors (``name -> last acked seq``) and the
        #: wall-clock commit times of recent sequences (for lag-in-seconds).
        self._followers: Dict[str, int] = {}
        self._commit_times: Dict[int, float] = {}
        self._commit_listeners: Dict[int, CommitListener] = {}
        self._next_listener_token = 1
        self.compaction_stats: Dict[str, int] = {
            "size_triggered": 0,
            "held_back": 0,
            "forced_past_laggard": 0,
        }
        manifest = self._load_or_create_manifest(float(shard_seconds), index_kind)
        self._uid = manifest["uid"]
        self._inner = ShardedRecordStore(
            shard_seconds=manifest["shard_seconds"],
            index_kind=manifest["index_kind"],
        )
        self._inner.restore_identity(self._uid)
        # One shared lock for wrapper, inner store and every layer above.
        self._lock = self._inner.lock
        self.recovery_report: Dict[str, object] = {}
        self._recover()
        if self.config.checkpoint_on_recover and self.recovery_report.get(
            "segments_seen", 0
        ):
            # Leave the directory canonical (snapshots only, compacted
            # control log): the next recovery replays nothing, and crash
            # garbage — uncommitted or already-compacted frames — is purged.
            self.checkpoint()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _load_or_create_manifest(
        self, shard_seconds: float, index_kind: str
    ) -> dict:
        self._dir.mkdir(parents=True, exist_ok=True)
        self._wal_dir.mkdir(exist_ok=True)
        self._snap_dir.mkdir(exist_ok=True)
        path = self._dir / MANIFEST_NAME
        if path.exists():
            manifest = json.loads(path.read_text(encoding="utf-8"))
            if manifest.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported durable-store format {manifest.get('format')!r} "
                    f"in {path} (this build reads format {FORMAT_VERSION})"
                )
            return manifest
        manifest = {
            "format": FORMAT_VERSION,
            "uid": f"durable-{uuid.uuid4().hex[:16]}",
            "shard_seconds": shard_seconds,
            "index_kind": index_kind,
        }
        self._atomic_write(path, json.dumps(manifest, indent=2).encode("utf-8"))
        return manifest

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        committed, watermark, base_next, torn = self._read_control_log()
        snapshots = self._read_snapshots()
        segments, max_seq, torn_segments = self._read_segments()
        torn += torn_segments

        replayed = 0
        skipped_uncommitted = 0
        loaded_from_snapshot = 0
        loaded_lazily = 0
        max_through = 0
        #: Committed sequences whose frames physically survive in segments —
        #: the range a reconnecting follower can still replay from.
        surviving_committed: Set[int] = set()
        shard_seconds = self._inner.shard_seconds
        for key in sorted(set(snapshots) | set(segments)):
            if (key + 1) * shard_seconds <= watermark:
                # The eviction was committed (watermark record) but the crash
                # interrupted the file deletions: finish them now.
                self._remove_segment(key, count_write=False)
                self._remove_snapshot(key, count_write=False)
                continue
            snapshot = snapshots.get(key)
            if snapshot is not None:
                version = int(snapshot["version"])
                through = int(snapshot["through"])
                loaded_from_snapshot += 1
            else:
                version, through = 0, 0
            pending: List[dict] = []
            for frame in segments.get(key, ()):
                seq = int(frame["seq"])
                if seq <= through:
                    continue  # already folded into the snapshot
                if seq not in committed:
                    skipped_uncommitted += 1
                    continue
                pending.append(frame)
                surviving_committed.add(seq)
            if (
                not pending
                and snapshot is not None
                and snapshot.get("packed") is not None
                and version > 0
            ):
                # Binary snapshot with nothing to replay: adopt the packed
                # batch as-is — the shard decodes lazily on first query, so
                # cold recovery is one blob read per shard.
                self._inner.load_shard_packed(key, snapshot["packed"], version)
                loaded_lazily += 1
            else:
                records = frame_records(snapshot) if snapshot is not None else []
                for frame in pending:
                    records.extend(frame_records(frame))
                    version += 1
                    through = int(frame["seq"])
                    replayed += 1
                if pending:
                    # One stable sort replays every _Shard.absorb bit-exactly:
                    # absorb extend+sorts per frame, but stable sorting the
                    # concatenation of already-sorted runs once yields the
                    # same tie order (slices arrive in commit order, each
                    # internally time-sorted) at a fraction of the recovery
                    # cost.
                    records.sort(key=lambda record: record.timestamp)
                if version > 0:
                    self._inner.load_shard(key, records, version)
            self._shard_last_seq[key] = through
            self._snapshotted_version[key] = (
                int(snapshot["version"]) if snapshot is not None else 0
            )
            max_through = max(max_through, through)
        if watermark > float("-inf"):
            self._inner.restore_watermark(watermark)
        # The sequence counter must clear every sequence any surviving file
        # knows about.  Snapshot "through" values matter independently of the
        # other two sources: a crash during checkpoint can land after the
        # segments were deleted but before the compacted base record was
        # written, leaving the snapshots as the only witnesses of the highest
        # committed sequence — resuming below it would reuse sequence numbers
        # that a later recovery then skips as already-compacted (data loss).
        self._next_seq = max(base_next, max_seq + 1, max_through + 1)
        # Replication bookkeeping: the highest committed sequence any source
        # witnessed, and the replay floor — the sequence at/below which no
        # committed segment frame survives on disk (a follower whose cursor
        # is below the floor must re-catch-up from snapshots instead).
        last_committed = max_through
        if committed:
            last_committed = max(last_committed, max(committed))
        self._last_committed_seq = max(last_committed, base_next - 1)
        if surviving_committed:
            self._wal_base_seq = min(surviving_committed) - 1
        else:
            self._wal_base_seq = self._last_committed_seq
        for path in self._wal_dir.glob("segment-*.wal"):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            self._segment_bytes[int(path.stem.split("-", 1)[1])] = size
        self.recovery_report = {
            "shards": self._inner.shard_count,
            "records": len(self._inner),
            "shards_from_snapshot": loaded_from_snapshot,
            "shards_loaded_lazily": loaded_lazily,
            "segments_seen": sum(1 for frames in segments.values() if frames),
            "frames_replayed": replayed,
            "frames_skipped_uncommitted": skipped_uncommitted,
            "torn_tails_truncated": torn,
            "watermark": watermark,
        }

    def _read_control_log(self) -> Tuple[Set[int], float, int, int]:
        path = self._dir / CONTROL_NAME
        committed: Set[int] = set()
        watermark = float("-inf")
        base_next = 1
        torn = 0
        if not path.exists():
            return committed, watermark, base_next, torn
        data = path.read_bytes()
        frames, valid = decode_wal_frames(data)
        if valid < len(data):
            self._truncate_file(path, valid)
            torn = 1
        for frame in frames:
            record_kind = frame.get("kind")
            if record_kind == "commit":
                committed.add(int(frame["seq"]))
            elif record_kind == "watermark":
                watermark = max(watermark, float(frame["watermark"]))
            elif record_kind == "base":
                base_next = max(base_next, int(frame["next_seq"]))
                if frame.get("watermark") is not None:
                    watermark = max(watermark, float(frame["watermark"]))
        return committed, watermark, base_next, torn

    def _read_snapshots(self) -> Dict[int, dict]:
        snapshots: Dict[int, dict] = {}
        for path in sorted(self._snap_dir.glob("shard-*.snap")):
            frames, _valid = decode_wal_frames(path.read_bytes())
            if not frames:
                continue  # corrupt snapshot: fall back to pure WAL replay
            payload = frames[0]
            snapshots[int(payload["shard"])] = payload
        return snapshots

    def _read_segments(self) -> Tuple[Dict[int, List[dict]], int, int]:
        segments: Dict[int, List[dict]] = {}
        max_seq = 0
        torn = 0
        for path in sorted(self._wal_dir.glob("segment-*.wal")):
            key = int(path.stem.split("-", 1)[1])
            data = path.read_bytes()
            frames, valid = decode_wal_frames(data)
            if valid < len(data):
                self._truncate_file(path, valid)
                torn += 1
            segments[key] = frames
            for frame in frames:
                max_seq = max(max_seq, int(frame["seq"]))
        return segments, max_seq, torn

    @staticmethod
    def _truncate_file(path: pathlib.Path, length: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(length)

    # ------------------------------------------------------------------
    # Fault injection and file plumbing
    # ------------------------------------------------------------------
    def _fault_point(self) -> None:
        """Crash (once) when the injected write budget is exhausted.

        Called immediately before every WAL file operation, so a simulated
        crash always lands exactly on a frame boundary — whole frames are
        on disk, the next one never started.
        """
        if self._crashed:
            raise SimulatedCrashError("the store already crashed")
        limit = self.config.fail_after_writes
        if limit is not None and self._writes_done >= limit:
            self._crashed = True
            raise SimulatedCrashError(
                f"simulated crash after {self._writes_done} WAL writes"
            )
        self._writes_done += 1

    def _ensure_usable(self) -> None:
        if self._crashed:
            raise SimulatedCrashError("the store crashed; recover its directory")
        if self._closed:
            raise ValueError("the durable store is closed")

    def _segment_path(self, key: int) -> pathlib.Path:
        return self._wal_dir / f"segment-{key}.wal"

    def _snapshot_path(self, key: int) -> pathlib.Path:
        return self._snap_dir / f"shard-{key}.snap"

    @staticmethod
    def _fsync_dir(path: pathlib.Path) -> None:
        """Persist a directory entry (file creation / rename) itself.

        fsyncing a file's contents does not persist its *name*: after a
        power failure a freshly created segment (or a replaced snapshot) can
        vanish from the directory even though its bytes were synced.  Best
        effort — platforms without directory fds just skip it.
        """
        try:
            fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _segment_handle(self, key: int) -> BinaryIO:
        handle = self._segment_handles.get(key)
        if handle is None:
            path = self._segment_path(key)
            created = not path.exists()
            handle = open(path, "ab")
            self._segment_handles[key] = handle
            if created and self.config.fsync == "always":
                # The "survives OS crashes" promise covers the directory
                # entry of a brand-new segment too.
                self._fsync_dir(self._wal_dir)
        return handle

    def _append_segment_frame(self, key: int, frame: bytes) -> None:
        self._fault_point()
        handle = self._segment_handle(key)
        handle.write(frame)
        handle.flush()
        if self.config.fsync == "always":
            os.fsync(handle.fileno())
        self._segment_bytes[key] = self._segment_bytes.get(key, 0) + len(frame)

    def _append_control_frame(
        self, payload: Mapping[str, object], fsync: bool
    ) -> None:
        self._fault_point()
        if self._control_handle is None:
            path = self._dir / CONTROL_NAME
            created = not path.exists()
            self._control_handle = open(path, "ab")
            if created and self.config.fsync == "always":
                self._fsync_dir(self._dir)
        self._control_handle.write(encode_wal_frame(payload))
        self._control_handle.flush()
        if fsync:
            os.fsync(self._control_handle.fileno())

    def _atomic_write(self, path: pathlib.Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.config.fsync != "never":
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.config.fsync != "never":
            # The rename itself must survive an OS crash, or recovery can
            # see the pre-replace file (or none at all).
            self._fsync_dir(path.parent)

    def _remove_segment(self, key: int, count_write: bool = True) -> None:
        handle = self._segment_handles.pop(key, None)
        if handle is not None:
            handle.close()
        self._segment_bytes.pop(key, None)
        path = self._segment_path(key)
        if path.exists():
            if count_write:
                self._fault_point()
            path.unlink()

    def _remove_snapshot(self, key: int, count_write: bool = True) -> None:
        path = self._snapshot_path(key)
        if path.exists():
            if count_write:
                self._fault_point()
            path.unlink()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, record: PositioningRecord) -> None:
        self.ingest_batch((record,))

    def ingest_batch(self, records: Iterable[PositioningRecord]) -> IngestReceipt:
        batch = sorted(records, key=lambda record: record.timestamp)
        if not batch:
            # Empty-batch parity: no lock, no WAL growth, no version bump.
            return IngestReceipt()
        with self._lock:
            self._ensure_usable()
            if batch[0].timestamp < self._inner.eviction_watermark:
                # Reject before logging: a doomed batch must leave no frames.
                raise ValueError(
                    f"batch contains records before the retention watermark "
                    f"t={self._inner.eviction_watermark}; evicted shards "
                    f"cannot be refilled"
                )
            # Reserve the sequence number BEFORE touching any file: if an
            # append fails with a real I/O error (disk full, EIO) the store
            # object stays alive but this sequence is burned — a later batch
            # must never reuse it, or the aborted batch's orphan frames
            # would ride the new batch's commit record into recovery.
            seq = self._next_seq
            self._next_seq = seq + 1
            # The inner store's slicer is the single source of truth for how
            # a batch maps onto shards: the WAL frames mirror it exactly.
            slices = self._inner.slice_batch(batch)
            for key, slice_records in slices:
                if self.config.codec == "binary":
                    frame = encode_segment_frame(seq, slice_records)
                else:
                    frame = encode_wal_frame(
                        {
                            "seq": seq,
                            "records": [record_to_payload(r) for r in slice_records],
                        }
                    )
                self._append_segment_frame(key, frame)
            # The commit record makes the whole multi-shard batch atomic:
            # recovery ignores every frame of an uncommitted sequence.
            self._append_control_frame(
                {"kind": "commit", "seq": seq},
                fsync=self.config.fsync in ("always", "batch"),
            )
            receipt = self._inner.ingest_batch(batch)
            for key, _slice in slices:
                self._shard_last_seq[key] = seq
            self._last_committed_seq = seq
            now = time.time()
            self._commit_times[seq] = now
            if len(self._commit_times) > _COMMIT_TIME_WINDOW:
                # Sequences are monotonic, so insertion order is ascending:
                # dropping the first key drops the oldest commit time.
                self._commit_times.pop(next(iter(self._commit_times)))
            self._notify_commit(WalCommit(seq, batch, now))
            self._batches_since_snapshot += 1
            cadence = self.config.snapshot_every_batches
            if cadence is not None and self._batches_since_snapshot >= cadence:
                self._checkpoint_locked()
            else:
                self._maybe_compact_locked()
            return receipt

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, int]:
        """Snapshot dirty shards, drop their segments, compact the control log.

        After a checkpoint the directory holds one snapshot per shard and an
        (almost) empty control log — recovery cost becomes proportional to
        table size, not to ingestion history.  Returns a small summary dict.
        """
        with self._lock:
            self._ensure_usable()
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> Dict[str, int]:
        snapshots_written = 0
        versions = self._inner.shard_versions()
        dirty = [
            key
            for key, version in versions.items()
            if self._snapshotted_version.get(key, 0) != version
        ]
        # Only the dirty shards' records are copied out of the inner store:
        # checkpoint cost is proportional to what changed, not table size.
        for key, version, records in self._inner.shard_states(dirty):
            through = self._shard_last_seq.get(key, 0)
            if self.config.codec == "binary":
                frame = encode_snapshot_frame(key, version, through, records)
            else:
                frame = encode_wal_frame(
                    {
                        "shard": key,
                        "version": version,
                        "through": through,
                        "records": [record_to_payload(r) for r in records],
                    }
                )
            self._fault_point()
            self._atomic_write(self._snapshot_path(key), frame)
            self._snapshotted_version[key] = version
            snapshots_written += 1
        # Every committed frame is folded into a snapshot now; uncommitted
        # ones are dead.  Drop every segment — including orphans whose only
        # frames were uncommitted crash garbage (their shard never loaded),
        # or every future recovery re-sees them and re-runs this checkpoint.
        for path in list(self._wal_dir.glob("segment-*.wal")):
            self._remove_segment(int(path.stem.split("-", 1)[1]))
        self._rewrite_control_log()
        self._batches_since_snapshot = 0
        # Every pre-checkpoint frame is gone: followers behind this point
        # must re-catch-up from snapshots instead of replaying.
        self._wal_base_seq = self._last_committed_seq
        self._segment_bytes.clear()
        return {
            "snapshots_written": snapshots_written,
            "shards": self._inner.shard_count,
            "records": len(self._inner),
        }

    def _rewrite_control_log(self) -> None:
        watermark = self._inner.eviction_watermark
        base = {
            "kind": "base",
            "next_seq": self._next_seq,
            "watermark": watermark if watermark > float("-inf") else None,
        }
        if self._control_handle is not None:
            self._control_handle.close()
            self._control_handle = None
        self._fault_point()
        self._atomic_write(self._dir / CONTROL_NAME, encode_wal_frame(base))

    # ------------------------------------------------------------------
    # Replication: WAL cursors, followers, commit listeners, compaction
    # ------------------------------------------------------------------
    @property
    def last_committed_seq(self) -> int:
        """The sequence number of the most recently committed batch."""
        with self._lock:
            return self._last_committed_seq

    @property
    def wal_base_seq(self) -> int:
        """The replay floor: no committed frame with ``seq <= base`` survives.

        Checkpoint compaction and shard eviction both advance it; a follower
        cursor at or above the floor can replay, anything below must
        re-catch-up from snapshots (see :meth:`can_replay_from`).
        """
        with self._lock:
            return self._wal_base_seq

    def can_replay_from(self, cursor: int) -> bool:
        """Whether every committed batch with ``seq > cursor`` is replayable."""
        with self._lock:
            return int(cursor) >= self._wal_base_seq

    def committed_batches_after(
        self, cursor: int
    ) -> List[Tuple[int, List[PositioningRecord]]]:
        """Committed batches with ``seq > cursor``, in commit order.

        Each batch is reconstructed exactly as it was ingested: the inner
        store's :meth:`~repro.storage.sharded.ShardedRecordStore.slice_batch`
        yields strictly increasing shard keys over a time-sorted batch, so
        concatenating a sequence's per-shard slices in shard-key order
        reproduces the original time-sorted batch — re-ingesting it into an
        identical store reproduces the primary's per-shard versions exactly.
        This is the same decoded-frame path recovery replays.
        """
        with self._lock:
            self._ensure_usable()
            cursor = int(cursor)
            if not self.can_replay_from(cursor):
                raise ValueError(
                    f"cursor {cursor} is below the WAL replay floor "
                    f"{self._wal_base_seq}; re-catch-up from a snapshot"
                )
            control_path = self._dir / CONTROL_NAME
            committed: Set[int] = set()
            if control_path.exists():
                frames, _valid = decode_wal_frames(control_path.read_bytes())
                for frame in frames:
                    if frame.get("kind") == "commit":
                        committed.add(int(frame["seq"]))
            per_seq: Dict[int, List[Tuple[int, dict]]] = {}
            for path in sorted(self._wal_dir.glob("segment-*.wal")):
                key = int(path.stem.split("-", 1)[1])
                frames, _valid = decode_wal_frames(path.read_bytes())
                for frame in frames:
                    seq = int(frame["seq"])
                    if seq <= cursor or seq not in committed:
                        continue
                    per_seq.setdefault(seq, []).append((key, frame))
            batches: List[Tuple[int, List[PositioningRecord]]] = []
            for seq in sorted(per_seq):
                records: List[PositioningRecord] = []
                for _key, frame in sorted(per_seq[seq], key=lambda kv: kv[0]):
                    records.extend(frame_records(frame))
                batches.append((seq, records))
            return batches

    def wal_inventory(self) -> Dict[str, object]:
        """Segment count/bytes per shard plus the replayable sequence range."""
        with self._lock:
            control_path = self._dir / CONTROL_NAME
            try:
                control_bytes = control_path.stat().st_size
            except OSError:
                control_bytes = 0
            return {
                "segments": len(self._segment_bytes),
                "segment_bytes": sum(self._segment_bytes.values()),
                "per_shard_bytes": {
                    str(key): size
                    for key, size in sorted(self._segment_bytes.items())
                },
                "control_bytes": control_bytes,
                "base_seq": self._wal_base_seq,
                "last_seq": self._last_committed_seq,
                "compaction": dict(self.compaction_stats),
            }

    def register_follower(self, name: str, cursor: int) -> None:
        """Pin compaction for a replication follower at ``cursor``."""
        with self._lock:
            self._followers[name] = int(cursor)

    def ack_follower(self, name: str, cursor: int) -> None:
        """Advance a follower's cursor (never moves it backwards)."""
        with self._lock:
            current = self._followers.get(name)
            if current is not None:
                self._followers[name] = max(current, int(cursor))

    def unregister_follower(self, name: str) -> None:
        with self._lock:
            self._followers.pop(name, None)

    def follower_lags(self) -> Dict[str, Dict[str, object]]:
        """Per-follower lag in frames and (best-effort) seconds behind."""
        with self._lock:
            now = time.time()
            lags: Dict[str, Dict[str, object]] = {}
            for name, cursor in sorted(self._followers.items()):
                frames_behind = max(0, self._last_committed_seq - cursor)
                seconds_behind = 0.0
                if frames_behind:
                    pending = [
                        stamp
                        for seq, stamp in self._commit_times.items()
                        if seq > cursor
                    ]
                    if pending:
                        seconds_behind = max(0.0, now - min(pending))
                lags[name] = {
                    "cursor": cursor,
                    "frames_behind": frames_behind,
                    "seconds_behind": round(seconds_behind, 3),
                }
            return lags

    def add_commit_listener(self, listener: CommitListener) -> int:
        """Observe every commit (:class:`WalCommit` / :class:`WalEviction`).

        Listeners run under the store lock, in commit order, the moment the
        event is durable and applied — the replication tail hooks in here.
        """
        with self._lock:
            token = self._next_listener_token
            self._next_listener_token += 1
            self._commit_listeners[token] = listener
            return token

    def remove_commit_listener(self, token: int) -> bool:
        with self._lock:
            return self._commit_listeners.pop(token, None) is not None

    def _notify_commit(self, event: object) -> None:
        for listener in list(self._commit_listeners.values()):
            listener(event)

    def _maybe_compact_locked(self) -> None:
        """Size-triggered compaction, coordinated with follower cursors."""
        threshold = self.config.compact_above_bytes
        if threshold is None:
            return
        if sum(self._segment_bytes.values()) < threshold:
            return
        if self._followers:
            slowest = min(self._followers.values())
            if slowest < self._last_committed_seq:
                lag = self._last_committed_seq - slowest
                if lag <= self.config.follower_lag_cap_frames:
                    # A follower still needs these frames and is within its
                    # allowance: hold the segments back for now.
                    self.compaction_stats["held_back"] += 1
                    return
                # The laggard blew its allowance: compact anyway; it will
                # find can_replay_from() false and re-catch-up from the
                # snapshots this very checkpoint writes.
                self.compaction_stats["forced_past_laggard"] += 1
        self.compaction_stats["size_triggered"] += 1
        self._checkpoint_locked()

    # ------------------------------------------------------------------
    # Queries (pure delegation)
    # ------------------------------------------------------------------
    def range_query(self, start: float, end: float) -> List[PositioningRecord]:
        return self._inner.range_query(start, end)

    def version_token(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> VersionToken:
        return self._inner.version_token(start, end)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def evict_before(self, timestamp: float) -> int:
        """Evict whole shards and delete their log segments and snapshots.

        Ordering is the durability invariant: the watermark record is
        persisted *first* (the eviction's logical commit), then the shards
        are dropped in memory and their files deleted.  A crash in between
        leaves orphan files below the committed watermark, which recovery
        discards and deletes.
        """
        with self._lock:
            self._ensure_usable()
            shard_seconds = self._inner.shard_seconds
            doomed = [
                key
                for key in self._inner.shard_versions()
                if (key + 1) * shard_seconds <= timestamp
            ]
            if not doomed:
                return self._inner.evict_before(timestamp)  # 0, no event
            new_watermark = max((key + 1) * shard_seconds for key in doomed)
            self._append_control_frame(
                {"kind": "watermark", "watermark": new_watermark},
                fsync=self.config.fsync in ("always", "batch"),
            )
            dropped = self._inner.evict_before(timestamp)
            for key in doomed:
                self._remove_segment(key)
                self._remove_snapshot(key)
                self._shard_last_seq.pop(key, None)
                self._snapshotted_version.pop(key, None)
            # The dropped shards' committed frames are gone, and evictions
            # themselves are not in the replayable stream: a follower whose
            # cursor predates this point can no longer replay its way to the
            # primary's state — it must re-catch-up from snapshots.  Live
            # tailing followers receive the eviction through the commit
            # listeners instead and apply it themselves.
            self._wal_base_seq = self._last_committed_seq
            self._notify_commit(WalEviction(new_watermark, time.time()))
            return dropped

    @property
    def eviction_watermark(self) -> float:
        return self._inner.eviction_watermark

    # ------------------------------------------------------------------
    # Subscriptions (delegated: events fire on the inner store's mutations)
    # ------------------------------------------------------------------
    def subscribe(self, listener: StoreListener) -> int:
        return self._inner.subscribe(listener)

    def unsubscribe(self, token: int) -> bool:
        return self._inner.unsubscribe(token)

    @property
    def listener_count(self) -> int:
        return self._inner.listener_count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush and fsync every open log handle (drain/shutdown hook)."""
        with self._lock:
            handles = list(self._segment_handles.values())
            if self._control_handle is not None:
                handles.append(self._control_handle)
            for handle in handles:
                handle.flush()
                os.fsync(handle.fileno())

    def close(self) -> None:
        """Flush and close the log handles; further mutations raise."""
        with self._lock:
            if self._closed:
                return
            if not self._crashed:
                self.flush()
            for handle in self._segment_handles.values():
                handle.close()
            self._segment_handles.clear()
            if self._control_handle is not None:
                self._control_handle.close()
                self._control_handle = None
            self._closed = True

    def __enter__(self) -> "DurableRecordStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> pathlib.Path:
        return self._dir

    @property
    def uid(self) -> str:
        """The persisted store identity (embedded in version tokens).

        Replicas adopt it via
        :meth:`~repro.storage.sharded.ShardedRecordStore.restore_identity`
        so their version tokens compare equal to the primary's.
        """
        return self._uid

    @property
    def subscription_manifest_path(self) -> pathlib.Path:
        """Where the continuous-query engine persists standing queries."""
        return self._dir / SUBSCRIPTIONS_NAME

    @property
    def inner(self) -> ShardedRecordStore:
        """The wrapped in-memory sharded store (read-only use)."""
        return self._inner

    @property
    def index_kind(self) -> str:
        return self._inner.index_kind

    @property
    def shard_seconds(self) -> float:
        return self._inner.shard_seconds

    @property
    def shard_count(self) -> int:
        return self._inner.shard_count

    def shard_versions(self) -> Dict[int, int]:
        return self._inner.shard_versions()

    def __len__(self) -> int:
        return len(self._inner)

    def records_in_time_order(self) -> Sequence[PositioningRecord]:
        return self._inner.records_in_time_order()

    def time_span(self) -> Tuple[float, float]:
        return self._inner.time_span()

    def describe(self) -> dict:
        summary = self._inner.describe()
        summary.update(
            {
                "kind": self.kind,
                "directory": str(self._dir),
                "fsync": self.config.fsync,
                "codec": self.config.codec,
                "codec_backend": active_backend(),
                "snapshot_every_batches": self.config.snapshot_every_batches,
                "compact_above_bytes": self.config.compact_above_bytes,
                "next_seq": self._next_seq,
                "last_committed_seq": self._last_committed_seq,
                "wal_base_seq": self._wal_base_seq,
                "followers": len(self._followers),
                "recovery": dict(self.recovery_report),
            }
        )
        return summary
