"""The cross-query presence store.

The per-query ``ObjectComputationCache`` of :mod:`repro.core.flow` shares
per-object work *within* one query; the :class:`PresenceStore` here shares it
*across* queries.  Entries are keyed by

    ``(object_id, (start, end), frozenset(query_slocations), data_key)``

because all four ingredients determine the stored artefact: the window fixes
which reports enter the object's sequence, the query S-location set fixes
the outcome of the query-dependent data reduction (Algorithm 1 prunes an
object exactly when its possible semantic locations miss the query set), and
the ``data_key`` — the identity-and-version token of the table state the
window reads (:meth:`~repro.data.iupt.IUPT.data_key_for`) — pins the state
of the underlying storage, so streaming new reports in (or querying a
different table through the same engine) can never be answered from stale
artefacts.  On a sharded store the token is *window-scoped*: it enumerates
the versions of only the shards the window overlaps, so a freshly ingested
batch invalidates exactly the cached presences whose windows read a touched
shard and leaves every other entry serving hits.
Keying by the query set is what makes the store safe where the historical
shared-``ObjectComputationCache`` pattern was not — a presence reduced under
one location set can never be handed to a different one.

The store is LRU-bounded, thread-safe (the parallel executor probes it from
worker threads), and keeps hit/miss/eviction statistics so experiments can
report cache effectiveness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..core.presence import PresenceComputation
from ..data.records import SampleSet

#: A data identity/version token — ``(uid, version)`` for a flat table,
#: ``(uid, ((shard, version), ...))`` window-scoped for a sharded one; any
#: hashable tuple from the storage layer's ``version_token``.
DataKey = Tuple

#: Cache key: (object id, window, query-set key, data identity/version).
StoreKey = Tuple[
    int,
    Tuple[float, float],
    Optional[FrozenSet[int]],
    Optional[DataKey],
]


def make_store_key(
    object_id: int,
    window: Tuple[float, float],
    query_slocations: Optional[Iterable[int]],
    data_key: Optional[DataKey] = None,
) -> StoreKey:
    """Normalise the key ingredients into a hashable store key.

    ``query_slocations=None`` (reduction without PSL pruning) is a distinct
    key from any concrete query set; ``data_key`` is the
    :meth:`~repro.data.iupt.IUPT.data_key_for` token of the table state the
    artefact was computed from.
    """
    qkey = None if query_slocations is None else frozenset(query_slocations)
    return (object_id, (float(window[0]), float(window[1])), qkey, data_key)


@dataclass
class StoredPresence:
    """The per-object artefact cached by the store.

    The reduction result (``psls``, ``sequence``, ``pruned``) is always
    present; ``computation`` — the constructed possible paths — is filled in
    lazily because the best-first algorithm reduces every object but only
    builds paths for the candidates its guided join actually visits.
    """

    psls: FrozenSet[int]
    sequence: Tuple[SampleSet, ...]
    pruned: bool
    computation: Optional[PresenceComputation] = None

    @property
    def has_paths(self) -> bool:
        return self.computation is not None


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PresenceStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    rekeys: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "rekeys": self.rekeys,
            "hit_rate": round(self.hit_rate, 4),
        }


class PresenceStore:
    """LRU-bounded, thread-safe cross-query cache of per-object presences."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._entries: "OrderedDict[StoreKey, StoredPresence]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: StoreKey) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(
        self,
        object_id: int,
        window: Tuple[float, float],
        query_slocations: Optional[Iterable[int]],
        data_key: Optional[DataKey] = None,
    ) -> Optional[StoredPresence]:
        """Return the stored artefact, or ``None`` on a miss."""
        key = make_store_key(object_id, window, query_slocations, data_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self,
        object_id: int,
        window: Tuple[float, float],
        query_slocations: Optional[Iterable[int]],
        entry: StoredPresence,
        data_key: Optional[DataKey] = None,
    ) -> None:
        """Insert (or refresh) an artefact, evicting the LRU entry if full."""
        key = make_store_key(object_id, window, query_slocations, data_key)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            self.stats.puts += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def rekey(
        self,
        object_id: int,
        window: Tuple[float, float],
        query_slocations: Optional[Iterable[int]],
        old_data_key: Optional[DataKey],
        new_data_key: Optional[DataKey],
    ) -> bool:
        """Move one artefact from ``old_data_key`` to ``new_data_key``.

        The delta-maintenance primitive of the continuous-query subsystem: an
        object whose visible sequence a batch did *not* change still has a
        valid artefact — it is merely keyed to the superseded version token.
        Re-keying it (instead of recomputing it) is what makes an incremental
        refresh cheaper than invalidate-and-recompute.  Returns whether an
        entry was found under the old key; counts as neither hit nor miss.
        """
        old_key = make_store_key(object_id, window, query_slocations, old_data_key)
        new_key = make_store_key(object_id, window, query_slocations, new_data_key)
        with self._lock:
            entry = self._entries.pop(old_key, None)
            if entry is None:
                return False
            self._entries[new_key] = entry
            self._entries.move_to_end(new_key)
            self.stats.rekeys += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()
