"""The :class:`QueryEngine` — the execution-engine facade.

A ``QueryEngine`` owns one :class:`~repro.core.flow.FlowComputer` (the
reduction / path primitives), one cross-query
:class:`~repro.engine.cache.PresenceStore`, one executor, and the three TkPLQ
algorithms wired to the shared :class:`~repro.engine.stages.QueryPipeline`.
It is the layer every entry point goes through:

* :meth:`flow` / :meth:`flows` — Algorithm 2 through the staged pipeline;
* :meth:`search` / :meth:`top_k` — the naive, nested-loop and best-first
  algorithms, sharing the engine's store and executor;
* :meth:`batch` / :meth:`batch_top_k` — many queries in one pass through the
  :class:`~repro.engine.batch.BatchPlanner`;
* :meth:`cache_stats` / :meth:`reset_cache` — cache introspection.

:class:`~repro.core.engine.IndoorFlowSystem` builds one of these from a floor
plan and keeps its historical API as thin wrappers, so existing callers get
the engine (and its caching) without code changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.best_first import BestFirstTkPLQ
from ..core.flow import FlowComputer, FlowResult
from ..core.naive import NaiveTkPLQ
from ..core.nested_loop import NestedLoopTkPLQ
from ..core.query import SearchStats, TkPLQResult, TkPLQuery
from ..core.reduction import DataReductionConfig
from ..data.iupt import IUPT
from ..space.graph import IndoorSpaceLocationGraph
from ..space.matrix import IndoorLocationMatrix
from .batch import BatchPlanner, BatchReport
from .cache import PresenceStore
from .config import EngineConfig
from .continuous import ContinuousQueryEngine
from .stages import QueryPipeline

ALGORITHMS = ("naive", "nested-loop", "best-first")


class QueryEngine:
    """Execute flow computations and TkPLQ queries over one indoor model."""

    def __init__(
        self,
        graph: IndoorSpaceLocationGraph,
        matrix: IndoorLocationMatrix,
        reduction: DataReductionConfig = DataReductionConfig.enabled(),
        config: Optional[EngineConfig] = None,
        max_paths_per_object: Optional[int] = 1024,
        rtree_fanout: int = 8,
    ):
        self.config = config or EngineConfig()
        self.store: Optional[PresenceStore] = (
            PresenceStore(self.config.presence_store_capacity)
            if self.config.caching_enabled
            else None
        )
        self.flow_computer = FlowComputer(
            graph, matrix, reduction, max_paths_per_object
        )
        self.pipeline = QueryPipeline(
            self.flow_computer, store=self.store, config=self.config
        )
        # The computer drives its flow()/flows_for_all() through this
        # pipeline, so legacy callers holding the computer share the engine's
        # store and executor.
        self.flow_computer.use_pipeline(self.pipeline)
        self.planner = BatchPlanner(self.pipeline)
        self._algorithms = {
            "naive": NaiveTkPLQ(self.flow_computer),
            "nested-loop": NestedLoopTkPLQ(self.flow_computer),
            "best-first": BestFirstTkPLQ(self.flow_computer, rtree_fanout),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the executor's worker pool (if any)."""
        self.pipeline.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Flow computation (Algorithm 2)
    # ------------------------------------------------------------------
    def flow(
        self,
        iupt: IUPT,
        sloc_id: int,
        start: float,
        end: float,
        stats: Optional[SearchStats] = None,
    ) -> FlowResult:
        """Indoor flow of one S-location through the staged pipeline."""
        ctx = self.pipeline.context((start, end), frozenset({sloc_id}), stats=stats)
        return self.pipeline.flow(ctx, iupt, sloc_id)

    def flows(
        self, iupt: IUPT, sloc_ids: Sequence[int], start: float, end: float
    ) -> Dict[int, float]:
        """Flows of several S-locations, sharing one per-object pass."""
        return self.pipeline.flows_for_all(iupt, sloc_ids, start, end)

    # ------------------------------------------------------------------
    # TkPLQ
    # ------------------------------------------------------------------
    def search(
        self, iupt: IUPT, query: TkPLQuery, algorithm: str = "best-first"
    ) -> TkPLQResult:
        """Answer one TkPLQ with the chosen algorithm."""
        if algorithm not in self._algorithms:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        return self._algorithms[algorithm].search(iupt, query)

    def top_k(
        self,
        iupt: IUPT,
        query_slocations: Sequence[int],
        k: int,
        start: float,
        end: float,
        algorithm: str = "best-first",
    ) -> TkPLQResult:
        """Convenience wrapper building the query in place."""
        query = TkPLQuery.build(query_slocations, k, start, end)
        return self.search(iupt, query, algorithm)

    # ------------------------------------------------------------------
    # Continuous queries
    # ------------------------------------------------------------------
    def continuous(
        self,
        iupt: IUPT,
        refresh: Optional[str] = None,
        manifest_path=None,
    ) -> ContinuousQueryEngine:
        """Attach a continuous-query engine to ``iupt``.

        Standing queries registered with the returned
        :class:`~repro.engine.continuous.ContinuousQueryEngine` are refreshed
        after every ``ingest_batch`` / ``evict_before`` on the table —
        incrementally by default (see ``EngineConfig.continuous_refresh``).
        ``manifest_path`` persists the registered queries so they can be
        restored after a restart (used with durable tables).
        """
        return ContinuousQueryEngine(
            self, iupt, refresh=refresh, manifest_path=manifest_path
        )

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def batch(self, iupt: IUPT, queries: Sequence[TkPLQuery]) -> BatchReport:
        """Answer many queries in one pass, sharing per-object work."""
        return self.planner.execute(iupt, queries)

    def batch_top_k(
        self, iupt: IUPT, queries: Sequence[TkPLQuery]
    ) -> List[TkPLQResult]:
        """Like :meth:`batch`, returning just the per-query results."""
        return self.batch(iupt, queries).results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the cross-query presence store."""
        if self.store is None:
            return {"enabled": 0.0}
        summary = self.store.stats.as_dict()
        summary["enabled"] = 1.0
        summary["entries"] = float(len(self.store))
        summary["capacity"] = float(self.store.capacity)
        return summary

    def reset_cache(self) -> None:
        """Drop every cached presence artefact (statistics included)."""
        if self.store is not None:
            self.store.clear()
            self.store.reset_stats()
