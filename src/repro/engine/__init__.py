"""The execution-engine layer: staged pipeline, caching, batching, fan-out.

This package turns the core algorithms into an explicit execution engine:

* :mod:`~repro.engine.config` — :class:`EngineConfig`, the engine's knobs;
* :mod:`~repro.engine.context` — :class:`ExecutionContext`, per-query state;
* :mod:`~repro.engine.cache` — :class:`PresenceStore`, the cross-query LRU
  cache of per-object presence artefacts;
* :mod:`~repro.engine.stages` — the composable pipeline stages
  (fetch → reduce → paths → presence) and :class:`QueryPipeline`;
* :mod:`~repro.engine.executors` — serial / thread / process executors;
* :mod:`~repro.engine.batch` — :class:`BatchPlanner`, many queries per pass;
* :mod:`~repro.engine.continuous` — :class:`ContinuousQueryEngine`,
  incrementally maintained standing queries over streaming ingestion;
* :mod:`~repro.engine.runtime` — :class:`QueryEngine`, the facade everything
  (including :class:`~repro.core.engine.IndoorFlowSystem`) goes through.
"""

from .batch import (
    BATCH_ALGORITHM,
    BatchPlanner,
    BatchReport,
    score_query_over_entries,
)
from .cache import CacheStats, PresenceStore, StoredPresence, make_store_key
from .config import CONTINUOUS_REFRESH_KINDS, EXECUTOR_KINDS, EngineConfig
from .context import ExecutionContext
from .continuous import (
    CONTINUOUS_ALGORITHM,
    ContinuousQueryEngine,
    Subscription,
    SubscriptionStats,
)
from .executors import ParallelExecutor, SerialExecutor, make_executor
from .runtime import QueryEngine
from .stages import (
    FetchStage,
    PathStage,
    PresenceStage,
    QueryPipeline,
    ReduceStage,
)

__all__ = [
    "BATCH_ALGORITHM",
    "BatchPlanner",
    "BatchReport",
    "CacheStats",
    "CONTINUOUS_ALGORITHM",
    "CONTINUOUS_REFRESH_KINDS",
    "ContinuousQueryEngine",
    "EXECUTOR_KINDS",
    "EngineConfig",
    "ExecutionContext",
    "FetchStage",
    "ParallelExecutor",
    "PathStage",
    "PresenceStage",
    "PresenceStore",
    "QueryEngine",
    "QueryPipeline",
    "ReduceStage",
    "SerialExecutor",
    "StoredPresence",
    "Subscription",
    "SubscriptionStats",
    "make_executor",
    "make_store_key",
    "score_query_over_entries",
]
