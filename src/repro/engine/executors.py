"""Pluggable executors fanning per-object work across workers.

The engine's unit of parallelism is one object's presence computation
(reduce → path construction), which is pure given the indoor model and the
object's positioning sequence.  Executors therefore only need an ordered
``map``: results must come back in input order so that flow accumulation
stays bit-for-bit deterministic regardless of the executor used.

``SerialExecutor`` runs inline.  ``ParallelExecutor`` wraps a
:mod:`concurrent.futures` pool — threads by default (cheap, shares the
in-memory model; pays off when path construction releases the GIL or when
the per-object work is dominated by native code), or processes for CPU-bound
fan-out (the callable and the indoor model are pickled to the workers, so
tasks are submitted in chunks to amortise that cost).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from .config import EngineConfig

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class SerialExecutor:
    """Run every task inline, in input order."""

    kind = "serial"

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        return [fn(item) for item in items]

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class ParallelExecutor:
    """Ordered parallel ``map`` over a thread or process pool.

    The underlying pool is created lazily on first use and kept alive until
    :meth:`close`, so repeated queries do not pay pool start-up costs.
    """

    def __init__(self, kind: str = "thread", max_workers: Optional[int] = None):
        if kind not in ("thread", "process"):
            raise ValueError(f"unknown parallel executor kind {kind!r}")
        self.kind = kind
        self._max_workers = max_workers
        self._pool: Optional[_FuturesExecutor] = None

    def _ensure_pool(self) -> _FuturesExecutor:
        if self._pool is None:
            if self.kind == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
            else:
                self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    @property
    def max_workers(self) -> int:
        # Mirrors the stdlib pool defaults without touching private attrs.
        if self._max_workers is not None:
            return self._max_workers
        cpus = os.cpu_count() or 1
        return min(32, cpus + 4) if self.kind == "thread" else cpus

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        pool = self._ensure_pool()
        if self.kind == "process":
            # Chunk so the pickled callable (which carries the indoor model)
            # crosses the process boundary O(workers) times, not O(objects).
            chunksize = max(1, math.ceil(len(items) / self.max_workers))
            return list(pool.map(fn, items, chunksize=chunksize))
        return list(pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def make_executor(config: EngineConfig):
    """Build the executor described by an :class:`EngineConfig`."""
    if config.executor == "serial":
        return SerialExecutor()
    return ParallelExecutor(kind=config.executor, max_workers=config.max_workers)
