"""Continuous queries: standing TkPLQ / flow results maintained over streaming.

The paper frames TkPLQ as a one-shot query over an IUPT snapshot.  A live
deployment instead keeps dashboards subscribed to *standing* queries while
report batches stream in; re-answering every standing query from scratch
after every batch wastes exactly the work the storage layer's shard-granular
versioning was built to avoid.  This module closes the loop:

* clients **register** standing queries against a
  :class:`ContinuousQueryEngine` — a top-k query
  (:meth:`ContinuousQueryEngine.register_top_k`) or a per-location flow set
  (:meth:`ContinuousQueryEngine.register_flows`) — and read the always-fresh
  result from the returned :class:`Subscription`;
* the engine listens to the table's storage events
  (:meth:`repro.data.iupt.IUPT.subscribe`) and refreshes the registered
  results after every ``ingest_batch`` / ``evict_before``;
* refreshes are **delta-maintained** (``continuous_refresh="incremental"``,
  the default).  For each subscription and each
  :class:`~repro.storage.base.IngestEvent`:

  1. if the window-scoped version token
     (:meth:`~repro.data.iupt.IUPT.data_key_for`) is unchanged, the batch
     cannot have touched the window — the refresh is **skipped** outright
     (on a sharded store this is the common case for historical windows);
  2. otherwise the receipt's :attr:`~repro.storage.base.IngestReceipt.object_spans`
     split the window's objects into *touched* (new records may overlap the
     window) and *untouched*; untouched objects' cached presence artefacts
     are **re-keyed** to the new token
     (:meth:`~repro.engine.cache.PresenceStore.rekey`) — their visible
     sequences are unchanged, so the artefacts are still valid — and only
     touched objects are actually recomputed;
  3. the flows are re-accumulated over all per-object artefacts in fetch
     order and the top-k ranking is repaired from them, which keeps every
     refreshed result **bit-identical** to a fresh engine's full recompute
     (the differential harness in ``tests/test_continuous.py`` asserts
     exactly this over random ingest/evict interleavings);

* eviction past a registered window marks the subscription **evicted**: its
  result accessor raises :class:`~repro.storage.base.EvictedRangeError`
  instead of silently serving a result computed from truncated history.

``continuous_refresh="recompute"`` disables steps 1-2 (every event re-answers
every standing query through the invalidated cache) and exists as the
baseline of ``benchmarks/test_bench_continuous.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from ..core.query import TkPLQResult, TkPLQuery
from ..data.iupt import IUPT
from ..storage import EvictedRangeError, EvictionEvent, IngestEvent, IngestReceipt
from .batch import score_query_over_entries
from .config import CONTINUOUS_REFRESH_KINDS
from .stages import accumulate_flows_over_entries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import QueryEngine

CONTINUOUS_ALGORITHM = "continuous"

TOP_K = "top-k"
FLOWS = "flows"

#: Fired after each *applied* refresh with ``(subscription, new_result)``.
#: Skipped refreshes (unchanged window token) do not fire.  The callback runs
#: on the ingesting thread, under the maintenance lock, after the
#: subscription's state is fully updated — ``subscription.result`` inside the
#: callback already returns ``new_result`` — so it must be fast and must not
#: mutate the table.  The query service bridges these calls onto its event
#: loop to push update frames to subscribed connections.
UpdateCallback = Callable[["Subscription", object], None]

#: Fired once when retention eviction invalidates the subscription's window,
#: with ``(subscription, error)``; after it returns, reading the result
#: raises that :class:`~repro.storage.base.EvictedRangeError`.
EvictedCallback = Callable[["Subscription", EvictedRangeError], None]


@dataclass
class SubscriptionStats:
    """Maintenance accounting of one standing query."""

    refreshes: int = 0
    skipped: int = 0
    objects_recomputed: int = 0
    objects_rekeyed: int = 0
    last_churn: int = 0
    churn_total: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "refreshes": self.refreshes,
            "skipped": self.skipped,
            "objects_recomputed": self.objects_recomputed,
            "objects_rekeyed": self.objects_rekeyed,
            "last_churn": self.last_churn,
            "churn_total": self.churn_total,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


class Subscription:
    """A standing query registered with a :class:`ContinuousQueryEngine`.

    Holds the latest maintained result; reading :attr:`result` (or
    :meth:`top_k_ids` / :meth:`flow_of`) after retention evicted part of the
    registered window raises :class:`~repro.storage.base.EvictedRangeError`.
    """

    def __init__(
        self,
        sub_id: int,
        kind: str,
        window: Tuple[float, float],
        sloc_ids: Tuple[int, ...],
        query: Optional[TkPLQuery] = None,
        on_update: Optional[UpdateCallback] = None,
        on_evicted: Optional[EvictedCallback] = None,
    ):
        self.sub_id = sub_id
        self.kind = kind
        self.window = window
        self.sloc_ids = sloc_ids
        self.query = query
        #: Push hooks (see :data:`UpdateCallback` / :data:`EvictedCallback`);
        #: assignable after registration too — the maintenance engine reads
        #: them at fire time.
        self.on_update = on_update
        self.on_evicted = on_evicted
        self.query_key: FrozenSet[int] = frozenset(sloc_ids)
        self.stats = SubscriptionStats()
        self._result: Optional[object] = None
        self._error: Optional[EvictedRangeError] = None
        # Delta-maintenance state: the version token of the last refresh and
        # the object population it saw (the re-key candidates of the next).
        self._data_key: Optional[Tuple] = None
        self._object_ids: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    # Result access
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the subscription still has valid (non-evicted) history."""
        return self._error is None

    @property
    def result(self):
        """The maintained result: a :class:`~repro.core.query.TkPLQResult`
        for top-k subscriptions, a ``{sloc_id: flow}`` dict for flow ones."""
        if self._error is not None:
            raise self._error
        return self._result

    def top_k_ids(self) -> List[int]:
        """The current ranking (top-k subscriptions only)."""
        if self.kind != TOP_K:
            raise ValueError("top_k_ids() is only available on top-k subscriptions")
        return self.result.top_k_ids()

    def flow_of(self, sloc_id: int) -> Optional[float]:
        """The current flow of one registered S-location."""
        result = self.result
        flows = result.flows if isinstance(result, TkPLQResult) else result
        return flows.get(sloc_id)

    def describe(self) -> Dict[str, object]:
        """Subscription summary for logs and dashboards."""
        return {
            "id": self.sub_id,
            "kind": self.kind,
            "window": self.window,
            "slocations": len(self.sloc_ids),
            "active": self.active,
            **self.stats.as_dict(),
        }


class ContinuousQueryEngine:
    """Incrementally maintain standing queries over one streaming table.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.runtime.QueryEngine` whose pipeline, cache
        and indoor model answer the standing queries.
    iupt:
        The streaming table to subscribe to.  Every
        :meth:`~repro.data.iupt.IUPT.ingest_batch` /
        :meth:`~repro.data.iupt.IUPT.evict_before` triggers maintenance.
    refresh:
        ``"incremental"`` or ``"recompute"``; defaults to the engine
        config's ``continuous_refresh``.
    manifest_path:
        When set, every registered standing query is mirrored into a JSON
        manifest at this path (rewritten atomically on each register /
        unregister), and :meth:`restore_subscriptions` re-registers the
        persisted queries — with their original subscription ids — after a
        process restart.  The query service points this at the durable
        store's :attr:`~repro.storage.durable.DurableRecordStore.subscription_manifest_path`
        so standing subscriptions survive together with the data they watch.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        iupt: IUPT,
        refresh: Optional[str] = None,
        manifest_path: Optional["os.PathLike[str] | str"] = None,
    ):
        refresh = refresh if refresh is not None else engine.config.continuous_refresh
        if refresh not in CONTINUOUS_REFRESH_KINDS:
            raise ValueError(
                f"unknown continuous refresh {refresh!r}; "
                f"expected one of {CONTINUOUS_REFRESH_KINDS}"
            )
        self._engine = engine
        self._iupt = iupt
        self._refresh_kind = refresh
        self._subscriptions: Dict[int, Subscription] = {}
        self._next_id = 1
        # Subscription state is synchronised on the *store's* re-entrant
        # lock rather than a private one: events arrive with that lock
        # already held (listeners fire inside the mutation), and
        # registration reads the store while holding it here — a second
        # lock would order the two paths oppositely and deadlock.  Sharing
        # the lock serialises concurrent ``ingest_batch`` threads' refreshes
        # against each other and against registration.
        self._lock = iupt.store.lock
        self._manifest_path = (
            pathlib.Path(manifest_path) if manifest_path is not None else None
        )
        self._token: Optional[int] = iupt.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def refresh_kind(self) -> str:
        return self._refresh_kind

    @property
    def subscriptions(self) -> List[Subscription]:
        with self._lock:
            return list(self._subscriptions.values())

    def close(self) -> None:
        """Detach from the table; registered results stop refreshing."""
        if self._token is not None:
            self._iupt.unsubscribe(self._token)
            self._token = None

    def __enter__(self) -> "ContinuousQueryEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        query: TkPLQuery,
        on_update: Optional[UpdateCallback] = None,
        on_evicted: Optional[EvictedCallback] = None,
    ) -> Subscription:
        """Register a standing top-k query; computes its first result now.

        ``on_update`` / ``on_evicted`` are attached before the subscription
        can receive any event, so a push consumer observes every applied
        refresh from the very first batch.  Raises
        :class:`~repro.storage.base.EvictedRangeError` immediately if the
        window already reaches below the table's retention watermark.
        """
        subscription = Subscription(
            0,  # the real id is minted under the lock in _admit
            TOP_K,
            query.interval,
            tuple(query.query_slocations),
            query=query,
            on_update=on_update,
            on_evicted=on_evicted,
        )
        return self._admit(subscription)

    def register_top_k(
        self,
        query_slocations: Sequence[int],
        k: int,
        start: float,
        end: float,
        on_update: Optional[UpdateCallback] = None,
        on_evicted: Optional[EvictedCallback] = None,
    ) -> Subscription:
        """Convenience wrapper building the standing query in place."""
        return self.register(
            TkPLQuery.build(query_slocations, k, start, end),
            on_update=on_update,
            on_evicted=on_evicted,
        )

    def register_flows(
        self,
        sloc_ids: Sequence[int],
        start: float,
        end: float,
        on_update: Optional[UpdateCallback] = None,
        on_evicted: Optional[EvictedCallback] = None,
    ) -> Subscription:
        """Register a standing per-location flow set over ``[start, end]``."""
        ordered = tuple(dict.fromkeys(sloc_ids))
        if not ordered:
            raise ValueError("a flow subscription needs at least one S-location")
        subscription = Subscription(
            0,  # the real id is minted under the lock in _admit
            FLOWS,
            (float(start), float(end)),
            ordered,
            on_update=on_update,
            on_evicted=on_evicted,
        )
        return self._admit(subscription)

    def _admit(self, subscription: Subscription) -> Subscription:
        with self._lock:
            # Mint the id under the lock: concurrent registrations (the
            # query service runs them on worker threads) must never collide
            # — the persisted manifest and the wire ``resume`` op key on it.
            subscription.sub_id = self._next_id
            self._next_id += 1
            self._compute(subscription)  # raises EvictedRangeError on dead windows
            self._subscriptions[subscription.sub_id] = subscription
            self._persist_manifest()
            return subscription

    def unregister(self, subscription: Subscription) -> bool:
        """Drop a subscription; returns whether it was registered."""
        with self._lock:
            removed = self._subscriptions.pop(subscription.sub_id, None) is not None
            if removed:
                self._persist_manifest()
            return removed

    def subscription(self, sub_id: int) -> Optional[Subscription]:
        """Look up a registered subscription by id (``None`` if unknown)."""
        with self._lock:
            return self._subscriptions.get(sub_id)

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------
    def _persist_manifest(self) -> None:
        """Mirror the registered standing queries to disk (under the lock)."""
        if self._manifest_path is None:
            return
        entries = []
        for subscription in self._subscriptions.values():
            entry: Dict[str, object] = {
                "id": subscription.sub_id,
                "kind": subscription.kind,
                "slocs": list(subscription.sloc_ids),
                "window": [subscription.window[0], subscription.window[1]],
            }
            if subscription.query is not None:
                entry["k"] = subscription.query.k
            entries.append(entry)
        tmp = self._manifest_path.with_suffix(self._manifest_path.suffix + ".tmp")
        tmp.write_text(json.dumps(entries, indent=2), encoding="utf-8")
        os.replace(tmp, self._manifest_path)

    def restore_subscriptions(self) -> List[Subscription]:
        """Re-register the standing queries persisted in the manifest.

        Called once after recovering a durable table: each manifest entry is
        re-admitted under its **original subscription id** and its result is
        recomputed from the recovered data, so a client reconnecting after a
        restart can resume the same subscription.  A window that retention
        evicted while the process was down is restored in the *evicted*
        state (reading its result raises
        :class:`~repro.storage.base.EvictedRangeError`) rather than dropped
        silently.  Entries already registered are skipped; returns the
        restored subscriptions.
        """
        if self._manifest_path is None or not self._manifest_path.exists():
            return []
        entries = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        restored: List[Subscription] = []
        with self._lock:
            for entry in entries:
                sub_id = int(entry["id"])
                if sub_id in self._subscriptions:
                    continue
                window = (float(entry["window"][0]), float(entry["window"][1]))
                sloc_ids = tuple(int(sloc) for sloc in entry["slocs"])
                if entry["kind"] == TOP_K:
                    query = TkPLQuery.build(
                        list(sloc_ids), int(entry["k"]), window[0], window[1]
                    )
                    subscription = Subscription(
                        sub_id,
                        TOP_K,
                        query.interval,
                        tuple(query.query_slocations),
                        query=query,
                    )
                else:
                    subscription = Subscription(sub_id, FLOWS, window, sloc_ids)
                try:
                    self._compute(subscription)
                except EvictedRangeError as error:
                    subscription._error = error
                self._subscriptions[sub_id] = subscription
                self._next_id = max(self._next_id, sub_id + 1)
                restored.append(subscription)
            if restored:
                self._persist_manifest()
        return restored

    # ------------------------------------------------------------------
    # Storage events
    # ------------------------------------------------------------------
    def _on_event(self, event: object) -> None:
        # Listeners already run under the store lock; re-acquiring it here
        # (re-entrant) documents the invariant and keeps this path safe if a
        # store ever notifies without holding its lock.
        with self._lock:
            if isinstance(event, IngestEvent):
                for subscription in self._subscriptions.values():
                    self._refresh_after_ingest(subscription, event.receipt)
            elif isinstance(event, EvictionEvent):
                for subscription in self._subscriptions.values():
                    self._apply_eviction(subscription, event.watermark)

    def _refresh_after_ingest(
        self, subscription: Subscription, receipt: IngestReceipt
    ) -> None:
        if not subscription.active:
            return
        if self._refresh_kind == "incremental":
            new_key = self._iupt.data_key_for(*subscription.window)
            if new_key == subscription._data_key:
                # The window's visible records are untouched by this batch —
                # the standing result is still exact; do nothing at all.
                subscription.stats.skipped += 1
                return
            self._rekey_untouched(subscription, receipt, new_key)
            self._compute(subscription, pinned_key=new_key)
        else:
            self._compute(subscription)
        if subscription.on_update is not None:
            subscription.on_update(subscription, subscription._result)

    def _apply_eviction(self, subscription: Subscription, watermark: float) -> None:
        start, end = subscription.window
        if subscription.active and start < watermark:
            subscription._error = EvictedRangeError(start, end, watermark)
            if subscription.on_evicted is not None:
                subscription.on_evicted(subscription, subscription._error)

    def resync(self) -> int:
        """Reconcile every standing result after an out-of-band store reset.

        :meth:`~repro.storage.sharded.ShardedRecordStore.reset_to_packed_shards`
        replaces the table without firing ingest/eviction events (a reset is
        not an ingest), so a replica that re-caught-up from a snapshot calls
        this once afterwards.  Per active subscription: a window whose
        version token is unchanged holds bit-identical data (same shard
        versions ⇒ same records) and is skipped; a window now reaching below
        the adopted retention watermark is marked evicted (``on_evicted``
        fires); everything else is recomputed from scratch and ``on_update``
        fires.  Returns how many subscriptions were recomputed.
        """
        refreshed = 0
        with self._lock:
            watermark = self._iupt.store.eviction_watermark
            for subscription in self._subscriptions.values():
                if not subscription.active:
                    continue
                start, end = subscription.window
                if start < watermark:
                    subscription._error = EvictedRangeError(start, end, watermark)
                    if subscription.on_evicted is not None:
                        subscription.on_evicted(subscription, subscription._error)
                    continue
                new_key = self._iupt.data_key_for(start, end)
                if new_key == subscription._data_key:
                    subscription.stats.skipped += 1
                    continue
                self._compute(subscription)
                refreshed += 1
                if subscription.on_update is not None:
                    subscription.on_update(subscription, subscription._result)
        return refreshed

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------
    def _rekey_untouched(
        self, subscription: Subscription, receipt: IngestReceipt, new_key: Tuple
    ) -> None:
        """Carry untouched objects' artefacts over to the new version token.

        An object is *touched* when the batch carried records whose time span
        overlaps the subscription window — only then can its visible sequence
        (and therefore its presence artefact) have changed.  Every other
        object known to the window keeps its artefact, re-keyed so the
        scoring pass finds it under the refreshed token.
        """
        store = self._engine.store
        if store is None or subscription._data_key is None:
            return
        touched = receipt.objects_overlapping(*subscription.window)
        moved = 0
        for object_id in sorted(subscription._object_ids - touched):
            if store.rekey(
                object_id,
                subscription.window,
                subscription.query_key,
                subscription._data_key,
                new_key,
            ):
                moved += 1
        subscription.stats.objects_rekeyed += moved

    def _compute(
        self, subscription: Subscription, pinned_key: Optional[Tuple] = None
    ) -> None:
        """(Re)compute one standing result through the engine pipeline.

        Touched objects miss the presence store and are recomputed; re-keyed
        (or naturally still-valid) artefacts are served from it.  Flows are
        re-accumulated over every per-object artefact in fetch order, so the
        result is bit-identical to a fresh engine's full recompute.
        """
        began = time.perf_counter()
        pipeline = self._engine.pipeline
        ctx = pipeline.context(subscription.window, subscription.query_key)
        ctx.pinned_data_key = pinned_key
        sequences = pipeline.fetch.run(ctx, self._iupt)
        entries = pipeline.presences(ctx, sequences)

        graph = pipeline.flow_computer.graph
        parent_cells = {
            sloc_id: graph.parent_cell(sloc_id) for sloc_id in subscription.sloc_ids
        }
        kernel = self._engine.config.resolved_scoring_kernel
        if subscription.kind == TOP_K:
            result: object = score_query_over_entries(
                subscription.query,
                entries,
                parent_cells,
                len(sequences),
                algorithm=CONTINUOUS_ALGORITHM,
                kernel=kernel,
            )
        else:
            result = accumulate_flows_over_entries(
                entries, subscription.sloc_ids, parent_cells, ctx.stats, kernel=kernel
            )

        churn = self._churn(subscription._result, result, subscription.kind)
        subscription._result = result
        subscription._data_key = ctx.data_key
        subscription._object_ids = frozenset(sequences)
        subscription.stats.refreshes += 1
        subscription.stats.objects_recomputed += ctx.stats.objects_computed
        subscription.stats.last_churn = churn
        subscription.stats.churn_total += churn
        subscription.stats.elapsed_seconds += time.perf_counter() - began

    @staticmethod
    def _churn(previous: Optional[object], current: object, kind: str) -> int:
        """How much the maintained result moved in one refresh.

        Top-k: ranking positions whose S-location changed.  Flows: locations
        whose flow value changed.  The first computation counts as zero churn.
        """
        if previous is None:
            return 0
        if kind == TOP_K:
            old_ids = previous.top_k_ids()
            new_ids = current.top_k_ids()
            length = max(len(old_ids), len(new_ids))
            old_ids = old_ids + [None] * (length - len(old_ids))
            new_ids = new_ids + [None] * (length - len(new_ids))
            return sum(1 for old, new in zip(old_ids, new_ids) if old != new)
        return sum(
            1 for sloc_id, flow in current.items() if previous.get(sloc_id) != flow
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Engine-level maintenance summary (experiments and dashboards)."""
        totals = SubscriptionStats()
        subscriptions = self.subscriptions
        for subscription in subscriptions:
            stats = subscription.stats
            totals.refreshes += stats.refreshes
            totals.skipped += stats.skipped
            totals.objects_recomputed += stats.objects_recomputed
            totals.objects_rekeyed += stats.objects_rekeyed
            totals.churn_total += stats.churn_total
            totals.elapsed_seconds += stats.elapsed_seconds
        return {
            "refresh": self._refresh_kind,
            "subscriptions": len(subscriptions),
            "active": sum(1 for s in subscriptions if s.active),
            **{
                key: value
                for key, value in totals.as_dict().items()
                if key != "last_churn"
            },
        }
