"""Batched evaluation of many TkPLQ queries in one pass.

Section 4.1's intermediate-result sharing reuses one object's reduced
sequence and possible paths across the locations of *one* query.  The
:class:`BatchPlanner` generalises that sharing across *queries*: queries over
the same window are grouped, every object in the window is reduced once
against the union of the group's query sets and its paths are constructed
once, and each query then only scores its own locations against the shared
per-object artefacts.

The per-query answers are exactly those of the nested-loop algorithm run
independently: an object is relevant to a query precisely when its possible
semantic locations intersect that query's set, objects are scored in the
same deterministic order, and the per-object presence values are identical —
so the summed flows (and therefore the rankings) match bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..codec.kernels import PresenceMatrix
from ..core.nested_loop import score_presence_into_flows
from ..core.query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k
from ..data.iupt import IUPT
from .cache import StoredPresence
from .stages import QueryPipeline

BATCH_ALGORITHM = "batched-nested-loop"


def score_query_over_entries(
    query: TkPLQuery,
    entries: Sequence[Tuple[int, StoredPresence]],
    parent_cells: Dict[int, int],
    objects_total: int,
    algorithm: str = BATCH_ALGORITHM,
    kernel: str = "scalar",
    matrix: Optional[PresenceMatrix] = None,
) -> TkPLQResult:
    """Score one query against shared per-object presence artefacts.

    The per-query tail of a batched window group, shared with the
    continuous-query subsystem so a standing query's refresh scores its
    artefacts exactly like an ad-hoc batched query would — the bit-for-bit
    equivalence of both against the nested-loop algorithm hangs on all three
    using :func:`~repro.core.nested_loop.score_presence_into_flows` over
    objects in the same (fetch) order.

    ``kernel="vectorized"`` routes the accumulation through a
    :class:`~repro.codec.kernels.PresenceMatrix` instead — bit-identical
    flows, rankings and ``flow_evaluations`` (see the kernels module).  A
    prebuilt ``matrix`` (covering at least this query's S-locations) lets a
    window group share one build across its queries.
    """
    query_began = time.perf_counter()
    stats = SearchStats()
    stats.note_objects_total(objects_total)

    if kernel == "vectorized":
        if matrix is None:
            matrix = PresenceMatrix(entries, query.query_slocations, parent_cells)
        flows, evaluations = matrix.score_flows(query.query_slocations)
        stats.flow_evaluations += evaluations
    else:
        query_set = set(query.query_slocations)
        flows = {sloc_id: 0.0 for sloc_id in query.query_slocations}
        for _object_id, entry in entries:
            score_presence_into_flows(entry, query_set, parent_cells, flows, stats)

    stats.elapsed_seconds = time.perf_counter() - query_began
    return TkPLQResult(
        query=query,
        ranking=rank_top_k(flows, query.k),
        flows=flows,
        stats=stats,
        algorithm=algorithm,
    )


@dataclass
class BatchReport:
    """The outcome of one batched run: per-query results plus shared-work totals.

    ``shared_stats`` aggregates the fetch/reduce/path work of every window
    group; its ``objects_total`` is the *sum* of the per-window object
    populations (an object reported in two windows counts twice, matching
    how much fetch-and-reduce work the batch actually performed).
    """

    results: List[TkPLQResult]
    groups: int
    shared_stats: SearchStats = field(default_factory=SearchStats)
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def rankings(self) -> List[List[int]]:
        return [result.top_k_ids() for result in self.results]


class BatchPlanner:
    """Plan and execute many TkPLQ queries over shared per-object work."""

    def __init__(self, pipeline: QueryPipeline):
        self._pipeline = pipeline

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, queries: Sequence[TkPLQuery]) -> List[List[int]]:
        """Group query indices by identical window.

        Queries sharing a window share one fetch, one reduction pass and one
        path construction per object; queries over different windows cannot
        share those artefacts (their per-object sequences differ) and form
        separate groups, preserving first-seen order.
        """
        groups: Dict[Tuple[float, float], List[int]] = {}
        for index, query in enumerate(queries):
            groups.setdefault(query.interval, []).append(index)
        return list(groups.values())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, iupt: IUPT, queries: Sequence[TkPLQuery]
    ) -> BatchReport:
        """Answer every query, sharing per-object work within window groups.

        The returned results are ordered like ``queries``.  Each result's
        ``stats`` carries its own scoring counters (``flow_evaluations``,
        per-query elapsed time); the shared fetch/reduce/path work of the
        whole batch is reported once in :attr:`BatchReport.shared_stats`.
        """
        began = time.perf_counter()
        results: List[TkPLQResult] = [None] * len(queries)  # type: ignore[list-item]
        shared_stats = SearchStats()
        groups = self.plan(queries)

        for group in groups:
            group_stats = SearchStats()
            self._execute_group(iupt, queries, group, group_stats, results)
            shared_stats.merge(group_stats, same_window=False)

        return BatchReport(
            results=list(results),
            groups=len(groups),
            shared_stats=shared_stats,
            elapsed_seconds=time.perf_counter() - began,
        )

    def _execute_group(
        self,
        iupt: IUPT,
        queries: Sequence[TkPLQuery],
        group: List[int],
        group_stats: SearchStats,
        results: List[TkPLQResult],
    ) -> None:
        """One window group: shared per-object pass, then per-query scoring."""
        pipeline = self._pipeline
        graph = pipeline.flow_computer.graph
        window = queries[group[0]].interval
        union_key = frozenset(
            sloc_id
            for index in group
            for sloc_id in queries[index].query_slocations
        )

        ctx = pipeline.context(window, union_key, stats=group_stats)
        sequences = pipeline.fetch.run(ctx, iupt)
        entries = pipeline.presences(ctx, sequences)

        parent_cells = {
            sloc_id: graph.parent_cell(sloc_id) for sloc_id in union_key
        }

        kernel = pipeline.config.resolved_scoring_kernel
        matrix = None
        if kernel == "vectorized":
            # One matrix over the union of the group's query sets; every
            # query in the group scores against its own rows of it.
            matrix = PresenceMatrix(entries, sorted(union_key), parent_cells)

        for index in group:
            results[index] = score_query_over_entries(
                queries[index],
                entries,
                parent_cells,
                len(sequences),
                kernel=kernel,
                matrix=matrix,
            )
