"""Execution context threading state through the pipeline stages.

An :class:`ExecutionContext` is created once per query (or per batch group)
and handed to every stage.  It carries what a stage may need besides its
input: the mutable :class:`~repro.core.query.SearchStats` the caller wants
populated, and the identity of the computation — the query window, the query
S-location set, and the data version — which together form the cache key
space of the cross-query :class:`~repro.engine.cache.PresenceStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, TYPE_CHECKING

from ..core.query import SearchStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import PresenceStore


@dataclass
class ExecutionContext:
    """Per-query state shared by all pipeline stages.

    Attributes
    ----------
    window:
        The query interval ``(start, end)``.
    query_key:
        The query S-location set driving the (query-dependent) data
        reduction, or ``None`` when PSL pruning is disabled for this run.
    stats:
        The efficiency counters every stage reports into.
    store:
        The cross-query presence store, or ``None`` when caching is off.
    use_store:
        Per-context override letting a caller bypass the store without
        reconfiguring the engine (the naive algorithm's per-location flow
        calls stay cacheable, but e.g. ground-truth checks can opt out).
    data_key:
        The :meth:`~repro.data.iupt.IUPT.data_key_for` token of the table
        state this query's window reads; set by
        :class:`~repro.engine.stages.FetchStage` and included in every store
        key so cached artefacts die with the (shard-scoped, on a sharded
        store) table state they were computed from.
    pinned_data_key:
        When set, :class:`~repro.engine.stages.FetchStage` adopts this token
        instead of re-deriving one from the table.  The continuous-query
        subsystem pins each refresh to the exact token it based its
        skip/re-key decision on, so the artefacts the scoring pass reads are
        guaranteed to be the ones that decision re-keyed.
    """

    window: Tuple[float, float]
    query_key: Optional[FrozenSet[int]]
    stats: SearchStats = field(default_factory=SearchStats)
    store: Optional["PresenceStore"] = None
    use_store: bool = True
    data_key: Optional[Tuple] = None
    pinned_data_key: Optional[Tuple] = None

    @property
    def start(self) -> float:
        return self.window[0]

    @property
    def end(self) -> float:
        return self.window[1]

    @property
    def effective_store(self) -> Optional["PresenceStore"]:
        return self.store if self.use_store else None

    def query_set(self) -> Optional[set]:
        """The query key as the mutable set expected by ``DataReducer.reduce``."""
        return None if self.query_key is None else set(self.query_key)
