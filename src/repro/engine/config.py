"""Configuration of the query execution engine.

:class:`EngineConfig` gathers every knob of the execution-engine layer in one
immutable object so that callers (and experiments) can describe *how* queries
are executed independently of *what* is computed:

``executor``
    ``"serial"`` (default) runs every per-object presence computation inline;
    ``"thread"`` fans the computations out over a thread pool (useful when the
    per-object work releases the GIL or performs I/O); ``"process"`` uses a
    process pool for CPU-bound fan-out (the indoor model is pickled to the
    workers once per chunk, so it only pays off for large object populations).
``max_workers``
    Pool size for the parallel executors; ``None`` lets
    :mod:`concurrent.futures` pick its default.
``parallel_threshold``
    Minimum number of per-object computations in one stage invocation before
    the engine bothers fanning out; below it the serial path is used even when
    a parallel executor is configured.
``presence_store_capacity``
    Bound of the cross-query :class:`~repro.engine.cache.PresenceStore` (LRU
    entries).  ``0`` disables cross-query caching entirely, which reproduces
    the pre-engine behaviour where every query starts cold.
``shard_scoped_cache_keys``
    Whether the fetch stage keys cached presences by the *window-scoped*
    :meth:`~repro.data.iupt.IUPT.data_key_for` token (default).  On a
    sharded table that means streaming a batch in only invalidates cached
    presences whose query windows overlap the touched shards; disabling it
    keys by the whole-table version (the seed's invalidate-everything
    behaviour, kept for the invalidation-granularity benchmark).
``continuous_refresh``
    How the continuous-query subsystem maintains standing results after each
    ingested batch: ``"incremental"`` (default) skips subscriptions whose
    window token is unchanged and re-keys the cached presences of objects
    the batch did not touch, so only actually-changed objects are
    recomputed; ``"recompute"`` re-answers every standing query from the
    (invalidated) cache on every event — the pre-continuous behaviour a
    polling client would get, kept for the refresh-strategy benchmark.
``scoring_kernel``
    Which accumulation kernel sums per-object presences into flows:
    ``"scalar"`` is the per-entry Python loop, ``"vectorized"`` builds a
    :class:`~repro.codec.kernels.PresenceMatrix` once per window group and
    reduces contiguous arrays (bit-identical flows and rankings, asserted
    by the differential tests).  ``"auto"`` (default) picks vectorized when
    the codec's numpy backend is active and scalar on the pure-Python
    fallback, where the matrix build would cost more than it saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

EXECUTOR_KINDS = ("serial", "thread", "process")

CONTINUOUS_REFRESH_KINDS = ("incremental", "recompute")

SCORING_KERNEL_KINDS = ("auto", "scalar", "vectorized")


@dataclass(frozen=True)
class EngineConfig:
    """Immutable description of how the execution engine runs queries."""

    executor: str = "serial"
    max_workers: Optional[int] = None
    parallel_threshold: int = 8
    presence_store_capacity: int = 4096
    shard_scoped_cache_keys: bool = True
    continuous_refresh: str = "incremental"
    scoring_kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTOR_KINDS}"
            )
        if self.continuous_refresh not in CONTINUOUS_REFRESH_KINDS:
            raise ValueError(
                f"unknown continuous refresh {self.continuous_refresh!r}; "
                f"expected one of {CONTINUOUS_REFRESH_KINDS}"
            )
        if self.scoring_kernel not in SCORING_KERNEL_KINDS:
            raise ValueError(
                f"unknown scoring kernel {self.scoring_kernel!r}; "
                f"expected one of {SCORING_KERNEL_KINDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1 (or None for the default)")
        if self.parallel_threshold < 0:
            raise ValueError("parallel_threshold must be non-negative")
        if self.presence_store_capacity < 0:
            raise ValueError("presence_store_capacity must be non-negative")

    @property
    def is_parallel(self) -> bool:
        return self.executor != "serial"

    @property
    def caching_enabled(self) -> bool:
        return self.presence_store_capacity > 0

    @property
    def resolved_scoring_kernel(self) -> str:
        """``"scalar"`` or ``"vectorized"``, with ``"auto"`` resolved against
        the codec's active backend (vectorized only pays off on numpy)."""
        if self.scoring_kernel != "auto":
            return self.scoring_kernel
        from ..codec import active_backend

        return "vectorized" if active_backend() == "numpy" else "scalar"

    @staticmethod
    def serial() -> "EngineConfig":
        """The default configuration: inline execution, caching on."""
        return EngineConfig()

    @staticmethod
    def parallel(
        max_workers: Optional[int] = None, kind: str = "thread"
    ) -> "EngineConfig":
        """A parallel configuration fanning per-object work over a pool."""
        return EngineConfig(executor=kind, max_workers=max_workers)

    @staticmethod
    def uncached() -> "EngineConfig":
        """Serial execution without the cross-query presence store."""
        return EngineConfig(presence_store_capacity=0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "parallel_threshold": self.parallel_threshold,
            "presence_store_capacity": self.presence_store_capacity,
            "shard_scoped_cache_keys": self.shard_scoped_cache_keys,
            "continuous_refresh": self.continuous_refresh,
            "scoring_kernel": self.scoring_kernel,
        }
