"""The staged query pipeline.

``Flow(q, tree, [ts, te])`` (Algorithm 2) decomposes into four composable
stages, each reporting into the :class:`ExecutionContext` it is given:

* :class:`FetchStage` — time-index window retrieval (``tree.RangeQuery``);
* :class:`ReduceStage` — the data reduction of Algorithm 1;
* :class:`PathStage` — valid possible-path construction (Equations 1-2);
* :class:`PresenceStage` — the cache-aware composition of the two above,
  producing the per-object :class:`~repro.engine.cache.StoredPresence`
  artefact shared across query locations, across queries (through the
  :class:`~repro.engine.cache.PresenceStore`), and across batched queries.

:class:`QueryPipeline` wires the stages to a
:class:`~repro.core.flow.FlowComputer` (the home of the reduction and path
primitives), an optional presence store, and an executor that can fan the
per-object work of :meth:`QueryPipeline.presences` out across workers.  The
three TkPLQ algorithms, ``FlowComputer.flow``/``flows_for_all``, and the
:class:`~repro.engine.batch.BatchPlanner` are all thin drivers over this
pipeline.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from ..core.query import SearchStats
from ..core.reduction import ReducedSequence
from ..data.iupt import IUPT
from ..data.records import SampleSet
from .cache import PresenceStore, StoredPresence
from .config import EngineConfig
from .context import ExecutionContext
from .executors import SerialExecutor, make_executor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.flow import FlowComputer, FlowResult, ObjectComputationCache


class FetchStage:
    """Stage 1: retrieve the window's per-object sequences from the time index.

    Also pins the context to the table's data key, so every later store
    access of this context is keyed to the exact table state the sequences
    were fetched from.  With ``shard_scoped_keys`` (the default) the key is
    the *window-scoped* :meth:`~repro.data.iupt.IUPT.data_key_for` token: on
    a sharded store it only covers the shards the window overlaps, so
    ingesting a batch elsewhere leaves this context's cached presences
    valid.  Disabling it falls back to the whole-table
    :attr:`~repro.data.iupt.IUPT.data_key` (the seed's invalidate-everything
    behaviour, kept for the invalidation-granularity benchmark).
    """

    def __init__(self, shard_scoped_keys: bool = True):
        self._shard_scoped_keys = shard_scoped_keys

    def run(self, ctx: ExecutionContext, iupt: IUPT) -> Dict[int, List[SampleSet]]:
        if ctx.pinned_data_key is not None:
            ctx.data_key = ctx.pinned_data_key
        elif self._shard_scoped_keys:
            ctx.data_key = iupt.data_key_for(ctx.start, ctx.end)
        else:
            ctx.data_key = iupt.data_key
        sequences = iupt.sequences_in(ctx.start, ctx.end)
        ctx.stats.note_objects_total(len(sequences))
        return sequences


class ReduceStage:
    """Stage 2: Algorithm 1 (``ReduceData``) against the context's query set."""

    def __init__(self, flow_computer: "FlowComputer"):
        self._computer = flow_computer

    def run(
        self, ctx: ExecutionContext, sequence: Sequence[SampleSet]
    ) -> ReducedSequence:
        return self._computer.reducer.reduce(
            sequence, ctx.query_set(), ctx.stats.reduction_stats
        )


class PathStage:
    """Stage 3: construct the valid possible paths of one reduced sequence."""

    def __init__(self, flow_computer: "FlowComputer"):
        self._computer = flow_computer

    def run(self, ctx: ExecutionContext, sequence: Sequence[SampleSet]):
        return self._computer.presence_computation(sequence, ctx.stats)


class _PresenceTask:
    """One object's reduce → path-construct work as a picklable callable.

    Each invocation collects its counters into a private ``SearchStats`` so
    the task can run on any executor (including process pools, where shared
    mutable state is unavailable); the caller merges the deltas back in input
    order, keeping the accounting deterministic.
    """

    def __init__(
        self,
        flow_computer: "FlowComputer",
        query_key: Optional[FrozenSet[int]],
        build_paths: bool,
    ):
        self._computer = flow_computer
        self._query_key = query_key
        self._build_paths = build_paths

    def __call__(
        self,
        payload: Tuple[int, Sequence[SampleSet], Optional[StoredPresence]],
    ) -> Tuple[StoredPresence, SearchStats]:
        object_id, sequence, entry = payload
        delta = SearchStats()
        if entry is None:
            reduced = self._computer.reducer.reduce(
                sequence,
                None if self._query_key is None else set(self._query_key),
                delta.reduction_stats,
            )
            entry = StoredPresence(
                psls=reduced.psls, sequence=reduced.sequence, pruned=reduced.pruned
            )
        if self._build_paths and not entry.pruned and entry.computation is None:
            entry.computation = self._computer.presence_computation(
                entry.sequence, delta
            )
            delta.note_object_computed(object_id)
        return entry, delta


def accumulate_flows_over_entries(
    entries: Sequence[Tuple[int, StoredPresence]],
    sloc_ids: Sequence[int],
    parent_cells: Dict[int, Optional[int]],
    stats: SearchStats,
    kernel: str = "scalar",
) -> Dict[int, float]:
    """Sum per-location flows over per-object artefacts, in entry order.

    The accumulation kernel of :meth:`QueryPipeline.flows_for_all`, shared
    with the continuous-query subsystem: the bit-for-bit equivalence of a
    standing flow result and a fresh ``flows_for_all`` hangs on both summing
    the same per-object presence values in the same (fetch) order.

    ``kernel="vectorized"`` reduces a
    :class:`~repro.codec.kernels.PresenceMatrix` instead of looping —
    bit-identical flows and ``flow_evaluations`` (asserted by the
    differential tests in ``tests/test_codec.py``).
    """
    if kernel == "vectorized":
        from ..codec.kernels import PresenceMatrix

        matrix = PresenceMatrix(entries, sloc_ids, parent_cells)
        flows, evaluations = matrix.accumulate_flows(sloc_ids)
        stats.flow_evaluations += evaluations
        return flows
    flows: Dict[int, float] = {sloc_id: 0.0 for sloc_id in sloc_ids}
    for _object_id, entry in entries:
        if entry.pruned:
            continue
        for sloc_id in sloc_ids:
            if sloc_id in entry.psls:
                stats.flow_evaluations += 1
                flows[sloc_id] += entry.computation.presence_in_cell(
                    parent_cells[sloc_id]
                )
    return flows


def _needs_work(entry: Optional[StoredPresence], build_paths: bool) -> bool:
    """Whether a (possibly cached) artefact still requires stage work.

    Shared by the single-object :class:`PresenceStage` and the bulk
    :meth:`QueryPipeline.presences` so the caching predicate cannot diverge.
    """
    return entry is None or (
        build_paths and not entry.pruned and entry.computation is None
    )


class PresenceStage:
    """Stage 4: cache-aware per-object presence (reduce + paths + store)."""

    def __init__(self, flow_computer: "FlowComputer"):
        self._computer = flow_computer

    def run(
        self,
        ctx: ExecutionContext,
        object_id: int,
        sequence: Sequence[SampleSet],
        build_paths: bool = True,
        entry: Optional[StoredPresence] = None,
        probe: bool = True,
    ) -> StoredPresence:
        """One object's artefact; pass ``probe=False`` (with ``entry``) when
        the caller already consulted the store for this key."""
        store = ctx.effective_store
        if probe and entry is None and store is not None:
            entry = store.get(
                object_id, ctx.window, ctx.query_key, data_key=ctx.data_key
            )
        if _needs_work(entry, build_paths):
            task = _PresenceTask(self._computer, ctx.query_key, build_paths)
            entry, delta = task((object_id, sequence, entry))
            ctx.stats.merge(delta)
            if store is not None:
                store.put(
                    object_id, ctx.window, ctx.query_key, entry, data_key=ctx.data_key
                )
        return entry


class QueryPipeline:
    """Fetch → reduce → paths → presence, with caching and fan-out.

    Parameters
    ----------
    flow_computer:
        The owner of the reduction and path-construction primitives.
    store:
        Optional cross-query presence store shared by every context this
        pipeline creates.
    config:
        Engine configuration; its ``executor`` settings decide whether
        :meth:`presences` fans per-object work out across workers.
    """

    def __init__(
        self,
        flow_computer: "FlowComputer",
        store: Optional[PresenceStore] = None,
        config: Optional[EngineConfig] = None,
    ):
        self._computer = flow_computer
        self._store = store
        self._config = config or EngineConfig()
        self._executor = make_executor(self._config)
        self.fetch = FetchStage(self._config.shard_scoped_cache_keys)
        self.reduce = ReduceStage(flow_computer)
        self.paths = PathStage(flow_computer)
        self.presence = PresenceStage(flow_computer)

    @property
    def flow_computer(self) -> "FlowComputer":
        return self._computer

    @property
    def store(self) -> Optional[PresenceStore]:
        return self._store

    @property
    def config(self) -> EngineConfig:
        return self._config

    def close(self) -> None:
        """Release the executor's worker pool (if any)."""
        self._executor.close()

    # ------------------------------------------------------------------
    # Contexts
    # ------------------------------------------------------------------
    def context(
        self,
        window: Tuple[float, float],
        query_slocations: Optional[Iterable[int]],
        stats: Optional[SearchStats] = None,
        use_store: bool = True,
    ) -> ExecutionContext:
        """Create the execution context of one query over this pipeline."""
        return ExecutionContext(
            window=(float(window[0]), float(window[1])),
            query_key=(
                None if query_slocations is None else frozenset(query_slocations)
            ),
            stats=stats if stats is not None else SearchStats(),
            store=self._store,
            use_store=use_store,
        )

    # ------------------------------------------------------------------
    # Bulk per-object presence (the fan-out point)
    # ------------------------------------------------------------------
    def presences(
        self,
        ctx: ExecutionContext,
        sequences: Dict[int, List[SampleSet]],
        build_paths: bool = True,
        legacy_cache: Optional["ObjectComputationCache"] = None,
    ) -> List[Tuple[int, StoredPresence]]:
        """Per-object presence artefacts for a whole window, in fetch order.

        Probes the per-query ``legacy_cache`` (if given) and the cross-query
        store in the calling thread, then computes the misses — serially, or
        across the configured executor when at least ``parallel_threshold``
        objects need work.  Results and statistics are merged back in input
        order, so flows accumulated from the returned list are bit-for-bit
        identical whichever executor ran the work.
        """
        items = list(sequences.items())
        entries: List[Optional[StoredPresence]] = [None] * len(items)
        pending: List[int] = []
        store = ctx.effective_store

        for index, (object_id, _sequence) in enumerate(items):
            entry = None
            if legacy_cache is not None:
                entry = legacy_cache.get(object_id, ctx.query_key)
            if entry is None and store is not None:
                entry = store.get(
                    object_id, ctx.window, ctx.query_key, data_key=ctx.data_key
                )
            entries[index] = entry
            if _needs_work(entry, build_paths):
                pending.append(index)

        parallel = (
            self._config.is_parallel
            and len(pending) >= self._config.parallel_threshold
        )
        if parallel:
            # Fan the miss computations out; results and their stat deltas
            # are merged back in input order (deterministic accumulation).
            task = _PresenceTask(self._computer, ctx.query_key, build_paths)
            payloads = [
                (items[index][0], items[index][1], entries[index])
                for index in pending
            ]
            outcomes = self._executor.map(task, payloads)
            for index, (entry, delta) in zip(pending, outcomes):
                ctx.stats.merge(delta)
                entries[index] = entry
                if store is not None:
                    store.put(
                        items[index][0],
                        ctx.window,
                        ctx.query_key,
                        entry,
                        data_key=ctx.data_key,
                    )
        else:
            for index in pending:
                object_id, sequence = items[index]
                entries[index] = self.presence.run(
                    ctx,
                    object_id,
                    sequence,
                    build_paths,
                    entry=entries[index],
                    probe=False,
                )
        if legacy_cache is not None:
            for index in pending:
                legacy_cache.put(items[index][0], entries[index], ctx.query_key)

        return [
            (object_id, entry)
            for (object_id, _sequence), entry in zip(items, entries)
        ]

    def build_paths_for(
        self, ctx: ExecutionContext, object_id: int, entry: StoredPresence
    ) -> StoredPresence:
        """Fill in the lazily deferred path construction of one artefact.

        Used by the best-first algorithm, which reduces every object up front
        but only constructs paths for the candidates its guided join visits.
        The enriched artefact is refreshed in the store so later queries skip
        the path construction too.
        """
        if not entry.pruned and entry.computation is None:
            entry.computation = self.paths.run(ctx, entry.sequence)
            ctx.stats.note_object_computed(object_id)
            store = ctx.effective_store
            if store is not None:
                store.put(
                    object_id, ctx.window, ctx.query_key, entry, data_key=ctx.data_key
                )
        return entry

    # ------------------------------------------------------------------
    # Algorithm 2, staged
    # ------------------------------------------------------------------
    def flow(
        self,
        ctx: ExecutionContext,
        iupt: IUPT,
        sloc_id: int,
        legacy_cache: Optional["ObjectComputationCache"] = None,
    ) -> "FlowResult":
        """The indoor flow of one S-location, run through the staged pipeline."""
        from ..core.flow import FlowResult  # deferred: core.flow drives this module

        began = time.perf_counter()
        cell_id = self._computer.graph.parent_cell(sloc_id)
        sequences = self.fetch.run(ctx, iupt)

        flow_value = 0.0
        for _object_id, entry in self.presences(
            ctx, sequences, build_paths=True, legacy_cache=legacy_cache
        ):
            if entry.pruned:
                continue
            ctx.stats.flow_evaluations += 1
            flow_value += entry.computation.presence_in_cell(cell_id)

        ctx.stats.elapsed_seconds += time.perf_counter() - began
        return FlowResult(sloc_id=sloc_id, flow=flow_value, stats=ctx.stats)

    def flows_for_all(
        self,
        iupt: IUPT,
        sloc_ids: Sequence[int],
        start: float,
        end: float,
        stats: Optional[SearchStats] = None,
    ) -> Dict[int, float]:
        """Flows of several S-locations sharing one per-object pass.

        Each object is reduced once against the *union* of the requested
        locations and its paths are constructed once; the per-location
        pruning decision is then taken from the object's possible semantic
        locations (``sloc ∈ PSLs``), exactly as an independent
        ``flow(sloc)`` call would have decided it.  This keeps the sharing
        of the historical ``flows_for_all`` without its hazard: no presence
        artefact is ever consulted under a query set other than the one it
        was reduced for.
        """
        ordered = list(dict.fromkeys(sloc_ids))
        union_key = frozenset(ordered)
        ctx = self.context((start, end), union_key, stats=stats)
        began = time.perf_counter()

        graph = self._computer.graph
        parent_cells = {sloc_id: graph.parent_cell(sloc_id) for sloc_id in ordered}
        sequences = self.fetch.run(ctx, iupt)

        flows = accumulate_flows_over_entries(
            self.presences(ctx, sequences),
            ordered,
            parent_cells,
            ctx.stats,
            kernel=self._config.resolved_scoring_kernel,
        )

        ctx.stats.elapsed_seconds += time.perf_counter() - began
        return flows
