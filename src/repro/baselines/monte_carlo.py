"""The MC (Monte Carlo) baseline (Section 5.1).

Each simulation round instantiates a *certain* version of the IUPT: every
positioning record keeps exactly one P-location, drawn according to the sample
probabilities.  On the certain records, the per-object path is unique; it is
kept only when it respects the indoor topology, and its pass probability with
respect to each query location contributes to that round's flow.  The final
ranking uses the mean flow over all rounds.

The paper uses hundreds (real data) to tens of thousands (synthetic data) of
rounds, which is why MC is orders of magnitude slower than the proposed
methods despite each round being cheap.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Set

from ..core.flow import FlowComputer
from ..core.paths import PossiblePath
from ..core.query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k
from ..data.iupt import IUPT
from ..data.records import SampleSet


class MonteCarlo:
    """The MC baseline: repeated certain-world simulation."""

    def __init__(
        self,
        flow_computer: FlowComputer,
        rounds: int = 200,
        seed: Optional[int] = None,
    ):
        if rounds < 1:
            raise ValueError("the number of simulation rounds must be positive")
        self._flow_computer = flow_computer
        self._rounds = rounds
        self._seed = seed
        self.name = f"mc({rounds})"

    @property
    def rounds(self) -> int:
        return self._rounds

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, iupt: IUPT, query: TkPLQuery) -> TkPLQResult:
        stats = SearchStats()
        began = time.perf_counter()
        rng = random.Random(self._seed)

        graph = self._flow_computer.graph
        matrix = self._flow_computer.matrix
        query_set = list(query.query_slocations)
        parent_cells = {
            sloc_id: graph.parent_cell(sloc_id) for sloc_id in query_set
        }

        sequences = iupt.sequences_in(query.start, query.end)
        stats.objects_total = len(sequences)
        for object_id in sequences:
            stats.note_object_computed(object_id)

        totals: Dict[int, float] = {sloc_id: 0.0 for sloc_id in query_set}
        for _ in range(self._rounds):
            round_flows = self._simulate_round(sequences, parent_cells, matrix, rng)
            for sloc_id, value in round_flows.items():
                totals[sloc_id] += value

        flows = {sloc_id: value / self._rounds for sloc_id, value in totals.items()}
        stats.elapsed_seconds = time.perf_counter() - began
        return TkPLQResult(
            query=query,
            ranking=rank_top_k(flows, query.k),
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    # One simulation round
    # ------------------------------------------------------------------
    def _simulate_round(
        self,
        sequences: Dict[int, List[SampleSet]],
        parent_cells: Dict[int, Optional[int]],
        matrix,
        rng: random.Random,
    ) -> Dict[int, float]:
        flows: Dict[int, float] = {sloc_id: 0.0 for sloc_id in parent_cells}
        for object_id in sorted(sequences):
            path = self._sample_certain_path(sequences[object_id], matrix, rng)
            if path is None:
                continue
            for sloc_id, cell_id in parent_cells.items():
                if cell_id is None:
                    continue
                flows[sloc_id] += path.pass_probability(cell_id)
        return flows

    def _sample_certain_path(
        self, sequence: Sequence[SampleSet], matrix, rng: random.Random
    ) -> Optional[PossiblePath]:
        """Draw one certain path, keeping only its topologically valid steps.

        Every record is instantiated to a single P-location; instantiated
        locations that cannot be reached from the previous kept location
        (``MIL = ∅``) are dropped, so the retained subsequence always forms a
        valid path.  Returns ``None`` only when nothing can be kept.
        """
        drawn = [self._draw(sample_set, rng) for sample_set in sequence]
        if not drawn:
            return None
        locations: List[int] = [drawn[0]]
        step_cells: List = []
        for candidate in drawn[1:]:
            cells = matrix.cells_between(locations[-1], candidate)
            if not cells:
                continue
            locations.append(candidate)
            step_cells.append(cells)
        if not step_cells:
            step_cells = [matrix.cells_adjacent(locations[0])]
        return PossiblePath(
            plocations=tuple(locations),
            probability=1.0,
            step_cells=tuple(step_cells),
        )

    @staticmethod
    def _draw(sample_set: SampleSet, rng: random.Random) -> int:
        threshold = rng.random()
        cumulative = 0.0
        for sample in sample_set:
            cumulative += sample.prob
            if threshold <= cumulative:
                return sample.ploc_id
        return sample_set.samples[-1].ploc_id
