"""The SC and SC-ρ simple counting baselines (Section 5.1).

SC processes every positioning record independently: it keeps only the sample
with the highest probability and, if that sample's P-location lies inside a
query S-location, counts the object for that location.  SC-ρ keeps *all*
samples whose probability exceeds a threshold ρ.  Both variants:

* allow one P-location to be counted for several S-locations containing it;
* count an object at most once per S-location over the whole query interval
  (to stay comparable with the indoor flow definition).

They are fast — no paths are constructed — but ignore the indoor topology and
most of the probability mass, which is why the paper reports very low
effectiveness for them.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from ..core.query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k
from ..data.iupt import IUPT
from ..data.records import Sample
from ..space.floorplan import FloorPlan


class SimpleCounting:
    """The SC baseline; pass a ``threshold`` to obtain SC-ρ."""

    def __init__(self, plan: FloorPlan, threshold: Optional[float] = None):
        if threshold is not None and not (0.0 <= threshold < 1.0):
            raise ValueError("the SC-ρ threshold must be in [0, 1)")
        self._plan = plan.freeze()
        self._threshold = threshold
        self.name = "sc" if threshold is None else f"sc-rho({threshold})"

    @property
    def threshold(self) -> Optional[float]:
        return self._threshold

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, iupt: IUPT, query: TkPLQuery) -> TkPLQResult:
        stats = SearchStats()
        began = time.perf_counter()
        query_set = set(query.query_slocations)

        # counted[sloc_id] is the set of objects already counted there.
        counted: Dict[int, Set[int]] = {sloc_id: set() for sloc_id in query_set}
        seen_objects: Set[int] = set()

        for record in iupt.range_query(query.start, query.end):
            seen_objects.add(record.object_id)
            for sample in self._picked_samples(record.sample_set):
                for sloc_id in self._slocations_of_sample(sample):
                    if sloc_id in query_set:
                        counted[sloc_id].add(record.object_id)

        flows = {sloc_id: float(len(objects)) for sloc_id, objects in counted.items()}
        stats.objects_total = len(seen_objects)
        stats.objects_computed = len(seen_objects)
        stats.elapsed_seconds = time.perf_counter() - began
        return TkPLQResult(
            query=query,
            ranking=rank_top_k(flows, query.k),
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _picked_samples(self, sample_set):
        if self._threshold is None:
            return [sample_set.most_probable()]
        return sample_set.above_threshold(self._threshold)

    def _slocations_of_sample(self, sample: Sample):
        ploc = self._plan.plocations.get(sample.ploc_id)
        if ploc is None:
            return []
        return self._plan.slocations_containing(ploc.position)
