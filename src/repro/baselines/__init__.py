"""Comparison baselines: SC / SC-ρ, MC, SCC, and UR."""

from .monte_carlo import MonteCarlo
from .scc import SemiConstrainedCounting
from .simple_counting import SimpleCounting
from .uncertainty_region import UncertaintyRegionFlow

__all__ = [
    "MonteCarlo",
    "SemiConstrainedCounting",
    "SimpleCounting",
    "UncertaintyRegionFlow",
]
