"""The SCC (semi-constrained counting) RFID baseline (Section 5.3.3).

Ahmed et al.'s dense-location method assumes a *semi-constrained* indoor
environment where every semantic location has a dedicated entry and exit, each
monitored by an RFID reader, so objects entering a location can be counted
exactly.  In a general indoor space that assumption breaks: readers are placed
at doors, detection ranges must not overlap, and some doors end up without a
reader — objects slipping through those doors are never counted, which is the
failure mode the paper's Table 7 exposes as ``|Q|`` grows.

The reimplementation counts, per query S-location, the distinct objects
detected during the query window by readers deployed at that location's doors.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set

from ..core.query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k
from ..data.rfid import RFIDTable
from ..space.floorplan import FloorPlan


class SemiConstrainedCounting:
    """The SCC baseline over RFID tracking records."""

    name = "scc"

    def __init__(self, plan: FloorPlan, rfid: RFIDTable):
        self._plan = plan.freeze()
        self._rfid = rfid
        self._readers_by_slocation = self._map_readers_to_slocations()

    # ------------------------------------------------------------------
    # Deployment mapping
    # ------------------------------------------------------------------
    def _map_readers_to_slocations(self) -> Dict[int, Set[int]]:
        """Map each S-location to the readers guarding its doors.

        An S-location inherits the readers of the doors of the partition(s)
        its region overlaps; door readers carry a ``door_id`` assigned by the
        deployment simulator.
        """
        readers_by_door: Dict[int, Set[int]] = {}
        for reader in self._rfid.readers.values():
            if reader.door_id is not None:
                readers_by_door.setdefault(reader.door_id, set()).add(reader.reader_id)

        mapping: Dict[int, Set[int]] = {}
        for sloc in self._plan.slocations.values():
            readers: Set[int] = set()
            for partition in self._plan.partitions.values():
                if not partition.rect.intersects(sloc.region):
                    continue
                if partition.rect.intersection_area(sloc.region) <= 0.0:
                    continue
                for door in self._plan.doors_of_partition(partition.partition_id):
                    readers |= readers_by_door.get(door.door_id, set())
            mapping[sloc.sloc_id] = readers
        return mapping

    def readers_of(self, sloc_id: int) -> Set[int]:
        """The readers associated with one S-location (exposed for tests)."""
        return set(self._readers_by_slocation.get(sloc_id, set()))

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: TkPLQuery) -> TkPLQResult:
        stats = SearchStats()
        began = time.perf_counter()
        query_set = set(query.query_slocations)

        records = self._rfid.records_in(query.start, query.end)
        objects_by_reader: Dict[int, Set[int]] = {}
        seen_objects: Set[int] = set()
        for record in records:
            objects_by_reader.setdefault(record.reader_id, set()).add(record.object_id)
            seen_objects.add(record.object_id)

        flows: Dict[int, float] = {}
        for sloc_id in query_set:
            counted: Set[int] = set()
            for reader_id in self._readers_by_slocation.get(sloc_id, set()):
                counted |= objects_by_reader.get(reader_id, set())
            flows[sloc_id] = float(len(counted))

        stats.objects_total = len(seen_objects)
        stats.objects_computed = len(seen_objects)
        stats.elapsed_seconds = time.perf_counter() - began
        return TkPLQResult(
            query=query,
            ranking=rank_top_k(flows, query.k),
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )
