"""The UR (uncertainty region) RFID baseline (Section 5.3.3).

Lu et al.'s frequently-visited-POI method derives, for each pair of
consecutive RFID detections of an object, an uncertainty region covering every
position the object may have occupied in between.  With readers deployed at
doors, the region is an ellipse whose foci are the two reader positions and
whose major axis is the maximum distance the object could have walked in the
elapsed time (bounded below by the straight-line distance between the
readers).  The flow of an indoor location is accumulated from the overlap of
the location with each object's uncertainty regions.

The paper observes that door-mounted readers always produce large ellipses, so
UR tends to spread flow across neighbouring locations — the behaviour this
reimplementation reproduces.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k
from ..data.rfid import RFIDRecord, RFIDTable
from ..geometry import Ellipse
from ..space.floorplan import FloorPlan


class UncertaintyRegionFlow:
    """The UR baseline over RFID tracking records."""

    name = "ur"

    def __init__(
        self,
        plan: FloorPlan,
        rfid: RFIDTable,
        max_speed: float = 1.0,
        minimum_axis: float = 1.0,
    ):
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        self._plan = plan.freeze()
        self._rfid = rfid
        self._max_speed = max_speed
        self._minimum_axis = minimum_axis

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: TkPLQuery) -> TkPLQResult:
        stats = SearchStats()
        began = time.perf_counter()
        query_set = list(query.query_slocations)

        by_object = self._rfid.records_by_object(query.start, query.end)
        stats.objects_total = len(by_object)

        flows: Dict[int, float] = {sloc_id: 0.0 for sloc_id in query_set}
        for object_id, records in sorted(by_object.items()):
            stats.note_object_computed(object_id)
            regions = self._uncertainty_regions(records)
            if not regions:
                continue
            for sloc_id in query_set:
                presence = self._presence(sloc_id, regions)
                flows[sloc_id] += presence

        stats.elapsed_seconds = time.perf_counter() - began
        return TkPLQResult(
            query=query,
            ranking=rank_top_k(flows, query.k),
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    # Region construction and scoring
    # ------------------------------------------------------------------
    def _uncertainty_regions(self, records: List[RFIDRecord]) -> List[Ellipse]:
        regions: List[Ellipse] = []
        for previous, current in zip(records, records[1:]):
            region = self._region_between(previous, current)
            if region is not None:
                regions.append(region)
        if not regions and records:
            # A single detection: the uncertainty region degenerates to the
            # reader's neighbourhood, modelled as a small circle-like ellipse.
            reader = self._rfid.readers.get(records[0].reader_id)
            if reader is not None:
                regions.append(
                    Ellipse(
                        reader.position,
                        reader.position,
                        max(2.0 * reader.detection_range, self._minimum_axis),
                    )
                )
        return regions

    def _region_between(
        self, previous: RFIDRecord, current: RFIDRecord
    ) -> Optional[Ellipse]:
        reader_a = self._rfid.readers.get(previous.reader_id)
        reader_b = self._rfid.readers.get(current.reader_id)
        if reader_a is None or reader_b is None:
            return None
        if reader_a.position.floor != reader_b.position.floor:
            return None
        elapsed = max(current.ts - previous.te, 0.0)
        reachable = self._max_speed * elapsed
        axis = max(
            reachable,
            reader_a.position.distance_to(reader_b.position),
            self._minimum_axis,
        )
        return Ellipse(reader_a.position, reader_b.position, axis)

    def _presence(self, sloc_id: int, regions: List[Ellipse]) -> float:
        """The object's presence estimate for one S-location.

        The contribution of each uncertainty region is the fraction of the
        region overlapping the S-location; contributions are summed and capped
        at 1 so the value stays comparable with the paper's object presence.
        """
        sloc = self._plan.slocations.get(sloc_id)
        if sloc is None:
            return 0.0
        total = 0.0
        for region in regions:
            if region.area <= 0.0:
                continue
            overlap = region.intersection_area_with_rect(sloc.region, resolution=8)
            if overlap > 0.0:
                total += overlap / region.area
            if total >= 1.0:
                return 1.0
        return min(total, 1.0)
