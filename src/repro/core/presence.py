"""Object presence and pass probability (Section 2.3, Equations 1 and 2).

The *object presence* ``Φ_{ts,te}(q, o)`` of object ``o`` in S-location ``q``
is the normalised expectation, over all valid possible paths of ``o`` in the
query window, of the probability that the path passes ``q``'s parent cell:

    Φ(q, o) = Σ_i (pr_{φi→q} · pr_i) / Σ_i pr_i

Presence is always in ``[0, 1]``; summing presences over the object set gives
the indoor flow of ``q`` (Definition 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .paths import PossiblePath, total_probability


@dataclass
class PresenceComputation:
    """The reusable per-object artefact shared across query S-locations.

    Holds the valid possible paths and their total probability; evaluating the
    presence for a specific parent cell is then a cheap scan over the paths.
    The nested-loop and best-first algorithms build this once per object and
    reuse it for every query location the object is relevant to, which is the
    "intermediate result sharing" of Section 4.1.

    ``candidate_mass`` is the denominator of Equation 1.  The paper's worked
    Example 3 (Φ(r6, o2) = 0.85) divides by the total probability mass of the
    *candidate* paths — which is 1 because each sample set's probabilities sum
    to one — so that mass lost to topologically invalid candidates lowers the
    presence.  When ``candidate_mass`` is omitted the valid-path mass is used
    instead (the literal reading of Algorithm 2), which only matters for
    callers constructing the object directly.
    """

    paths: Sequence[PossiblePath]
    candidate_mass: Optional[float] = None
    _normaliser: float = field(init=False)
    _cache: Dict[int, float] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.candidate_mass is not None and self.candidate_mass > 0.0:
            self._normaliser = self.candidate_mass
        else:
            self._normaliser = total_probability(self.paths)

    @property
    def path_count(self) -> int:
        return len(self.paths)

    @property
    def normaliser(self) -> float:
        return self._normaliser

    def presence_in_cell(self, cell_id: Optional[int]) -> float:
        """Return Φ(q, o) for a query location whose parent cell is ``cell_id``."""
        if cell_id is None or not self.paths or self._normaliser <= 0.0:
            return 0.0
        cached = self._cache.get(cell_id)
        if cached is not None:
            return cached
        weighted = 0.0
        for path in self.paths:
            pass_probability = path.pass_probability(cell_id)
            if pass_probability > 0.0:
                weighted += pass_probability * path.probability
        presence = weighted / self._normaliser
        # Guard against floating-point drift; presence is ≤ 1 by construction.
        presence = min(presence, 1.0)
        self._cache[cell_id] = presence
        return presence

    def presence_in_cells(self, cell_ids: Iterable[int]) -> Dict[int, float]:
        """Vectorised convenience: presence for several parent cells at once."""
        return {cell_id: self.presence_in_cell(cell_id) for cell_id in cell_ids}

    def cells_with_positive_presence(self) -> List[int]:
        """Cells that at least one valid path can touch (positive presence)."""
        touched = set()
        for path in self.paths:
            touched |= path.cells_touched()
        return sorted(touched)


def object_presence(
    paths: Sequence[PossiblePath], cell_id: Optional[int]
) -> float:
    """One-shot helper computing Φ(q, o) from pre-built paths.

    Prefer :class:`PresenceComputation` when several S-locations are evaluated
    against the same object.
    """
    return PresenceComputation(paths).presence_in_cell(cell_id)
