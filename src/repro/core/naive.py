"""The naive TkPLQ algorithm (Section 4, introduction).

The naive algorithm simply calls the single-location flow computation
(Algorithm 2) once per query S-location and ranks the results.  It is correct
but repeats work: an object that contributes to several query locations has
its samples reduced and its possible paths constructed once *per location*.
The nested-loop and best-first algorithms remove exactly this redundancy.
"""

from __future__ import annotations

import time
from typing import Dict

from ..data.iupt import IUPT
from .flow import FlowComputer
from .query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k


class NaiveTkPLQ:
    """Answer TkPLQ by independent per-location flow computations."""

    name = "naive"

    def __init__(self, flow_computer: FlowComputer):
        self._flow_computer = flow_computer

    def search(self, iupt: IUPT, query: TkPLQuery) -> TkPLQResult:
        """Compute the flow of every query location independently and rank."""
        stats = SearchStats()
        began = time.perf_counter()

        flows: Dict[int, float] = {}
        for sloc_id in query.query_slocations:
            # Deliberately no shared per-query cache: every call re-reduces
            # and re-constructs the paths of every relevant object.  (Each
            # per-location flow runs through the staged pipeline, whose
            # cross-query store keys by location set — so distinct locations
            # never share work here either.)
            result = self._flow_computer.flow(
                iupt, sloc_id, query.start, query.end, cache=None, stats=stats
            )
            flows[sloc_id] = result.flow

        stats.elapsed_seconds = time.perf_counter() - began
        return TkPLQResult(
            query=query,
            ranking=rank_top_k(flows, query.k),
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )
