"""The Nested-Loop TkPLQ algorithm (Algorithm 3).

Instead of iterating query locations in the outer loop (like the naive
algorithm), the nested-loop algorithm iterates objects in the outer loop: it
reduces each object's sequence *once* against the full query set, constructs
its valid possible paths *once*, and then scores every relevant query location
against those shared paths.  The per-object local scores are aggregated into
global flows and the top-k is obtained by a full ranking.

The per-object work (reduce → path construction) runs through the staged
pipeline of the execution engine, so it transparently benefits from the
cross-query presence store and the parallel executor when the computer is
owned by a :class:`~repro.engine.runtime.QueryEngine`.
"""

from __future__ import annotations

import time
from typing import Dict, Set

from ..data.iupt import IUPT
from .flow import FlowComputer
from .query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k


def score_presence_into_flows(
    entry,
    query_set: Set[int],
    parent_cells: Dict[int, int],
    flows: Dict[int, float],
    stats: SearchStats,
) -> None:
    """Score one object's presence artefact against a query's locations.

    The inner scoring kernel of Algorithm 3: only the query locations the
    object may actually have visited (its PSLs) are evaluated; all other
    locations receive zero presence.  Shared by :class:`NestedLoopTkPLQ` and
    the :class:`~repro.engine.batch.BatchPlanner`, whose bit-for-bit
    equivalence depends on both using exactly this kernel.
    """
    if entry.pruned:
        return
    relevant = entry.psls & query_set
    for sloc_id in relevant:
        cell_id = parent_cells.get(sloc_id)
        if cell_id is None:
            continue
        stats.flow_evaluations += 1
        flows[sloc_id] += entry.computation.presence_in_cell(cell_id)


class NestedLoopTkPLQ:
    """Answer TkPLQ with one pass over objects, sharing intermediate results."""

    name = "nested-loop"

    def __init__(self, flow_computer: FlowComputer):
        self._flow_computer = flow_computer

    def search(self, iupt: IUPT, query: TkPLQuery) -> TkPLQResult:
        stats = SearchStats()
        began = time.perf_counter()

        graph = self._flow_computer.graph
        query_set: Set[int] = set(query.query_slocations)
        parent_cells: Dict[int, int] = {}
        for sloc_id in query_set:
            cell_id = graph.parent_cell(sloc_id)
            if cell_id is not None:
                parent_cells[sloc_id] = cell_id

        pipeline = self._flow_computer.pipeline
        ctx = pipeline.context(query.interval, query_set, stats=stats)
        sequences = pipeline.fetch.run(ctx, iupt)

        flows: Dict[int, float] = {sloc_id: 0.0 for sloc_id in query.query_slocations}
        for _object_id, entry in pipeline.presences(ctx, sequences):
            score_presence_into_flows(entry, query_set, parent_cells, flows, stats)

        stats.elapsed_seconds = time.perf_counter() - began
        return TkPLQResult(
            query=query,
            ranking=rank_top_k(flows, query.k),
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )
