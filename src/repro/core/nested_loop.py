"""The Nested-Loop TkPLQ algorithm (Algorithm 3).

Instead of iterating query locations in the outer loop (like the naive
algorithm), the nested-loop algorithm iterates objects in the outer loop: it
reduces each object's sequence *once* against the full query set, constructs
its valid possible paths *once*, and then scores every relevant query location
against those shared paths.  The per-object local scores are aggregated into
global flows and the top-k is obtained by a full ranking.
"""

from __future__ import annotations

import time
from typing import Dict, Set

from ..data.iupt import IUPT
from .flow import FlowComputer, ObjectComputationCache
from .query import SearchStats, TkPLQResult, TkPLQuery, rank_top_k


class NestedLoopTkPLQ:
    """Answer TkPLQ with one pass over objects, sharing intermediate results."""

    name = "nested-loop"

    def __init__(self, flow_computer: FlowComputer):
        self._flow_computer = flow_computer

    def search(self, iupt: IUPT, query: TkPLQuery) -> TkPLQResult:
        stats = SearchStats()
        began = time.perf_counter()

        graph = self._flow_computer.graph
        query_set: Set[int] = set(query.query_slocations)
        parent_cells: Dict[int, int] = {}
        for sloc_id in query_set:
            cell_id = graph.parent_cell(sloc_id)
            if cell_id is not None:
                parent_cells[sloc_id] = cell_id

        sequences = iupt.sequences_in(query.start, query.end)
        stats.objects_total = len(sequences)

        flows: Dict[int, float] = {sloc_id: 0.0 for sloc_id in query.query_slocations}
        cache = ObjectComputationCache()

        for object_id in sorted(sequences):
            reduced = self._flow_computer.reduce_object(
                sequences[object_id], query_set, stats.reduction_stats
            )
            if reduced.pruned:
                continue
            computation = self._flow_computer.presence_computation(
                reduced.sequence, stats
            )
            cache.put(object_id, computation)
            stats.note_object_computed(object_id)

            # Score only the query locations the object may actually have
            # visited (its PSLs); all other locations receive zero presence.
            relevant = reduced.psls & query_set
            for sloc_id in relevant:
                cell_id = parent_cells.get(sloc_id)
                if cell_id is None:
                    continue
                stats.flow_evaluations += 1
                flows[sloc_id] += computation.presence_in_cell(cell_id)

        stats.elapsed_seconds = time.perf_counter() - began
        return TkPLQResult(
            query=query,
            ranking=rank_top_k(flows, query.k),
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )
