"""The data reduction method of Section 3.2 (Algorithm 1, ``ReduceData``).

Three co-operating reductions shrink the per-object work before any path is
constructed:

* **intra-merge** — inside one sample set, samples whose P-locations are
  equivalent (they refer to identical cell sets in the indoor location matrix)
  are merged into a single sample carrying the summed probability and the
  smallest P-location id.
* **inter-merge** — consecutive sample sets with identical P-location sets are
  collapsed into one set whose per-location probability is the mean of the
  originals, because they describe the same whereabouts over a dwell period.
* **PSL pruning** — the object's *possible semantic locations* are collected
  from the cells its reported P-locations touch; when none of them is in the
  query set the whole object is ruled out of the flow computation.

Each reduction can be toggled independently so the ``-ORG`` algorithm variants
of the evaluation (no data reduction) and finer ablations can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..data.records import Sample, SampleSet
from ..space.graph import IndoorSpaceLocationGraph
from ..space.matrix import IndoorLocationMatrix


@dataclass(frozen=True)
class DataReductionConfig:
    """Switches controlling which reductions are applied.

    ``enabled()`` is the paper's full reduction; ``disabled()`` reproduces the
    ``-ORG`` variants where the original positioning sequence is processed
    (PSL pruning is kept available separately because the best-first algorithm
    still derives PSLs for its object R-tree even in the ORG setting).
    """

    intra_merge: bool = True
    inter_merge: bool = True
    psl_pruning: bool = True

    @staticmethod
    def enabled() -> "DataReductionConfig":
        return DataReductionConfig(True, True, True)

    @staticmethod
    def disabled() -> "DataReductionConfig":
        return DataReductionConfig(False, False, False)

    @staticmethod
    def original_with_psls() -> "DataReductionConfig":
        """No merging, but PSLs still derived (used by BF-ORG)."""
        return DataReductionConfig(False, False, True)


@dataclass
class ReductionStats:
    """Counters describing the effect of the reduction over a whole query."""

    objects_seen: int = 0
    objects_pruned: int = 0
    sample_sets_before: int = 0
    sample_sets_after: int = 0
    samples_before: int = 0
    samples_after: int = 0
    candidate_paths_before: int = 0
    candidate_paths_after: int = 0

    def merge(self, other: "ReductionStats") -> None:
        """Fold another accumulator into this one (parallel-worker merging)."""
        self.objects_seen += other.objects_seen
        self.objects_pruned += other.objects_pruned
        self.sample_sets_before += other.sample_sets_before
        self.sample_sets_after += other.sample_sets_after
        self.samples_before += other.samples_before
        self.samples_after += other.samples_after
        self.candidate_paths_before += other.candidate_paths_before
        self.candidate_paths_after += other.candidate_paths_after

    def record(self, before: Sequence[SampleSet], after: Sequence[SampleSet]) -> None:
        self.sample_sets_before += len(before)
        self.sample_sets_after += len(after)
        self.samples_before += sum(len(s) for s in before)
        self.samples_after += sum(len(s) for s in after)
        self.candidate_paths_before += _candidate_count(before)
        self.candidate_paths_after += _candidate_count(after)

    def as_dict(self) -> Dict[str, int]:
        return {
            "objects_seen": self.objects_seen,
            "objects_pruned": self.objects_pruned,
            "sample_sets_before": self.sample_sets_before,
            "sample_sets_after": self.sample_sets_after,
            "samples_before": self.samples_before,
            "samples_after": self.samples_after,
            "candidate_paths_before": self.candidate_paths_before,
            "candidate_paths_after": self.candidate_paths_after,
        }


@dataclass(frozen=True)
class ReducedSequence:
    """The outcome of ``ReduceData`` for one object.

    ``pruned`` is True when the object's possible semantic locations do not
    overlap the query set, in which case ``sequence`` should not be used for
    flow computation (it corresponds to Algorithm 1 returning ``⟨null, null⟩``).
    """

    sequence: Tuple[SampleSet, ...]
    psls: frozenset
    pruned: bool

    @property
    def is_relevant(self) -> bool:
        return not self.pruned


def _candidate_count(sequence: Sequence[SampleSet]) -> int:
    total = 1
    for sample_set in sequence:
        total *= len(sample_set.plocation_set())
    return total if sequence else 0


class DataReducer:
    """Applies Algorithm 1 to per-object positioning sequences."""

    def __init__(
        self,
        graph: IndoorSpaceLocationGraph,
        matrix: IndoorLocationMatrix,
        config: DataReductionConfig = DataReductionConfig.enabled(),
    ):
        self._graph = graph
        self._matrix = matrix
        self._config = config

    @property
    def config(self) -> DataReductionConfig:
        return self._config

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def reduce(
        self,
        sequence: Sequence[SampleSet],
        query_slocations: Optional[Set[int]],
        stats: Optional[ReductionStats] = None,
    ) -> ReducedSequence:
        """Reduce one object's positioning sequence against a query set.

        Parameters
        ----------
        sequence:
            The object's time-ordered sample sets within the query window.
        query_slocations:
            The S-location ids of the query set ``Q``; ``None`` disables PSL
            pruning for this call (e.g. when computing flows for every
            location).
        stats:
            Optional accumulator describing the reduction across objects.
        """
        original = list(sequence)
        if stats is not None:
            stats.objects_seen += 1

        reduced: List[SampleSet] = []
        merge_buffer: List[SampleSet] = []
        psls: Set[int] = set()

        for sample_set in original:
            working = self._intra_merge(sample_set) if self._config.intra_merge else sample_set
            psls |= self._possible_slocations(working)

            if self._config.inter_merge:
                if merge_buffer and working.plocation_set() != merge_buffer[-1].plocation_set():
                    reduced.append(self._inter_merge(merge_buffer))
                    merge_buffer = []
                merge_buffer.append(working)
            else:
                reduced.append(working)

        if self._config.inter_merge and merge_buffer:
            reduced.append(self._inter_merge(merge_buffer))

        if stats is not None:
            stats.record(original, reduced)

        pruned = False
        if (
            self._config.psl_pruning
            and query_slocations is not None
            and not (psls & set(query_slocations))
        ):
            pruned = True
            if stats is not None:
                stats.objects_pruned += 1

        return ReducedSequence(
            sequence=tuple(reduced), psls=frozenset(psls), pruned=pruned
        )

    # ------------------------------------------------------------------
    # The two merge operations
    # ------------------------------------------------------------------
    def _intra_merge(self, sample_set: SampleSet) -> SampleSet:
        """Merge equivalent P-locations inside one sample set.

        Samples whose P-locations refer to the identical cell set are summed
        onto the representative with the smallest id (footnote 5 of the
        paper: "we keep the P-location with a smaller subscript").
        """
        grouped: Dict[frozenset, List[Sample]] = {}
        for sample in sample_set:
            key = self._matrix.cells_adjacent(sample.ploc_id)
            grouped.setdefault(key, []).append(sample)
        merged: List[Sample] = []
        for members in grouped.values():
            if len(members) == 1:
                merged.append(members[0])
                continue
            representative = min(member.ploc_id for member in members)
            probability = sum(member.prob for member in members)
            merged.append(Sample(representative, min(probability, 1.0)))
        return SampleSet(merged, normalise=True)

    @staticmethod
    def _inter_merge(sample_sets: Sequence[SampleSet]) -> SampleSet:
        """Merge consecutive sample sets sharing the same P-location set.

        The merged probability of each common P-location is the mean of its
        probabilities across the merged sets (Algorithm 1, ``InterMerge``).
        """
        if len(sample_sets) == 1:
            return sample_sets[0]
        locations = sorted(sample_sets[0].plocation_set())
        count = len(sample_sets)
        samples = [
            Sample(
                loc,
                sum(sample_set.probability_of(loc) for sample_set in sample_sets) / count,
            )
            for loc in locations
        ]
        return SampleSet(samples, normalise=True)

    # ------------------------------------------------------------------
    # Possible semantic locations
    # ------------------------------------------------------------------
    def _possible_slocations(self, sample_set: SampleSet) -> Set[int]:
        """The S-locations an object may have visited given one sample set."""
        cells: Set[int] = set()
        for ploc_id in sample_set.plocation_set():
            cells |= self._matrix.cells_adjacent(ploc_id)
        return self._graph.c2s_many(cells)

    def possible_slocations_of_sequence(
        self, sequence: Sequence[SampleSet]
    ) -> Set[int]:
        """PSLs over an entire sequence without performing any merge."""
        psls: Set[int] = set()
        for sample_set in sequence:
            psls |= self._possible_slocations(sample_set)
        return psls
