"""Flow computation for a single S-location (Algorithm 2).

``Flow(q, tree, [ts, te])`` fetches the positioning records of the query
window from the time index, groups them per object, reduces every object's
sequence (Algorithm 1), constructs the valid possible paths on the reduced
sequence, and accumulates the object presences into the indoor flow of ``q``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..data.iupt import IUPT
from ..data.records import SampleSet
from ..space.graph import IndoorSpaceLocationGraph
from ..space.matrix import IndoorLocationMatrix
from .paths import (
    PathConstructionStats,
    build_possible_paths,
    total_candidate_probability,
)
from .presence import PresenceComputation
from .query import SearchStats
from .reduction import DataReducer, DataReductionConfig, ReductionStats


@dataclass
class FlowResult:
    """The indoor flow of one S-location plus the work done to obtain it."""

    sloc_id: int
    flow: float
    stats: SearchStats


class ObjectComputationCache:
    """Per-query cache of reduced sequences and presence computations.

    The nested-loop and best-first algorithms must not re-construct the paths
    of an object that is relevant to several query locations (the
    "intermediate result sharing" of Section 4.1); this cache provides that
    sharing.  The naive algorithm deliberately bypasses it.
    """

    def __init__(self) -> None:
        self._presence: Dict[int, PresenceComputation] = {}

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._presence

    def get(self, object_id: int) -> Optional[PresenceComputation]:
        return self._presence.get(object_id)

    def put(self, object_id: int, computation: PresenceComputation) -> None:
        self._presence[object_id] = computation

    def __len__(self) -> int:
        return len(self._presence)


class FlowComputer:
    """Computes indoor flows for individual S-locations (Algorithm 2)."""

    def __init__(
        self,
        graph: IndoorSpaceLocationGraph,
        matrix: IndoorLocationMatrix,
        reduction: DataReductionConfig = DataReductionConfig.enabled(),
        max_paths_per_object: Optional[int] = 1024,
    ):
        self._graph = graph
        self._matrix = matrix
        self._reducer = DataReducer(graph, matrix, reduction)
        self._max_paths_per_object = max_paths_per_object

    @property
    def graph(self) -> IndoorSpaceLocationGraph:
        return self._graph

    @property
    def matrix(self) -> IndoorLocationMatrix:
        return self._matrix

    @property
    def reducer(self) -> DataReducer:
        return self._reducer

    # ------------------------------------------------------------------
    # Per-object presence
    # ------------------------------------------------------------------
    def presence_computation(
        self,
        sequence: Sequence[SampleSet],
        stats: Optional[SearchStats] = None,
    ) -> PresenceComputation:
        """Build the possible paths of one (already reduced) sequence."""
        path_stats = stats.path_stats if stats is not None else PathConstructionStats()
        paths = build_possible_paths(
            sequence, self._matrix, path_stats, max_paths=self._max_paths_per_object
        )
        # Equation 1 normalises by the total candidate-path mass (the product
        # of the per-sample-set probability sums), so probability mass lost to
        # invalid candidates lowers the presence — this reproduces the paper's
        # worked Example 3 (Φ(r6, o2) = 0.85).
        return PresenceComputation(
            paths, candidate_mass=total_candidate_probability(sequence)
        )

    def object_presence(
        self,
        sequence: Sequence[SampleSet],
        sloc_id: int,
        reduce_first: bool = True,
    ) -> float:
        """Φ(q, o) for a raw per-object sequence (convenience for tests/examples)."""
        cell_id = self._graph.parent_cell(sloc_id)
        if cell_id is None:
            return 0.0
        working: Sequence[SampleSet] = sequence
        if reduce_first:
            reduced = self._reducer.reduce(sequence, {sloc_id})
            if reduced.pruned:
                return 0.0
            working = reduced.sequence
        return self.presence_computation(working).presence_in_cell(cell_id)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def flow(
        self,
        iupt: IUPT,
        sloc_id: int,
        start: float,
        end: float,
        cache: Optional[ObjectComputationCache] = None,
        stats: Optional[SearchStats] = None,
    ) -> FlowResult:
        """Compute the indoor flow of S-location ``sloc_id`` over ``[start, end]``."""
        own_stats = stats if stats is not None else SearchStats()
        began = time.perf_counter()

        cell_id = self._graph.parent_cell(sloc_id)
        sequences = iupt.sequences_in(start, end)
        own_stats.objects_total = max(own_stats.objects_total, len(sequences))

        flow_value = 0.0
        for object_id in sorted(sequences):
            presence = self._presence_for_object(
                object_id, sequences[object_id], {sloc_id}, cache, own_stats
            )
            if presence is None:
                continue
            own_stats.flow_evaluations += 1
            flow_value += presence.presence_in_cell(cell_id)

        own_stats.elapsed_seconds += time.perf_counter() - began
        return FlowResult(sloc_id=sloc_id, flow=flow_value, stats=own_stats)

    def flows_for_all(
        self,
        iupt: IUPT,
        sloc_ids: Sequence[int],
        start: float,
        end: float,
    ) -> Dict[int, float]:
        """Flows for several S-locations, sharing one cache (used by examples)."""
        cache = ObjectComputationCache()
        stats = SearchStats()
        return {
            sloc_id: self.flow(iupt, sloc_id, start, end, cache=cache, stats=stats).flow
            for sloc_id in sloc_ids
        }

    # ------------------------------------------------------------------
    # Shared internals (also used by the TkPLQ algorithms)
    # ------------------------------------------------------------------
    def _presence_for_object(
        self,
        object_id: int,
        sequence: Sequence[SampleSet],
        query_slocations: Optional[Set[int]],
        cache: Optional[ObjectComputationCache],
        stats: SearchStats,
    ) -> Optional[PresenceComputation]:
        """Reduce + path-construct one object, honouring the cache and stats."""
        if cache is not None:
            cached = cache.get(object_id)
            if cached is not None:
                return cached
        reduced = self._reducer.reduce(
            sequence, query_slocations, stats.reduction_stats
        )
        if reduced.pruned:
            return None
        computation = self.presence_computation(reduced.sequence, stats)
        stats.note_object_computed(object_id)
        if cache is not None:
            cache.put(object_id, computation)
        return computation

    def reduce_object(
        self,
        sequence: Sequence[SampleSet],
        query_slocations: Optional[Set[int]],
        stats: Optional[ReductionStats] = None,
    ):
        """Expose Algorithm 1 for callers that need the PSLs (e.g. Best-First)."""
        return self._reducer.reduce(sequence, query_slocations, stats)
