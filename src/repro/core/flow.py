"""Flow computation for a single S-location (Algorithm 2).

``Flow(q, tree, [ts, te])`` fetches the positioning records of the query
window from the time index, groups them per object, reduces every object's
sequence (Algorithm 1), constructs the valid possible paths on the reduced
sequence, and accumulates the object presences into the indoor flow of ``q``.

Since the execution-engine refactor the computation itself lives in the
staged pipeline of :mod:`repro.engine.stages` (fetch → reduce → paths →
presence); :class:`FlowComputer` remains the home of the per-object
primitives (the reducer, path construction, Equation 1) and keeps its
historical API as a thin driver over the pipeline.  A bare ``FlowComputer``
lazily builds a private serial pipeline without cross-query caching, which
reproduces the pre-engine behaviour exactly; a
:class:`~repro.engine.runtime.QueryEngine` attaches its shared pipeline
(presence store + executor) through :meth:`FlowComputer.use_pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from ..data.iupt import IUPT
from ..data.records import SampleSet
from ..space.graph import IndoorSpaceLocationGraph
from ..space.matrix import IndoorLocationMatrix
from .paths import (
    PathConstructionStats,
    build_possible_paths,
    total_candidate_probability,
)
from .presence import PresenceComputation
from .query import SearchStats
from .reduction import DataReducer, DataReductionConfig, ReductionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.cache import StoredPresence
    from ..engine.stages import QueryPipeline


@dataclass
class FlowResult:
    """The indoor flow of one S-location plus the work done to obtain it."""

    sloc_id: int
    flow: float
    stats: SearchStats


class ObjectComputationCache:
    """Per-query cache of per-object presence artefacts, keyed by query set.

    The nested-loop and best-first algorithms must not re-construct the paths
    of an object that is relevant to several query locations (the
    "intermediate result sharing" of Section 4.1); this cache provides that
    sharing.  The naive algorithm deliberately bypasses it.

    Entries are :class:`~repro.engine.cache.StoredPresence` artefacts keyed by
    ``(object_id, frozenset(query_slocations))``.  The query-set component
    matters because ``DataReducer.reduce`` is query-dependent (its pruning
    decision, and potentially future reductions, depend on the query set): a
    presence reduced under one location set must never be served for another.
    Historically this class was keyed by object id alone, which let
    ``flows_for_all`` reuse one location's reduction for a different location
    — see the regression tests in ``tests/test_engine.py``.
    """

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[int, Optional[FrozenSet[int]]], "StoredPresence"
        ] = {}

    @staticmethod
    def _key(
        object_id: int, query_slocations: Optional[Iterable[int]]
    ) -> Tuple[int, Optional[FrozenSet[int]]]:
        qkey = None if query_slocations is None else frozenset(query_slocations)
        return (object_id, qkey)

    def get(
        self,
        object_id: int,
        query_slocations: Optional[Iterable[int]] = None,
    ) -> Optional["StoredPresence"]:
        return self._entries.get(self._key(object_id, query_slocations))

    def put(
        self,
        object_id: int,
        entry: "StoredPresence",
        query_slocations: Optional[Iterable[int]] = None,
    ) -> None:
        self._entries[self._key(object_id, query_slocations)] = entry

    def __len__(self) -> int:
        return len(self._entries)


class FlowComputer:
    """Computes indoor flows for individual S-locations (Algorithm 2)."""

    def __init__(
        self,
        graph: IndoorSpaceLocationGraph,
        matrix: IndoorLocationMatrix,
        reduction: DataReductionConfig = DataReductionConfig.enabled(),
        max_paths_per_object: Optional[int] = 1024,
    ):
        self._graph = graph
        self._matrix = matrix
        self._reducer = DataReducer(graph, matrix, reduction)
        self._max_paths_per_object = max_paths_per_object
        self._pipeline: Optional["QueryPipeline"] = None

    @property
    def graph(self) -> IndoorSpaceLocationGraph:
        return self._graph

    @property
    def matrix(self) -> IndoorLocationMatrix:
        return self._matrix

    @property
    def reducer(self) -> DataReducer:
        return self._reducer

    # ------------------------------------------------------------------
    # Pipeline wiring
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> "QueryPipeline":
        """The staged pipeline this computer drives its queries through.

        Bare computers build a private serial pipeline without cross-query
        caching on first use (the pre-engine behaviour); computers owned by a
        :class:`~repro.engine.runtime.QueryEngine` share the engine's
        pipeline, store, and executor.
        """
        if self._pipeline is None:
            # Imported lazily: the engine layer builds on this module.
            from ..engine.stages import QueryPipeline

            self._pipeline = QueryPipeline(self)
        return self._pipeline

    def use_pipeline(self, pipeline: "QueryPipeline") -> None:
        """Attach the pipeline of an owning engine (store + executor)."""
        self._pipeline = pipeline

    def __getstate__(self) -> dict:
        # The pipeline (presence store lock, worker pools) is a runtime
        # attachment, not part of the computer's identity; dropping it keeps
        # the computer picklable for process-pool fan-out.
        state = self.__dict__.copy()
        state["_pipeline"] = None
        return state

    # ------------------------------------------------------------------
    # Per-object presence
    # ------------------------------------------------------------------
    def presence_computation(
        self,
        sequence: Sequence[SampleSet],
        stats: Optional[SearchStats] = None,
    ) -> PresenceComputation:
        """Build the possible paths of one (already reduced) sequence."""
        path_stats = stats.path_stats if stats is not None else PathConstructionStats()
        paths = build_possible_paths(
            sequence, self._matrix, path_stats, max_paths=self._max_paths_per_object
        )
        # Equation 1 normalises by the total candidate-path mass (the product
        # of the per-sample-set probability sums), so probability mass lost to
        # invalid candidates lowers the presence — this reproduces the paper's
        # worked Example 3 (Φ(r6, o2) = 0.85).
        return PresenceComputation(
            paths, candidate_mass=total_candidate_probability(sequence)
        )

    def object_presence(
        self,
        sequence: Sequence[SampleSet],
        sloc_id: int,
        reduce_first: bool = True,
    ) -> float:
        """Φ(q, o) for a raw per-object sequence (convenience for tests/examples)."""
        cell_id = self._graph.parent_cell(sloc_id)
        if cell_id is None:
            return 0.0
        working: Sequence[SampleSet] = sequence
        if reduce_first:
            reduced = self._reducer.reduce(sequence, {sloc_id})
            if reduced.pruned:
                return 0.0
            working = reduced.sequence
        return self.presence_computation(working).presence_in_cell(cell_id)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def flow(
        self,
        iupt: IUPT,
        sloc_id: int,
        start: float,
        end: float,
        cache: Optional[ObjectComputationCache] = None,
        stats: Optional[SearchStats] = None,
    ) -> FlowResult:
        """Compute the indoor flow of S-location ``sloc_id`` over ``[start, end]``."""
        pipeline = self.pipeline
        ctx = pipeline.context((start, end), frozenset({sloc_id}), stats=stats)
        return pipeline.flow(ctx, iupt, sloc_id, legacy_cache=cache)

    def flows_for_all(
        self,
        iupt: IUPT,
        sloc_ids: Sequence[int],
        start: float,
        end: float,
        stats: Optional[SearchStats] = None,
    ) -> Dict[int, float]:
        """Flows for several S-locations, sharing one per-object pass.

        Every object is reduced once against the union of the requested
        locations; the per-location pruning decision is taken from the
        object's possible semantic locations, so each returned flow is
        exactly what an independent :meth:`flow` call would compute.
        """
        return self.pipeline.flows_for_all(iupt, sloc_ids, start, end, stats=stats)

    # ------------------------------------------------------------------
    # Shared internals (also used by the TkPLQ algorithms)
    # ------------------------------------------------------------------
    def reduce_object(
        self,
        sequence: Sequence[SampleSet],
        query_slocations: Optional[Set[int]],
        stats: Optional[ReductionStats] = None,
    ):
        """Expose Algorithm 1 for callers that need the PSLs (e.g. Best-First)."""
        return self._reducer.reduce(sequence, query_slocations, stats)
