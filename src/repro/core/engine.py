"""High-level facade wiring the indoor space model to the TkPLQ algorithms.

:class:`IndoorFlowSystem` is the public entry point most users need: it takes
a floor plan, derives the indoor space location graph and the (merged) indoor
location matrix, and deploys a :class:`~repro.engine.runtime.QueryEngine` over
them.  Flow computation, the three TkPLQ search algorithms, and batched
multi-query evaluation are all exposed behind a single object; the historical
``flow`` / ``flows`` / ``top_k`` / ``search`` methods are thin wrappers over
the engine, so pre-engine callers keep working unchanged (and transparently
gain the engine's cross-query presence store).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..data.iupt import IUPT
from ..engine.batch import BatchReport
from ..engine.config import EngineConfig
from ..engine.runtime import ALGORITHMS, QueryEngine
from ..space.floorplan import FloorPlan
from ..space.graph import IndoorSpaceLocationGraph
from ..space.matrix import IndoorLocationMatrix
from .flow import FlowComputer, FlowResult
from .query import TkPLQResult, TkPLQuery
from .reduction import DataReductionConfig

__all__ = ["ALGORITHMS", "IndoorFlowSystem"]


class IndoorFlowSystem:
    """The end-to-end system of the paper, from floor plan to top-k answers.

    Parameters
    ----------
    plan:
        The indoor floor plan (frozen automatically if needed).
    use_merged_matrix:
        Whether to downsize the indoor location matrix by merging equivalent
        P-locations (Section 3.2).  On by default, as in the paper.
    reduction:
        The data reduction configuration; disable it to obtain the ``-ORG``
        behaviour studied in Section 5.2.1.
    engine_config:
        Execution-engine configuration (executor kind, worker count, presence
        store capacity).  The default is serial execution with a bounded
        cross-query presence store.
    """

    def __init__(
        self,
        plan: FloorPlan,
        use_merged_matrix: bool = True,
        reduction: DataReductionConfig = DataReductionConfig.enabled(),
        engine_config: Optional[EngineConfig] = None,
    ):
        self.plan = plan.freeze()
        self.graph = IndoorSpaceLocationGraph.from_floorplan(self.plan)
        raw_matrix = IndoorLocationMatrix.from_graph(self.graph)
        self.matrix = raw_matrix.merged(self.graph) if use_merged_matrix else raw_matrix
        self.engine = QueryEngine(
            self.graph, self.matrix, reduction, config=engine_config
        )
        self.flow_computer: FlowComputer = self.engine.flow_computer

    # ------------------------------------------------------------------
    # Flow computation
    # ------------------------------------------------------------------
    def flow(self, iupt: IUPT, sloc_id: int, start: float, end: float) -> FlowResult:
        """Indoor flow of one S-location over ``[start, end]`` (Algorithm 2)."""
        return self.engine.flow(iupt, sloc_id, start, end)

    def flows(
        self, iupt: IUPT, sloc_ids: Sequence[int], start: float, end: float
    ) -> Dict[int, float]:
        """Flows of several S-locations, sharing per-object work."""
        return self.engine.flows(iupt, sloc_ids, start, end)

    # ------------------------------------------------------------------
    # TkPLQ
    # ------------------------------------------------------------------
    def top_k(
        self,
        iupt: IUPT,
        query_slocations: Sequence[int],
        k: int,
        start: float,
        end: float,
        algorithm: str = "best-first",
    ) -> TkPLQResult:
        """Answer a top-k popular location query.

        ``algorithm`` is one of ``"naive"``, ``"nested-loop"``, ``"best-first"``.
        """
        return self.engine.top_k(iupt, query_slocations, k, start, end, algorithm)

    def search(
        self, iupt: IUPT, query: TkPLQuery, algorithm: str = "best-first"
    ) -> TkPLQResult:
        """Answer an already constructed :class:`TkPLQuery`."""
        return self.engine.search(iupt, query, algorithm)

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def batch(self, iupt: IUPT, queries: Sequence[TkPLQuery]) -> BatchReport:
        """Answer many TkPLQ queries in one pass, sharing per-object work."""
        return self.engine.batch(iupt, queries)

    def batch_top_k(
        self, iupt: IUPT, queries: Sequence[TkPLQuery]
    ) -> List[TkPLQResult]:
        """Like :meth:`batch`, returning just the per-query results."""
        return self.engine.batch_top_k(iupt, queries)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the engine's cross-query presence store."""
        return self.engine.cache_stats()

    def close(self) -> None:
        """Release engine resources (parallel worker pools)."""
        self.engine.close()

    def summary(self) -> Dict[str, int]:
        """Structural summary of the deployed model (plan, graph, matrix)."""
        info: Dict[str, int] = {}
        info.update({f"plan_{key}": value for key, value in self.plan.summary().items()})
        info.update({f"graph_{key}": value for key, value in self.graph.summary().items()})
        info.update({f"matrix_{key}": value for key, value in self.matrix.summary().items()})
        return info
