"""High-level facade wiring the indoor space model to the TkPLQ algorithms.

:class:`IndoorFlowSystem` is the public entry point most users need: it takes
a floor plan, derives the indoor space location graph and the (merged) indoor
location matrix, and exposes flow computation and the three TkPLQ search
algorithms behind a single object.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..data.iupt import IUPT
from ..space.floorplan import FloorPlan
from ..space.graph import IndoorSpaceLocationGraph
from ..space.matrix import IndoorLocationMatrix
from .best_first import BestFirstTkPLQ
from .flow import FlowComputer, FlowResult
from .naive import NaiveTkPLQ
from .nested_loop import NestedLoopTkPLQ
from .query import TkPLQResult, TkPLQuery
from .reduction import DataReductionConfig

ALGORITHMS = ("naive", "nested-loop", "best-first")


class IndoorFlowSystem:
    """The end-to-end system of the paper, from floor plan to top-k answers.

    Parameters
    ----------
    plan:
        The indoor floor plan (frozen automatically if needed).
    use_merged_matrix:
        Whether to downsize the indoor location matrix by merging equivalent
        P-locations (Section 3.2).  On by default, as in the paper.
    reduction:
        The data reduction configuration; disable it to obtain the ``-ORG``
        behaviour studied in Section 5.2.1.
    """

    def __init__(
        self,
        plan: FloorPlan,
        use_merged_matrix: bool = True,
        reduction: DataReductionConfig = DataReductionConfig.enabled(),
    ):
        self.plan = plan.freeze()
        self.graph = IndoorSpaceLocationGraph.from_floorplan(self.plan)
        raw_matrix = IndoorLocationMatrix.from_graph(self.graph)
        self.matrix = raw_matrix.merged(self.graph) if use_merged_matrix else raw_matrix
        self.flow_computer = FlowComputer(self.graph, self.matrix, reduction)
        self._algorithms = {
            "naive": NaiveTkPLQ(self.flow_computer),
            "nested-loop": NestedLoopTkPLQ(self.flow_computer),
            "best-first": BestFirstTkPLQ(self.flow_computer),
        }

    # ------------------------------------------------------------------
    # Flow computation
    # ------------------------------------------------------------------
    def flow(self, iupt: IUPT, sloc_id: int, start: float, end: float) -> FlowResult:
        """Indoor flow of one S-location over ``[start, end]`` (Algorithm 2)."""
        return self.flow_computer.flow(iupt, sloc_id, start, end)

    def flows(
        self, iupt: IUPT, sloc_ids: Sequence[int], start: float, end: float
    ) -> Dict[int, float]:
        """Flows of several S-locations, sharing per-object work."""
        return self.flow_computer.flows_for_all(iupt, sloc_ids, start, end)

    # ------------------------------------------------------------------
    # TkPLQ
    # ------------------------------------------------------------------
    def top_k(
        self,
        iupt: IUPT,
        query_slocations: Sequence[int],
        k: int,
        start: float,
        end: float,
        algorithm: str = "best-first",
    ) -> TkPLQResult:
        """Answer a top-k popular location query.

        ``algorithm`` is one of ``"naive"``, ``"nested-loop"``, ``"best-first"``.
        """
        query = TkPLQuery.build(query_slocations, k, start, end)
        return self.search(iupt, query, algorithm)

    def search(
        self, iupt: IUPT, query: TkPLQuery, algorithm: str = "best-first"
    ) -> TkPLQResult:
        """Answer an already constructed :class:`TkPLQuery`."""
        if algorithm not in self._algorithms:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        return self._algorithms[algorithm].search(iupt, query)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Structural summary of the deployed model (plan, graph, matrix)."""
        info: Dict[str, int] = {}
        info.update({f"plan_{key}": value for key, value in self.plan.summary().items()})
        info.update({f"graph_{key}": value for key, value in self.graph.summary().items()})
        info.update({f"matrix_{key}": value for key, value in self.matrix.summary().items()})
        return info
