"""Possible indoor path construction (Section 2.3, step 2).

Given an object's positioning sequence ``X = (X1, ..., Xn)`` within the query
window, the candidate paths live in the Cartesian product
``πl(X1) x ... x πl(Xn)``.  Candidates violating the indoor topology — i.e.
containing a consecutive P-location pair with ``MIL[pi, pj] = ∅`` — are
invalid and are pruned *during* construction (Algorithm 2, lines 13-15), so
that invalid branches never fan out.

Each constructed path keeps, per consecutive P-location pair, the set of cells
that could host the movement (``MIL[locj, locj+1]``).  Those step cell sets
are all that is needed later to evaluate the pass probability with respect to
any S-location, which is how the nested-loop and best-first algorithms share
one path construction across many query locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..data.records import SampleSet
from ..space.matrix import IndoorLocationMatrix


@dataclass(frozen=True)
class PossiblePath:
    """A valid possible path (group) of one object across the query window.

    Attributes
    ----------
    plocations:
        The P-locations of one representative concrete path (the first one
        encountered for this group; see below).
    probability:
        The total probability mass of the concrete paths represented by this
        entry (``Σ pr_i`` over the group).
    step_cells:
        For every consecutive pair ``(loc_j, loc_{j+1})``, the set of cells
        that cover a direct connection between them.  For a single-report
        path this holds one entry: the adjacent/containing cells of the lone
        P-location.

    Concrete candidate paths that traverse exactly the same step cell sets and
    end at the same P-location are interchangeable for every downstream
    computation: their pass probability with respect to any S-location is
    identical (Equation 2 depends only on the step cell sets) and their
    extensibility depends only on the tail P-location.  The constructor
    therefore groups them and sums their probabilities, which keeps Equation 1
    exact while drastically reducing the number of path objects handled.
    """

    plocations: Tuple[int, ...]
    probability: float
    step_cells: Tuple[FrozenSet[int], ...]

    @property
    def length(self) -> int:
        return len(self.plocations)

    def cells_touched(self) -> Set[int]:
        """All cells the path may traverse (union of the step cell sets)."""
        touched: Set[int] = set()
        for cells in self.step_cells:
            touched |= cells
        return touched

    def pass_probability(self, cell_id: Optional[int]) -> float:
        """The probability that this path passes the cell ``cell_id``.

        Implements Equation 2: the complement of the probability that none of
        the consecutive pairs passes the cell, where each pair passes it with
        probability ``|{c in C | c == cell}| / |C|``.
        """
        if cell_id is None:
            return 0.0
        miss_probability = 1.0
        for cells in self.step_cells:
            if not cells:
                continue
            hit = 1.0 / len(cells) if cell_id in cells else 0.0
            miss_probability *= 1.0 - hit
        return 1.0 - miss_probability


@dataclass
class PathConstructionStats:
    """Counters describing one path-construction run (for the reduction study)."""

    candidate_paths: int = 0
    valid_paths: int = 0
    pruned_branches: int = 0
    truncated_objects: int = 0

    def merge(self, other: "PathConstructionStats") -> None:
        self.candidate_paths += other.candidate_paths
        self.valid_paths += other.valid_paths
        self.pruned_branches += other.pruned_branches
        self.truncated_objects += other.truncated_objects


def candidate_path_count(sequence: Sequence[SampleSet]) -> int:
    """The worst-case number of candidate paths (``Π |πl(Xi)|``)."""
    total = 1
    for sample_set in sequence:
        total *= len(sample_set.plocation_set())
    return total if sequence else 0


class _StepChain:
    """A hash-consed chain of step cell sets (shared prefixes, O(1) keys).

    Partial paths grow one step cell set per sample set; materialising the
    step tuple on every extension costs O(sequence length) per candidate and
    makes the construction quadratic on the long dwell-heavy sequences of
    the streaming scenarios.  Chains share their prefixes instead: every
    node is interned per construction, so two partial paths carry the *same*
    chain object exactly when their step cell sequences are equal, and the
    grouping key ``(tail, chain)`` hashes by identity in O(1).  The full
    tuple is materialised only for the surviving final paths.
    """

    __slots__ = ("parent", "cells")

    def __init__(self, parent: Optional["_StepChain"], cells: FrozenSet[int]):
        self.parent = parent
        self.cells = cells

    def materialise(self) -> Tuple[FrozenSet[int], ...]:
        steps: List[FrozenSet[int]] = []
        node: Optional["_StepChain"] = self
        while node is not None:
            steps.append(node.cells)
            node = node.parent
        steps.reverse()
        return tuple(steps)


def build_possible_paths(
    sequence: Sequence[SampleSet],
    matrix: IndoorLocationMatrix,
    stats: Optional[PathConstructionStats] = None,
    max_paths: Optional[int] = None,
) -> List[PossiblePath]:
    """Construct the topologically valid possible paths of one sequence.

    The construction extends partial paths one sample set at a time and drops
    a partial path as soon as its tail cannot directly reach the next sample's
    P-location (``MIL[tail, loc] = ∅``), mirroring lines 9-15 of Algorithm 2.
    Concrete candidates sharing the same tail P-location and the same step
    cell sets are grouped (their probabilities summed) because they are
    indistinguishable for presence computation — see :class:`PossiblePath`.

    ``max_paths``, when given, bounds the number of path groups carried
    forward at each step; if the bound is exceeded the lowest-probability
    groups are dropped and the computation becomes an approximation (the kept
    mass still normalises correctly through Equation 1).  The paper instead
    spills paths to disk; a bound is the practical equivalent for a pure
    in-memory reproduction and only triggers on pathological sequences.
    """
    if stats is not None:
        stats.candidate_paths += candidate_path_count(sequence)
    if not sequence:
        return []

    # Partial path groups: (tail, step chain) -> [representative locations,
    # probability].  Chains are hash-consed through `interned`, so the key
    # compares in O(1) while grouping exactly by the step cell sequence.
    partials: dict = {}
    for sample in sequence[0]:
        key = (sample.ploc_id, None)
        entry = partials.get(key)
        if entry is None:
            partials[key] = [(sample.ploc_id,), sample.prob]
        else:
            entry[1] += sample.prob

    truncated = False
    for sample_set in sequence[1:]:
        extended: dict = {}
        interned: dict = {}
        # MIL lookups depend only on (tail, next location); the tails of one
        # step all come from the previous sample set, so memoising per step
        # caps the matrix probes at |X_{i-1}| x |X_i| instead of one per
        # partial path group.  The samples are unpacked once and the dict
        # probes hoisted because this loop runs (groups x samples) times per
        # step and dominates whole-window flow computation.
        cells_between: dict = {}
        samples = [(sample.ploc_id, sample.prob) for sample in sample_set]
        pruned_branches = 0
        cells_get = cells_between.get
        interned_get = interned.get
        extended_get = extended.get
        matrix_cells_between = matrix.cells_between
        for (tail, chain), (locations, probability) in partials.items():
            for ploc_id, prob in samples:
                pair = (tail, ploc_id)
                cells = cells_get(pair)
                if cells is None:
                    cells = matrix_cells_between(tail, ploc_id)
                    cells_between[pair] = cells
                if not cells:
                    pruned_branches += 1
                    continue
                link = (chain, cells)
                extended_chain = interned_get(link)
                if extended_chain is None:
                    extended_chain = _StepChain(chain, cells)
                    interned[link] = extended_chain
                key = (ploc_id, extended_chain)
                entry = extended_get(key)
                if entry is None:
                    extended[key] = [
                        locations + (ploc_id,),
                        probability * prob,
                    ]
                else:
                    entry[1] += probability * prob
        if stats is not None:
            stats.pruned_branches += pruned_branches
        if max_paths is not None and len(extended) > max_paths:
            truncated = True
            keep = sorted(extended.items(), key=lambda item: -item[1][1])[:max_paths]
            extended = dict(keep)
        partials = extended
        if not partials:
            break

    paths: List[PossiblePath] = []
    for (tail, chain), (locations, probability) in partials.items():
        if len(locations) == 1:
            # A lone report: the "movement" stays within the cells adjacent to
            # the single P-location (see DESIGN.md, interpretation choices).
            steps: Tuple[FrozenSet[int], ...] = (
                matrix.cells_adjacent(locations[0]),
            )
        else:
            steps = chain.materialise()
        paths.append(
            PossiblePath(
                plocations=locations,
                probability=probability,
                step_cells=steps,
            )
        )
    if stats is not None:
        stats.valid_paths += len(paths)
        if truncated:
            stats.truncated_objects += 1
    return paths


def total_probability(paths: Sequence[PossiblePath]) -> float:
    """Sum of the (valid) path probabilities."""
    return sum(path.probability for path in paths)


def total_candidate_probability(sequence: Sequence[SampleSet]) -> float:
    """Total probability mass of all candidate paths (``Π_i Σ_e prob``).

    This is the denominator of Equation 1 as used by the paper's worked
    examples; it equals 1 whenever every sample set is normalised, but is
    computed explicitly so that merged or truncated sample sets stay
    consistent.
    """
    if not sequence:
        return 0.0
    total = 1.0
    for sample_set in sequence:
        total *= sum(sample.prob for sample in sample_set)
    return total
