"""Core contribution: indoor flows and the top-k popular location query."""

from .best_first import BestFirstTkPLQ
from .engine import ALGORITHMS, IndoorFlowSystem
from .flow import FlowComputer, FlowResult, ObjectComputationCache
from .naive import NaiveTkPLQ
from .nested_loop import NestedLoopTkPLQ
from .paths import (
    PathConstructionStats,
    PossiblePath,
    build_possible_paths,
    candidate_path_count,
)
from .presence import PresenceComputation, object_presence
from .query import (
    RankedLocation,
    SearchStats,
    TkPLQResult,
    TkPLQuery,
    rank_top_k,
)
from .reduction import (
    DataReducer,
    DataReductionConfig,
    ReducedSequence,
    ReductionStats,
)

__all__ = [
    "ALGORITHMS",
    "BestFirstTkPLQ",
    "DataReducer",
    "DataReductionConfig",
    "FlowComputer",
    "FlowResult",
    "IndoorFlowSystem",
    "NaiveTkPLQ",
    "NestedLoopTkPLQ",
    "ObjectComputationCache",
    "PathConstructionStats",
    "PossiblePath",
    "PresenceComputation",
    "RankedLocation",
    "ReducedSequence",
    "ReductionStats",
    "SearchStats",
    "TkPLQResult",
    "TkPLQuery",
    "build_possible_paths",
    "candidate_path_count",
    "object_presence",
    "rank_top_k",
]
