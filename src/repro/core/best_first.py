"""The Best-First TkPLQ algorithm (Algorithm 4).

The best-first algorithm avoids computing the flow of every query location.
It proceeds in three phases:

1. **Preparation.**  Fetch the window's positioning records, reduce every
   object's sequence, and insert the surviving objects into an in-memory
   COUNT-aggregate R-tree ``RC`` keyed by the MBR of their possible semantic
   locations (PSLs).

2. **Root join.**  Join the root entries of the query S-location R-tree ``RQ``
   with the root entries of ``RC``; each ``RQ`` entry is pushed into a
   max-heap together with its *join list* (the ``RC`` entries intersecting it)
   and an upper bound on its flow (the sum of entry counts, valid because an
   object's presence never exceeds 1).

3. **Guided join.**  Repeatedly pop the entry with the largest bound.  Leaf
   entries with an exhausted join list have an exact flow value that dominates
   everything still in the heap and are emitted; leaf entries joined with
   object-level entries get their exact flow computed (sharing per-object path
   construction through the common cache); otherwise the entry and/or its join
   list are expanded one level and re-enqueued with refined bounds.

The algorithm terminates as soon as ``k`` locations have been emitted, which
is where its extra pruning over the nested-loop algorithm comes from.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from ..data.iupt import IUPT
from ..data.records import SampleSet
from ..geometry import Rect
from ..indexes import AggregateEntry, CountAggregateRTree, RTree, RTreeNode
from .flow import FlowComputer
from .query import RankedLocation, SearchStats, TkPLQResult, TkPLQuery, rank_top_k

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core → engine import)
    from ..engine.cache import StoredPresence
    from ..engine.context import ExecutionContext


@dataclass
class _QueryEntry:
    """A uniform view over RQ entries: either an R-tree node or a leaf S-location."""

    mbr: Rect
    node: Optional[RTreeNode] = None
    sloc_id: Optional[int] = None

    @property
    def is_leaf_entry(self) -> bool:
        return self.sloc_id is not None


@dataclass
class _HeapItem:
    """One max-heap element: an RQ entry, its join list, and its flow bound."""

    bound: float
    entry: _QueryEntry
    join_list: Optional[List[AggregateEntry]]
    exact: bool = False


class BestFirstTkPLQ:
    """Answer TkPLQ with the R-tree join guided by flow upper bounds."""

    name = "best-first"

    def __init__(self, flow_computer: FlowComputer, rtree_fanout: int = 8):
        self._flow_computer = flow_computer
        self._fanout = rtree_fanout

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(self, iupt: IUPT, query: TkPLQuery) -> TkPLQResult:
        stats = SearchStats()
        began = time.perf_counter()

        graph = self._flow_computer.graph
        plan = graph.plan
        query_set: Set[int] = set(query.query_slocations)
        parent_cells = {
            sloc_id: graph.parent_cell(sloc_id) for sloc_id in query_set
        }

        # Phase 1: data preparation and the object aggregate R-tree.  The
        # per-object reduction runs through the engine pipeline (with path
        # construction deferred — the guided join only builds paths for the
        # candidates it actually visits).
        pipeline = self._flow_computer.pipeline
        ctx = pipeline.context(query.interval, query_set, stats=stats)
        sequences = pipeline.fetch.run(ctx, iupt)
        presences: Dict[int, "StoredPresence"] = {}
        aggregate = CountAggregateRTree(max_entries=self._fanout)
        for object_id, entry in pipeline.presences(
            ctx, sequences, build_paths=False
        ):
            if entry.pruned:
                continue
            presences[object_id] = entry
            for mbr in self._psl_mbrs(plan, entry.psls):
                aggregate.insert(mbr, object_id)
        aggregate.build()

        # Phase 2: R-tree over the query S-locations and the root join.
        query_tree = RTree.bulk_load(
            (
                (plan.slocations[sloc_id].region, sloc_id)
                for sloc_id in query.query_slocations
            ),
            max_entries=self._fanout,
        )
        heap: List[Tuple[float, int, _HeapItem]] = []
        counter = itertools.count()
        root_list = aggregate.root_entries()
        for entry in self._entries_of_node(query_tree.root):
            self._join_and_push(heap, counter, entry, root_list, stats)

        # Phase 3: the guided join.
        emitted: List[RankedLocation] = []
        flows: Dict[int, float] = {}

        while heap and len(emitted) < query.k:
            _, _, _, item = heapq.heappop(heap)
            stats.heap_operations += 1
            entry = item.entry

            if entry.is_leaf_entry:
                sloc_id = entry.sloc_id
                assert sloc_id is not None
                if item.exact:
                    emitted.append(RankedLocation(sloc_id, item.bound))
                    flows[sloc_id] = item.bound
                    continue
                join_list = item.join_list or []
                if not join_list:
                    # No candidate object can reach this location: exact 0.
                    self._push(heap, counter, _HeapItem(0.0, entry, None, exact=True))
                    continue
                if all(e.is_leaf_entry for e in join_list):
                    flow_value = self._exact_flow(
                        ctx,
                        join_list,
                        presences,
                        parent_cells.get(sloc_id),
                        stats,
                    )
                    self._push(
                        heap, counter, _HeapItem(flow_value, entry, None, exact=True)
                    )
                else:
                    self._expand_join_list(heap, counter, entry, join_list, stats)
            else:
                join_list = item.join_list or []
                sub_entries = self._entries_of_node(entry.node)
                if join_list and all(e.is_leaf_entry for e in join_list):
                    for sub_entry in sub_entries:
                        self._join_and_push(heap, counter, sub_entry, join_list, stats)
                else:
                    for sub_entry in sub_entries:
                        self._expand_join_list(heap, counter, sub_entry, join_list, stats)

        # If entire R-tree branches were dropped because no object can reach
        # them, fewer than k locations may have been emitted; the missing ones
        # all have flow 0 and are appended in id order to complete the answer.
        if len(emitted) < query.k:
            already = {entry.sloc_id for entry in emitted}
            for sloc_id in sorted(query_set - already):
                if len(emitted) >= query.k:
                    break
                emitted.append(RankedLocation(sloc_id, 0.0))
                flows[sloc_id] = 0.0

        # Record flows for the locations never reached (bounded by the emitted ones).
        for sloc_id in query.query_slocations:
            flows.setdefault(sloc_id, 0.0)

        stats.elapsed_seconds = time.perf_counter() - began
        ranking = emitted[: query.k]
        return TkPLQResult(
            query=query,
            ranking=ranking,
            flows=flows,
            stats=stats,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _psl_mbrs(plan, psls) -> List[Rect]:
        """Represent an object's PSLs by one MBR per floor (finer-grained MBRs)."""
        regions = [plan.slocations[sloc_id].region for sloc_id in psls if sloc_id in plan.slocations]
        by_floor: Dict[int, List[Rect]] = {}
        for region in regions:
            by_floor.setdefault(region.floor, []).append(region)
        return [Rect.union_all(group) for group in by_floor.values()]

    def _entries_of_node(self, node: Optional[RTreeNode]) -> List[_QueryEntry]:
        if node is None:
            return []
        if node.is_leaf:
            return [
                _QueryEntry(mbr=entry.mbr, sloc_id=entry.item) for entry in node.entries
            ]
        return [
            _QueryEntry(mbr=child.mbr, node=child)
            for child in node.children
            if child.mbr is not None
        ]

    def _join_and_push(
        self,
        heap: List[Tuple[float, int, _HeapItem]],
        counter,
        entry: _QueryEntry,
        candidates: Sequence[AggregateEntry],
        stats: SearchStats,
    ) -> None:
        """Join one RQ entry with a candidate list and push it with its bound."""
        join_list = [c for c in candidates if c.mbr.intersects(entry.mbr)]
        bound = float(sum(c.count for c in join_list))
        self._push(heap, counter, _HeapItem(bound, entry, join_list))

    def _expand_join_list(
        self,
        heap: List[Tuple[float, int, _HeapItem]],
        counter,
        entry: _QueryEntry,
        join_list: Sequence[AggregateEntry],
        stats: SearchStats,
    ) -> None:
        """``ExpandList``: descend one level into the aggregate tree."""
        expanded: List[AggregateEntry] = []
        bound = 0.0
        for candidate in join_list:
            children = (
                [candidate]
                if candidate.is_leaf_entry
                else list(candidate.node.entries)
            )
            for child in children:
                if child.mbr.intersects(entry.mbr):
                    expanded.append(child)
                    bound += child.count
        if expanded or entry.is_leaf_entry:
            self._push(heap, counter, _HeapItem(bound, entry, expanded))

    def _push(self, heap, counter, item: _HeapItem) -> None:
        # Ties on the bound are broken towards smaller S-location ids so that
        # the emitted order matches the deterministic ranking of the other
        # algorithms (non-leaf entries use -1 and are simply expanded first).
        tie = item.entry.sloc_id if item.entry.is_leaf_entry else -1
        heapq.heappush(heap, (-item.bound, tie, next(counter), item))

    def _exact_flow(
        self,
        ctx: "ExecutionContext",
        join_list: Sequence[AggregateEntry],
        presences: Dict[int, "StoredPresence"],
        cell_id: Optional[int],
        stats: SearchStats,
    ) -> float:
        """Compute the exact flow of a leaf query entry from its candidate objects.

        Path construction is performed lazily per candidate through the
        pipeline, which memoises it on the shared presence artefact (and in
        the cross-query store, when one is attached) — the per-object sharing
        that Section 4.1 obtained from a per-query cache.
        """
        if cell_id is None:
            return 0.0
        pipeline = self._flow_computer.pipeline
        object_ids = sorted({entry.item for entry in join_list})
        flow_value = 0.0
        for object_id in object_ids:
            stored = presences.get(object_id)
            if stored is None:
                continue
            stored = pipeline.build_paths_for(ctx, object_id, stored)
            stats.flow_evaluations += 1
            flow_value += stored.computation.presence_in_cell(cell_id)
        return flow_value
