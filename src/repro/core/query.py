"""Query and result types for the Top-k Popular Location Query (TkPLQ).

Problem 1 of the paper: given a query set ``Q`` of S-locations, an IUPT over
a set of objects ``O`` and a time interval ``[ts, te]``, return the ``k``
S-locations of ``Q`` with the highest indoor flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .paths import PathConstructionStats
from .reduction import ReductionStats


@dataclass(frozen=True)
class TkPLQuery:
    """A top-k popular location query."""

    query_slocations: Tuple[int, ...]
    k: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if not self.query_slocations:
            raise ValueError("the query set Q must not be empty")
        if self.start > self.end:
            raise ValueError("the query interval start must not exceed its end")
        if self.k > len(self.query_slocations):
            raise ValueError(
                f"k={self.k} exceeds the query set size {len(self.query_slocations)}"
            )

    @staticmethod
    def build(
        query_slocations: Sequence[int], k: int, start: float, end: float
    ) -> "TkPLQuery":
        return TkPLQuery(tuple(query_slocations), k, start, end)

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.start, self.end)


@dataclass(frozen=True)
class RankedLocation:
    """One entry of a TkPLQ answer: an S-location and its flow value."""

    sloc_id: int
    flow: float


@dataclass
class SearchStats:
    """Efficiency counters collected while answering one query.

    ``objects_total`` is ``|O|`` restricted to the query window (objects with
    at least one report in ``[ts, te]``); ``objects_computed`` is ``|Of|``,
    the objects whose presence actually had to be computed.  The paper's
    pruning ratio is ``(|O| - |Of|) / |O|``.
    """

    elapsed_seconds: float = 0.0
    objects_total: int = 0
    objects_computed: int = 0
    flow_evaluations: int = 0
    heap_operations: int = 0
    path_stats: PathConstructionStats = field(default_factory=PathConstructionStats)
    reduction_stats: ReductionStats = field(default_factory=ReductionStats)
    computed_object_ids: set = field(default_factory=set)

    def note_object_computed(self, object_id: int) -> None:
        """Record that an object's presence was computed (distinct objects only)."""
        self.computed_object_ids.add(object_id)
        self.objects_computed = len(self.computed_object_ids)

    def note_objects_total(self, count: int) -> None:
        """Record ``|O|`` of one window fetch.

        Every fetch over the same window reports the same count, so the
        accumulator keeps the maximum: shared-stats callers (the naive
        algorithm's per-location flow calls, ``flows_for_all``) see the
        window's object population exactly once instead of a sum or a
        last-write-wins value.
        """
        self.objects_total = max(self.objects_total, count)

    def merge(self, other: "SearchStats", same_window: bool = True) -> None:
        """Fold another accumulator into this one.

        Used to combine the per-worker statistics of parallel presence
        computations (each worker collects into a private ``SearchStats``)
        and, more generally, to aggregate per-stage accounting.

        ``same_window`` states whether both sides describe the same window
        fetch: if so ``objects_total`` keeps the maximum (the population was
        counted once per fetch of the same window); if the sides cover
        *different* windows — e.g. aggregating the groups of a multi-window
        batch — the populations are distinct fetches and sum instead.
        """
        self.elapsed_seconds += other.elapsed_seconds
        if same_window:
            self.note_objects_total(other.objects_total)
        else:
            self.objects_total += other.objects_total
        self.flow_evaluations += other.flow_evaluations
        self.heap_operations += other.heap_operations
        self.path_stats.merge(other.path_stats)
        self.reduction_stats.merge(other.reduction_stats)
        self.computed_object_ids |= other.computed_object_ids
        self.objects_computed = len(self.computed_object_ids)

    @property
    def pruning_ratio(self) -> float:
        if self.objects_total == 0:
            return 0.0
        return (self.objects_total - self.objects_computed) / self.objects_total

    def as_dict(self) -> Dict[str, float]:
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "objects_total": self.objects_total,
            "objects_computed": self.objects_computed,
            "pruning_ratio": self.pruning_ratio,
            "flow_evaluations": self.flow_evaluations,
            "heap_operations": self.heap_operations,
            "valid_paths": self.path_stats.valid_paths,
            "candidate_paths": self.path_stats.candidate_paths,
        }


@dataclass
class TkPLQResult:
    """The answer to a TkPLQ: the ranked top-k plus per-location flows."""

    query: TkPLQuery
    ranking: List[RankedLocation]
    flows: Dict[int, float]
    stats: SearchStats
    algorithm: str = ""

    def top_k_ids(self) -> List[int]:
        """The ranked S-location ids, best first."""
        return [entry.sloc_id for entry in self.ranking]

    def flow_of(self, sloc_id: int) -> Optional[float]:
        return self.flows.get(sloc_id)

    def __len__(self) -> int:
        return len(self.ranking)


def rank_top_k(flows: Dict[int, float], k: int) -> List[RankedLocation]:
    """Rank S-locations by flow (descending), ties broken by smaller id."""
    ordered = sorted(flows.items(), key=lambda item: (-item[1], item[0]))
    return [RankedLocation(sloc_id, flow) for sloc_id, flow in ordered[:k]]
