"""Uncertain indoor positioning data model (Section 2.2).

A positioning record is a triplet ``(oid, X, t)`` where ``X`` is a *sample
set*: entries ``(loc, prob)`` meaning "the object is at P-location ``loc``
with probability ``prob`` at time ``t``".  The probabilities of a sample set
always sum to one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

PROBABILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Sample:
    """A single positioning sample ``(loc, prob)``.

    Individual weights may exceed 1 transiently (e.g. raw WkNN weights before
    normalisation); the enclosing :class:`SampleSet` enforces that the final
    probabilities are non-negative and sum to one.
    """

    ploc_id: int
    prob: float

    def __post_init__(self) -> None:
        if self.prob < -PROBABILITY_TOLERANCE:
            raise ValueError(f"sample probability {self.prob} must not be negative")


class SampleSet:
    """A normalised, immutable set of samples for one positioning report.

    The constructor merges duplicate P-locations (summing their probabilities)
    and validates that probabilities sum to 1 (within tolerance) unless
    ``normalise=True`` is passed, in which case they are rescaled — the data
    reduction operations rely on rescaling when samples are merged or when a
    record is truncated to the maximum sample-set size.
    """

    __slots__ = ("_samples",)

    def __init__(self, samples: Iterable[Sample], normalise: bool = False):
        merged: Dict[int, float] = {}
        for sample in samples:
            merged[sample.ploc_id] = merged.get(sample.ploc_id, 0.0) + sample.prob
        if not merged:
            raise ValueError("a sample set must contain at least one sample")
        total = sum(merged.values())
        if normalise:
            if total <= 0:
                raise ValueError("cannot normalise a sample set with zero total probability")
            merged = {loc: prob / total for loc, prob in merged.items()}
        elif abs(total - 1.0) > 1e-3:
            raise ValueError(
                f"sample probabilities must sum to 1 (got {total:.6f}); "
                "pass normalise=True to rescale"
            )
        ordered = sorted(merged.items())
        self._samples: Tuple[Sample, ...] = tuple(
            Sample(loc, prob) for loc, prob in ordered
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> Tuple[Sample, ...]:
        return self._samples

    def plocation_set(self) -> Set[int]:
        """``πl(X)``: the set of P-locations appearing in this sample set."""
        return {s.ploc_id for s in self._samples}

    def probability_of(self, ploc_id: int) -> float:
        """The probability assigned to ``ploc_id`` (0.0 if absent)."""
        for sample in self._samples:
            if sample.ploc_id == ploc_id:
                return sample.prob
        return 0.0

    def most_probable(self) -> Sample:
        """The sample with the highest probability (ties broken by smaller id)."""
        return max(self._samples, key=lambda s: (s.prob, -s.ploc_id))

    def above_threshold(self, threshold: float) -> List[Sample]:
        """All samples with probability strictly above ``threshold``."""
        return [s for s in self._samples if s.prob > threshold]

    def truncated(self, max_size: int) -> "SampleSet":
        """Keep the ``max_size`` most probable samples and renormalise.

        Reproduces the paper's uncertainty experiment (Section 5.2.2): "if the
        number of its containing samples exceeds the maximum sample-set size
        mss, the samples with lower probabilities are removed".
        """
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        if len(self._samples) <= max_size:
            return self
        kept = sorted(self._samples, key=lambda s: (-s.prob, s.ploc_id))[:max_size]
        return SampleSet(kept, normalise=True)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SampleSet):
            return NotImplemented
        return self._samples == other._samples

    def __hash__(self) -> int:
        return hash(self._samples)

    def __repr__(self) -> str:
        body = ", ".join(f"(p{s.ploc_id}, {s.prob:.3f})" for s in self._samples)
        return f"SampleSet[{body}]"

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @staticmethod
    def certain(ploc_id: int) -> "SampleSet":
        """A sample set reporting a single P-location with probability 1."""
        return SampleSet([Sample(ploc_id, 1.0)])

    @staticmethod
    def from_pairs(pairs: Sequence[Tuple[int, float]], normalise: bool = False) -> "SampleSet":
        """Build a sample set from ``(ploc_id, prob)`` pairs."""
        return SampleSet([Sample(loc, prob) for loc, prob in pairs], normalise=normalise)


@dataclass(frozen=True)
class PositioningRecord:
    """One row of the Indoor Uncertain Positioning Table: ``(oid, X, t)``."""

    object_id: int
    sample_set: SampleSet
    timestamp: float

    def plocation_set(self) -> Set[int]:
        return self.sample_set.plocation_set()

    def truncated(self, max_size: int) -> "PositioningRecord":
        """Return a copy whose sample set is truncated to ``max_size`` samples."""
        truncated = self.sample_set.truncated(max_size)
        if truncated is self.sample_set:
            return self
        return PositioningRecord(self.object_id, truncated, self.timestamp)


PositioningSequence = List[SampleSet]
"""A per-object time-ordered sequence of sample sets (``X = (X1, ..., Xn)``)."""
