"""Ground-truth object trajectories.

The synthetic experiments (Section 5.3) record every object's exact location
once per second; those spatiotemporal trajectories form the ground truth used
to score the query results (recall, Kendall tau) and to drive the positioning
and RFID simulators.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..geometry import Point
from ..space import FloorPlan


@dataclass(frozen=True)
class TrajectoryPoint:
    """One ground-truth fix: where an object truly was at a timestamp."""

    timestamp: float
    location: Point
    partition_id: Optional[int] = None


class Trajectory:
    """The time-ordered ground-truth trajectory of a single object."""

    def __init__(self, object_id: int, points: Iterable[TrajectoryPoint] = ()):
        self.object_id = object_id
        self._points: List[TrajectoryPoint] = sorted(points, key=lambda p: p.timestamp)

    def append(self, point: TrajectoryPoint) -> None:
        if self._points and point.timestamp < self._points[-1].timestamp:
            raise ValueError("trajectory points must be appended in time order")
        self._points.append(point)

    @property
    def points(self) -> Sequence[TrajectoryPoint]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def time_span(self) -> Tuple[float, float]:
        if not self._points:
            return (float("inf"), float("-inf"))
        return (self._points[0].timestamp, self._points[-1].timestamp)

    def location_at(self, timestamp: float) -> Optional[Point]:
        """The most recent known location at ``timestamp`` (None before start)."""
        if not self._points:
            return None
        keys = [p.timestamp for p in self._points]
        index = bisect_right(keys, timestamp) - 1
        if index < 0:
            return None
        return self._points[index].location

    def points_in(self, start: float, end: float) -> List[TrajectoryPoint]:
        """The trajectory points whose timestamps fall in ``[start, end]``."""
        return [p for p in self._points if start <= p.timestamp <= end]

    def partitions_visited(self, start: float, end: float) -> Set[int]:
        """The ids of partitions truly visited during ``[start, end]``."""
        return {
            p.partition_id
            for p in self.points_in(start, end)
            if p.partition_id is not None
        }

    def slocations_visited(
        self, plan: FloorPlan, start: float, end: float
    ) -> Set[int]:
        """The ids of S-locations truly visited during ``[start, end]``."""
        visited: Set[int] = set()
        for point in self.points_in(start, end):
            visited.update(plan.slocations_containing(point.location))
        return visited


class TrajectoryStore:
    """A collection of ground-truth trajectories keyed by object id."""

    def __init__(self) -> None:
        self._trajectories: Dict[int, Trajectory] = {}

    def add(self, trajectory: Trajectory) -> None:
        self._trajectories[trajectory.object_id] = trajectory

    def get(self, object_id: int) -> Optional[Trajectory]:
        return self._trajectories.get(object_id)

    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self):
        return iter(self._trajectories.values())

    def object_ids(self) -> List[int]:
        return sorted(self._trajectories)

    def true_visit_counts(
        self, plan: FloorPlan, start: float, end: float
    ) -> Dict[int, int]:
        """Count, per S-location, the objects that truly visited it in the window.

        This is the ground-truth flow used to rank S-locations when computing
        recall and the Kendall coefficient: each object is counted at most
        once per S-location, exactly like the indoor flow definition.
        """
        counts: Dict[int, int] = {sloc_id: 0 for sloc_id in plan.slocations}
        for trajectory in self._trajectories.values():
            for sloc_id in trajectory.slocations_visited(plan, start, end):
                counts[sloc_id] = counts.get(sloc_id, 0) + 1
        return counts
