"""Mobility data models: uncertain positioning records, IUPT, trajectories, RFID."""

from .iupt import IUPT
from .records import PositioningRecord, PositioningSequence, Sample, SampleSet
from .rfid import RFIDReader, RFIDRecord, RFIDTable
from .trajectory import Trajectory, TrajectoryPoint, TrajectoryStore

__all__ = [
    "IUPT",
    "PositioningRecord",
    "PositioningSequence",
    "RFIDReader",
    "RFIDRecord",
    "RFIDTable",
    "Sample",
    "SampleSet",
    "Trajectory",
    "TrajectoryPoint",
    "TrajectoryStore",
]
