"""The Indoor Uncertain Positioning Table (IUPT) and its time index.

The IUPT stores the historical positioning records of all indoor moving
objects (Table 2 of the paper).  Following Section 3.3, the table is indexed
on its time attribute with a one-dimensional R-tree so that the flow and
TkPLQ algorithms can fetch exactly the records of a query window; a B+-tree
index is also available for the index ablation study.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..indexes import BPlusTree, OneDimensionalRTree
from .records import PositioningRecord, SampleSet

_TABLE_UIDS = itertools.count(1)


class IUPT:
    """The indoor uncertain positioning table.

    Parameters
    ----------
    index_kind:
        ``"1dr-tree"`` (default, the paper's choice) or ``"bplus-tree"``.
        Both expose the same range-query semantics; the choice only affects
        the index ablation benchmark.
    """

    VALID_INDEXES = ("1dr-tree", "bplus-tree")

    def __init__(self, index_kind: str = "1dr-tree"):
        if index_kind not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index kind {index_kind!r}; expected one of {self.VALID_INDEXES}"
            )
        self._index_kind = index_kind
        self._records: List[PositioningRecord] = []
        self._rtree: OneDimensionalRTree[PositioningRecord] = OneDimensionalRTree()
        self._bptree: BPlusTree[PositioningRecord] = BPlusTree()
        self._uid = next(_TABLE_UIDS)
        self._version = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def append(self, record: PositioningRecord) -> None:
        """Append one positioning record."""
        self._records.append(record)
        self._rtree.insert(record.timestamp, record)
        self._bptree.insert(record.timestamp, record)
        self._version += 1

    def extend(self, records: Iterable[PositioningRecord]) -> None:
        for record in records:
            self.append(record)

    def report(self, object_id: int, sample_set: SampleSet, timestamp: float) -> None:
        """Convenience wrapper building the record in place."""
        self.append(PositioningRecord(object_id, sample_set, timestamp))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def index_kind(self) -> str:
        return self._index_kind

    @property
    def data_key(self) -> Tuple[int, int]:
        """Identity-and-version token of the table's current contents.

        Changes whenever a record is appended (and differs between table
        instances), so caches of derived per-object artefacts — the engine's
        :class:`~repro.engine.cache.PresenceStore` — can key on it and never
        serve results computed from an older state of the table.
        """
        return (self._uid, self._version)

    @property
    def records(self) -> Sequence[PositioningRecord]:
        return tuple(self._records)

    def object_ids(self) -> List[int]:
        """The distinct object identifiers present in the table."""
        return sorted({record.object_id for record in self._records})

    def time_span(self) -> Tuple[float, float]:
        """The earliest and latest report timestamps (``(inf, -inf)`` if empty)."""
        if not self._records:
            return (float("inf"), float("-inf"))
        timestamps = [r.timestamp for r in self._records]
        return (min(timestamps), max(timestamps))

    def summary(self) -> Dict[str, float]:
        """Basic statistics used in experiment logs."""
        sizes = [len(r.sample_set) for r in self._records]
        start, end = self.time_span()
        return {
            "records": len(self._records),
            "objects": len(self.object_ids()),
            "max_sample_set_size": max(sizes) if sizes else 0,
            "mean_sample_set_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "time_start": start,
            "time_end": end,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, start: float, end: float) -> List[PositioningRecord]:
        """Return the records whose timestamp falls into ``[start, end]``.

        This corresponds to the ``tree.RangeQuery([ts, te])`` call of
        Algorithms 2-4 and goes through the configured time index.
        """
        if self._index_kind == "1dr-tree":
            return self._rtree.range_query(start, end)
        return self._bptree.range_query(start, end)

    def sequences_in(self, start: float, end: float) -> Dict[int, List[SampleSet]]:
        """Group the records of a window into per-object positioning sequences.

        Corresponds to the hash table ``HO : {oid} -> {X}`` construction at
        the top of Algorithms 2-4.  The sequences preserve time order, and
        the returned mapping iterates in ascending object-id order — the
        deterministic iteration order every flow computation and search
        algorithm relies on (callers must not re-sort).
        """
        grouped: Dict[int, List[Tuple[float, SampleSet]]] = defaultdict(list)
        for record in self.range_query(start, end):
            grouped[record.object_id].append((record.timestamp, record.sample_set))
        sequences: Dict[int, List[SampleSet]] = {}
        for object_id in sorted(grouped):
            pairs = grouped[object_id]
            pairs.sort(key=lambda item: item[0])
            sequences[object_id] = [sample_set for _, sample_set in pairs]
        return sequences

    def records_of_object(self, object_id: int) -> List[PositioningRecord]:
        """All records of one object, in time order."""
        selected = [r for r in self._records if r.object_id == object_id]
        selected.sort(key=lambda r: r.timestamp)
        return selected

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_max_sample_set_size(self, mss: int) -> "IUPT":
        """Return a copy whose records are truncated to ``mss`` samples each.

        Used by the uncertainty experiments (Table 5, Figure 7) which vary the
        maximum sample-set size of the same underlying data.
        """
        clone = IUPT(index_kind=self._index_kind)
        clone.extend(record.truncated(mss) for record in self._records)
        return clone

    def filtered_to_objects(self, object_ids: Iterable[int]) -> "IUPT":
        """Return a copy containing only the records of ``object_ids``."""
        wanted = set(object_ids)
        clone = IUPT(index_kind=self._index_kind)
        clone.extend(r for r in self._records if r.object_id in wanted)
        return clone
