"""The Indoor Uncertain Positioning Table (IUPT) — a facade over a record store.

The IUPT stores the historical positioning records of all indoor moving
objects (Table 2 of the paper).  Following Section 3.3, the table is indexed
on its time attribute so that the flow and TkPLQ algorithms can fetch exactly
the records of a query window.

Since the storage-layer refactor the table itself is a thin facade over a
:class:`~repro.storage.base.RecordStore` backend:

* :class:`~repro.storage.memory.InMemoryRecordStore` (default) — the seed
  behaviour: one flat list behind whole-table 1D R-tree / B+-tree indexes;
* :class:`~repro.storage.sharded.ShardedRecordStore` (via :meth:`IUPT.sharded`)
  — time-partitioned shards with bulk-loaded indexes, shard-pruned window
  queries, per-shard versioning, and retention eviction.

Streaming callers ingest through :meth:`IUPT.ingest_batch`, which costs one
version bump per touched shard (one per batch on the flat store) instead of
the historical one-bump-per-record, and the engine keys its cross-query
presence cache on the *window-scoped* :meth:`IUPT.data_key_for`, so a new
batch only invalidates cached presences whose query windows overlap the
touched shards.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..storage import (
    DEFAULT_SHARD_SECONDS,
    DurabilityConfig,
    DurableRecordStore,
    IngestReceipt,
    InMemoryRecordStore,
    RecordStore,
    ShardedRecordStore,
    StoreListener,
    VersionToken,
)
from .records import PositioningRecord, SampleSet


class IUPT:
    """The indoor uncertain positioning table.

    Parameters
    ----------
    index_kind:
        ``"1dr-tree"`` (default, the paper's choice) or ``"bplus-tree"``.
        Both expose the same range-query semantics; the choice only affects
        the index ablation benchmark.
    store:
        The storage backend; defaults to a flat
        :class:`~repro.storage.memory.InMemoryRecordStore` of ``index_kind``
        (the seed behaviour).  Use :meth:`IUPT.sharded` for the
        time-partitioned store.
    """

    VALID_INDEXES = ("1dr-tree", "bplus-tree")

    def __init__(
        self, index_kind: str = "1dr-tree", store: Optional[RecordStore] = None
    ):
        if index_kind not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index kind {index_kind!r}; expected one of {self.VALID_INDEXES}"
            )
        if store is not None:
            # The backend owns the index choice; the facade must not be able
            # to disagree with it (mislabeled ablation rows, clones whose
            # index kind silently flips).
            self._index_kind = getattr(store, "index_kind", index_kind)
            self._store: RecordStore = store
        else:
            self._index_kind = index_kind
            self._store = InMemoryRecordStore(index_kind)

    @classmethod
    def sharded(
        cls,
        shard_seconds: float = DEFAULT_SHARD_SECONDS,
        index_kind: str = "1dr-tree",
    ) -> "IUPT":
        """A table over the time-partitioned sharded store."""
        return cls(
            index_kind=index_kind,
            store=ShardedRecordStore(
                shard_seconds=shard_seconds, index_kind=index_kind
            ),
        )

    @classmethod
    def durable(
        cls,
        path,
        shard_seconds: float = DEFAULT_SHARD_SECONDS,
        index_kind: str = "1dr-tree",
        config: Optional[DurabilityConfig] = None,
    ) -> "IUPT":
        """A table over the write-ahead-logged durable sharded store.

        Pass a fresh directory to create a new table, or an existing one to
        **recover** the table it holds — ingested batches, per-shard
        versions (and therefore :meth:`data_key_for` tokens) and the
        retention watermark all survive a process restart.  When the
        directory already exists its persisted manifest decides
        ``shard_seconds``/``index_kind``; see
        :class:`~repro.storage.durable.DurableRecordStore`.
        """
        store = DurableRecordStore(
            path,
            shard_seconds=shard_seconds,
            index_kind=index_kind,
            config=config,
        )
        return cls(index_kind=store.index_kind, store=store)

    def _clone_empty(self) -> "IUPT":
        """An empty table over a fresh store of the same kind and settings.

        Derived tables (:meth:`with_max_sample_set_size`,
        :meth:`filtered_to_objects`) of a *durable* table are volatile
        sharded clones: they are transient experiment inputs, and silently
        logging them into a second directory would be more surprising than
        useful.
        """
        if isinstance(self._store, (ShardedRecordStore, DurableRecordStore)):
            return IUPT.sharded(
                shard_seconds=self._store.shard_seconds,
                index_kind=self._index_kind,
            )
        return IUPT(index_kind=self._index_kind)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def append(self, record: PositioningRecord) -> None:
        """Append one positioning record."""
        self._store.append(record)

    def extend(self, records: Iterable[PositioningRecord]) -> None:
        """Append many records; one version bump per touched shard, not per record."""
        self._store.ingest_batch(records)

    def ingest_batch(self, records: Iterable[PositioningRecord]) -> IngestReceipt:
        """Streaming ingestion: bulk-insert a batch and report what it touched.

        On the sharded store the batch is sliced per time shard and each
        touched shard rebuilds its index once (bulk load) and bumps its
        version once, so cached query results for non-overlapping windows
        stay valid.  The flat store degenerates to per-record index inserts
        with a single whole-table version bump.
        """
        return self._store.ingest_batch(records)

    def report(self, object_id: int, sample_set: SampleSet, timestamp: float) -> None:
        """Convenience wrapper building the record in place."""
        self.append(PositioningRecord(object_id, sample_set, timestamp))

    def subscribe(self, listener: StoreListener) -> int:
        """Register a store listener (ingest / eviction events).

        Listeners receive :class:`~repro.storage.base.IngestEvent` after each
        ingestion and :class:`~repro.storage.base.EvictionEvent` after each
        eviction that dropped records, synchronously and after the table is
        consistent again.  The continuous-query subsystem
        (:mod:`repro.engine.continuous`) maintains its standing results
        through this hook.  Returns a token for :meth:`unsubscribe`.
        """
        return self._store.subscribe(listener)

    def unsubscribe(self, token: int) -> bool:
        """Remove a store listener by its :meth:`subscribe` token."""
        return self._store.unsubscribe(token)

    def evict_before(self, timestamp: float) -> int:
        """Drop records strictly below ``timestamp`` per the retention contract.

        The cut-off is exclusive — a record at ``timestamp == cutoff`` always
        survives (see the boundary contract on
        :meth:`~repro.storage.base.RecordStore.evict_before`).  Sharded and
        durable stores drop whole shards; the flat store drops exactly the
        strictly-older records.  Returns the number of records dropped.
        Later window queries that reach below the eviction watermark raise
        :class:`~repro.storage.base.EvictedRangeError` rather than silently
        returning partial flows.
        """
        return self._store.evict_before(timestamp)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    @property
    def index_kind(self) -> str:
        return self._index_kind

    @property
    def store(self) -> RecordStore:
        """The storage backend behind this table."""
        return self._store

    @property
    def data_key(self) -> VersionToken:
        """Identity-and-version token of the table's entire current contents.

        Changes whenever any record is ingested (and differs between table
        instances).  Prefer :meth:`data_key_for` for caching derived
        artefacts of one query window: on a sharded store the window-scoped
        token survives ingestion into shards the window does not touch.
        """
        return self._store.version_token()

    def data_key_for(self, start: float, end: float) -> VersionToken:
        """Identity-and-version token of the records visible to ``[start, end]``.

        The engine's :class:`~repro.engine.stages.FetchStage` pins each
        query context to this token, so the cross-query
        :class:`~repro.engine.cache.PresenceStore` serves cached presences
        until a batch actually touches a shard the window overlaps.
        """
        return self._store.version_token(start, end)

    @property
    def records(self) -> Sequence[PositioningRecord]:
        if isinstance(self._store, InMemoryRecordStore):
            return self._store.records_in_arrival_order
        return self._store.records_in_time_order()

    def object_ids(self) -> List[int]:
        """The distinct object identifiers present in the table."""
        return sorted({record.object_id for record in self.records})

    def time_span(self) -> Tuple[float, float]:
        """The earliest and latest report timestamps (``(inf, -inf)`` if empty)."""
        return self._store.time_span()

    def summary(self) -> Dict[str, float]:
        """Basic statistics used in experiment logs."""
        records = self.records
        sizes = [len(r.sample_set) for r in records]
        start, end = self.time_span()
        return {
            "records": len(records),
            "objects": len({record.object_id for record in records}),
            "max_sample_set_size": max(sizes) if sizes else 0,
            "mean_sample_set_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "time_start": start,
            "time_end": end,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, start: float, end: float) -> List[PositioningRecord]:
        """Return the records whose timestamp falls into ``[start, end]``.

        This corresponds to the ``tree.RangeQuery([ts, te])`` call of
        Algorithms 2-4 and goes through the store's time index(es); the
        sharded store first prunes to the shards overlapping the window.
        """
        return self._store.range_query(start, end)

    def sequences_in(self, start: float, end: float) -> Dict[int, List[SampleSet]]:
        """Group the records of a window into per-object positioning sequences.

        Corresponds to the hash table ``HO : {oid} -> {X}`` construction at
        the top of Algorithms 2-4.  The sequences preserve time order, and
        the returned mapping iterates in ascending object-id order — the
        deterministic iteration order every flow computation and search
        algorithm relies on (callers must not re-sort).
        """
        grouped: Dict[int, List[Tuple[float, SampleSet]]] = defaultdict(list)
        for record in self.range_query(start, end):
            grouped[record.object_id].append((record.timestamp, record.sample_set))
        sequences: Dict[int, List[SampleSet]] = {}
        for object_id in sorted(grouped):
            pairs = grouped[object_id]
            pairs.sort(key=lambda item: item[0])
            sequences[object_id] = [sample_set for _, sample_set in pairs]
        return sequences

    def records_of_object(self, object_id: int) -> List[PositioningRecord]:
        """All records of one object, in time order."""
        selected = [r for r in self.records if r.object_id == object_id]
        selected.sort(key=lambda r: r.timestamp)
        return selected

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_max_sample_set_size(self, mss: int) -> "IUPT":
        """Return a copy whose records are truncated to ``mss`` samples each.

        Used by the uncertainty experiments (Table 5, Figure 7) which vary the
        maximum sample-set size of the same underlying data.
        """
        clone = self._clone_empty()
        clone.extend(record.truncated(mss) for record in self.records)
        return clone

    def filtered_to_objects(self, object_ids: Iterable[int]) -> "IUPT":
        """Return a copy containing only the records of ``object_ids``."""
        wanted = set(object_ids)
        clone = self._clone_empty()
        clone.extend(r for r in self.records if r.object_id in wanted)
        return clone
