"""RFID tracking records used by the SCC and UR comparison baselines.

Section 5.3.3 compares the paper's approach against two RFID-based flow
methods.  The RFID data model is the standard symbolic tracking format: a
record ``(o, r, ts, te)`` means object ``o`` was continuously inside reader
``r``'s detection range from ``ts`` to ``te``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..geometry import Point


@dataclass(frozen=True)
class RFIDReader:
    """A deployed RFID reader with a circular detection range."""

    reader_id: int
    position: Point
    detection_range: float
    door_id: Optional[int] = None

    def detects(self, location: Point) -> bool:
        return self.position.distance_to(location) <= self.detection_range


@dataclass(frozen=True)
class RFIDRecord:
    """A tracking record: object ``object_id`` seen by ``reader_id`` in ``[ts, te]``."""

    object_id: int
    reader_id: int
    ts: float
    te: float

    def __post_init__(self) -> None:
        if self.te < self.ts:
            raise ValueError("an RFID record cannot end before it starts")

    def overlaps(self, start: float, end: float) -> bool:
        return self.ts <= end and start <= self.te


class RFIDTable:
    """The table of RFID tracking records plus the reader deployment."""

    def __init__(self, readers: Iterable[RFIDReader] = ()):
        self.readers: Dict[int, RFIDReader] = {r.reader_id: r for r in readers}
        self._records: List[RFIDRecord] = []

    def add_reader(self, reader: RFIDReader) -> None:
        self.readers[reader.reader_id] = reader

    def append(self, record: RFIDRecord) -> None:
        if record.reader_id not in self.readers:
            raise ValueError(f"record references unknown reader {record.reader_id}")
        self._records.append(record)

    def extend(self, records: Iterable[RFIDRecord]) -> None:
        for record in records:
            self.append(record)

    def ingest_batch(self, records: Iterable[RFIDRecord]) -> int:
        """Batch ingestion mirroring :meth:`repro.data.iupt.IUPT.ingest_batch`.

        Returns the number of ingested records, so the streaming loaders can
        treat positioning and RFID traffic uniformly.
        """
        before = len(self._records)
        self.extend(records)
        return len(self._records) - before

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[RFIDRecord]:
        return tuple(self._records)

    def records_in(self, start: float, end: float) -> List[RFIDRecord]:
        """Records whose detection interval overlaps ``[start, end]``."""
        return [r for r in self._records if r.overlaps(start, end)]

    def records_by_object(
        self, start: float, end: float
    ) -> Dict[int, List[RFIDRecord]]:
        """Group the overlapping records per object, in time order."""
        grouped: Dict[int, List[RFIDRecord]] = defaultdict(list)
        for record in self.records_in(start, end):
            grouped[record.object_id].append(record)
        for records in grouped.values():
            records.sort(key=lambda r: (r.ts, r.te))
        return dict(grouped)

    def object_ids(self) -> List[int]:
        return sorted({r.object_id for r in self._records})

    def summary(self) -> Dict[str, int]:
        return {
            "readers": len(self.readers),
            "records": len(self._records),
            "objects": len(self.object_ids()),
        }
