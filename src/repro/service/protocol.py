"""The query service's wire protocol: newline-delimited JSON frames.

One frame is one JSON object on one line (UTF-8, ``\\n``-terminated).  The
protocol is deliberately dependency-free and transport-agnostic — every
function here is pure (bytes/dicts in, bytes/dicts out), so the same code
serves the asyncio server, the client library, and offline tests.

**Requests** (client → server) carry a client-chosen correlation ``id`` and
an ``op``::

    {"id": 1, "op": "top_k", "q": [3, 5, 9], "k": 2, "start": 0.0, "end": 60.0}
    {"id": 2, "op": "ingest_batch", "records": [[7, 12.5, [[14, 0.6], [15, 0.4]]], ...]}
    {"id": 3, "op": "subscribe", "kind": "top_k", "q": [3, 5], "k": 1,
     "start": 0.0, "end": 60.0}
    {"id": 4, "op": "subscribe", "resume": 3}          # re-attach after a restart
    {"id": 5, "op": "checkpoint"}                      # durable stores only

**Responses** (server → client) echo the ``id`` and carry either a result or
a structured error::

    {"id": 1, "ok": true, "result": {"ranking": [[5, 1.25], [3, 0.5]], ...}}
    {"id": 4, "ok": false, "error": {"kind": "evicted_range", "message": ...,
     "start": 0.0, "end": 60.0, "watermark": 120.0}}

**Push frames** (server → client, unsolicited) have no ``id``; they carry the
refreshed result of a standing subscription after another client's ingestion,
or the eviction notice that invalidated it::

    {"push": "update", "subscription": 2, "seq": 5, "kind": "top_k",
     "result": {...}}
    {"push": "evicted", "subscription": 2, "error": {...}}

Numeric fidelity: flows are IEEE-754 doubles and :mod:`json` round-trips them
exactly (``repr`` ↔ ``float``), so a result serialised here and decoded by
the client is *bit-identical* to the in-process result — the service
benchmark asserts exactly that against direct engine calls.  Flow mappings
are serialised as ``[[sloc_id, flow], ...]`` pair lists (JSON object keys
are strings; int-keyed dicts would not round-trip).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..codec.packed import PackedRecordBatch, encode_batch
from ..core.query import TkPLQResult, TkPLQuery
from ..data.records import PositioningRecord, Sample, SampleSet
from ..storage import EvictedRangeError, IngestReceipt

PROTOCOL_VERSION = 2

#: Upper bound on one frame's wire size.  Both the server and the client
#: pass this as their stream reader limit (asyncio's default is 64 KiB,
#: which a few-thousand-record ``ingest_batch`` frame easily exceeds); a
#: line beyond it fails the connection with a structured ``bad_frame``
#: error instead of an unhandled ``ValueError`` in the read loop.
#:
#: **Boundary contract**: the limit counts the bytes of the frame line with
#: the ``\n`` terminator *excluded*, and is inclusive — a frame of exactly
#: ``MAX_FRAME_BYTES`` bytes is the largest accepted, one byte more is
#: rejected.  ``asyncio.StreamReader.readline`` enforces exactly this (it
#: raises only when the separator's offset *exceeds* the limit), and the
#: sans-I/O :class:`FrameSplitter` mirrors the same rule for the client
#: core and offline tests; ``tests/test_service.py`` pins both boundaries.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Request operations the server understands.
OPS = (
    "ping",
    "top_k",
    "flow",
    "flows",
    "batch",
    "ingest_batch",
    "evict_before",
    "checkpoint",
    "subscribe",
    "unsubscribe",
    "stats",
    "wal_cursor",
    "wal_tail",
    "wal_ack",
    "replica_status",
)

#: Introspection ops that bypass admission control: they are how operators
#: observe a draining or overloaded service, so shedding them would blind
#: exactly the clients that need to watch the drain.  They take no store
#: mutation and no engine work, so admitting them is always safe.
#: ``replica_status`` joins them because the router polls it to bound
#: stale reads — shedding it under load would stall exactly the fail-over
#: logic that relieves the load.
READ_ONLY_OPS = ("ping", "stats", "replica_status")

#: Ops rejected by a read-only (replica) service.
MUTATING_OPS = ("ingest_batch", "evict_before", "checkpoint")

#: Wire field announcing a binary payload: ``{"bin": N}`` on a frame line
#: means exactly ``N`` raw bytes follow the line's ``\n`` terminator (no
#: trailing newline of their own).  In-memory the payload rides on the frame
#: dict under :data:`BIN_PAYLOAD`, which never appears on the wire as JSON.
BIN_LENGTH = "bin"
BIN_PAYLOAD = "_bin"

#: One packed shard inside a snapshot payload: key, version, byte length of
#: the shard's ``RPK1`` blob (which follows immediately).
_SHARD_SECTION = struct.Struct("<qqI")

#: Subscription kinds accepted by ``subscribe``.
SUBSCRIPTION_KINDS = ("top_k", "flows")

#: Structured error kinds a response can carry.
ERROR_KINDS = (
    "bad_frame",      # the line was not a JSON object
    "bad_request",    # well-formed frame, invalid contents
    "unknown_op",     # unrecognised "op"
    "evicted_range",  # the window reaches into retention-evicted history
    "overloaded",     # shed by admission control (queue full / rate / drain)
    "unavailable",    # a router's backend is unreachable
    "internal",       # unexpected server-side failure
)


class ProtocolError(ValueError):
    """A frame that cannot be decoded or violates the protocol contract."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind
        self.message = message


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_frame(frame: Mapping[str, object]) -> bytes:
    """Serialise one frame to its wire form (compact JSON + newline).

    A frame carrying a binary payload under :data:`BIN_PAYLOAD` becomes a
    header line declaring ``{"bin": N}`` followed by the ``N`` raw payload
    bytes — content-length framing carried alongside the NDJSON ops.
    """
    payload = frame.get(BIN_PAYLOAD)
    if payload is None:
        return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
    header = {
        key: value for key, value in frame.items() if key != BIN_PAYLOAD
    }
    header[BIN_LENGTH] = len(payload)
    return (
        json.dumps(header, separators=(",", ":")).encode("utf-8")
        + b"\n"
        + bytes(payload)
    )


def frame_payload(frame: Mapping[str, object]) -> bytes:
    """The binary payload a decoded frame carries (``bad_request`` if none)."""
    payload = frame.get(BIN_PAYLOAD)
    if payload is None:
        raise ProtocolError("bad_request", "the frame carries no binary payload")
    return payload  # type: ignore[return-value]


def binary_length(frame: Mapping[str, object], limit: int) -> int:
    """Validate a decoded header line's ``bin`` declaration.

    Returns the payload byte count that must follow the line; raises
    :class:`ProtocolError` (kind ``bad_frame``) when the declaration is not
    a non-negative integer within ``limit`` — like an oversized line, the
    stream cannot be resynchronised past a lying length prefix, so callers
    fail the connection.
    """
    declared = frame.get(BIN_LENGTH)
    if not isinstance(declared, int) or isinstance(declared, bool) or declared < 0:
        raise ProtocolError(
            "bad_frame", f"'bin' must be a non-negative integer, got {declared!r}"
        )
    if declared > limit:
        raise ProtocolError(
            "bad_frame",
            f"binary payload of {declared} bytes exceeds the {limit}-byte limit",
        )
    return declared


def decode_frame(line: bytes) -> Dict[str, object]:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` (kind ``bad_frame``) on anything that is
    not a single JSON object — the server answers those with a structured
    error instead of dropping the connection.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("bad_frame", f"undecodable frame: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError(
            "bad_frame", f"a frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def response_frame(request_id: object, result: object) -> Dict[str, object]:
    """A successful response echoing the request's correlation id."""
    return {"id": request_id, "ok": True, "result": result}


def error_frame(
    request_id: object, kind: str, message: str, **details: object
) -> Dict[str, object]:
    """A failed response with a structured, machine-readable error."""
    if kind not in ERROR_KINDS:
        raise ValueError(f"unknown error kind {kind!r}; expected one of {ERROR_KINDS}")
    error: Dict[str, object] = {"kind": kind, "message": message}
    error.update(details)
    return {"id": request_id, "ok": False, "error": error}


def evicted_error_frame(
    request_id: object, error: EvictedRangeError
) -> Dict[str, object]:
    """The structured form of :class:`~repro.storage.base.EvictedRangeError`."""
    return error_frame(
        request_id,
        "evicted_range",
        str(error),
        start=error.start,
        end=error.end,
        watermark=error.watermark,
    )


def push_update_frame(
    subscription_id: int, seq: int, kind: str, result: object
) -> Dict[str, object]:
    """An unsolicited standing-query refresh pushed to a subscribed client."""
    return {
        "push": "update",
        "subscription": subscription_id,
        "seq": seq,
        "kind": kind,
        "result": result,
    }


def push_evicted_frame(
    subscription_id: int, error: EvictedRangeError
) -> Dict[str, object]:
    """An unsolicited notice that eviction invalidated a subscription."""
    return {
        "push": "evicted",
        "subscription": subscription_id,
        "error": {
            "kind": "evicted_range",
            "message": str(error),
            "start": error.start,
            "end": error.end,
            "watermark": error.watermark,
        },
    }


def push_wal_frame(seq: int, payload: bytes) -> Dict[str, object]:
    """One committed WAL batch shipped to a tailing follower.

    The records travel as one packed ``RPK1`` blob — the replication path
    never pays per-record JSON (decode with :func:`records_from_payload`).
    """
    return {"push": "wal", "seq": seq, BIN_PAYLOAD: payload}


def push_wal_evict_frame(watermark: float) -> Dict[str, object]:
    """A committed retention eviction shipped to a tailing follower."""
    return {"push": "wal_evict", "watermark": watermark}


def is_push_frame(frame: Mapping[str, object]) -> bool:
    return "push" in frame


#: Synthesised locally by the client when its connection dies — never sent
#: on the wire.  A WAL consumer blocked on the queue wakes up and decides
#: whether to reconnect instead of waiting on a dead stream forever.
WAL_CLOSED_FRAME = {"push": "wal_closed"}


def is_wal_push_frame(frame: Mapping[str, object]) -> bool:
    return frame.get("push") in ("wal", "wal_evict", "wal_closed")


# ----------------------------------------------------------------------
# Binary record payloads (the RPK1 columnar layout on the wire)
# ----------------------------------------------------------------------
def records_to_payload(records: Sequence[PositioningRecord]) -> bytes:
    """Pack a record batch into one ``RPK1`` blob for a binary frame."""
    return encode_batch(records)


def records_from_payload(payload: bytes) -> List[PositioningRecord]:
    """Decode a binary frame's ``RPK1`` blob back into records.

    Bit-exact on both codec backends (numpy and the stdlib ``array``
    fallback produce and parse identical bytes), so a response computed
    from a binary ingest equals one computed from the JSON form.
    """
    try:
        return PackedRecordBatch.decode(payload).to_records()
    except (ValueError, struct.error) as error:
        raise ProtocolError(
            "bad_request", f"undecodable RPK1 record payload: {error}"
        ) from error


def encode_shard_sections(
    shards: Iterable[Tuple[int, int, bytes]]
) -> bytes:
    """Concatenate ``(key, version, RPK1 blob)`` shards into one payload.

    The snapshot half of the catch-up handshake: a follower too far behind
    the WAL's replay floor receives the primary's whole table as one binary
    payload of per-shard sections instead of a frame-by-frame replay.
    """
    parts: List[bytes] = []
    for key, version, blob in shards:
        parts.append(_SHARD_SECTION.pack(key, version, len(blob)))
        parts.append(blob)
    return b"".join(parts)


def decode_shard_sections(payload: bytes) -> List[Tuple[int, int, bytes]]:
    """Split a snapshot payload back into ``(key, version, blob)`` shards."""
    sections: List[Tuple[int, int, bytes]] = []
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + _SHARD_SECTION.size > size:
            raise ProtocolError(
                "bad_request", "truncated shard section header in snapshot payload"
            )
        key, version, length = _SHARD_SECTION.unpack_from(payload, offset)
        offset += _SHARD_SECTION.size
        if offset + length > size:
            raise ProtocolError(
                "bad_request", "truncated shard blob in snapshot payload"
            )
        sections.append((key, version, payload[offset : offset + length]))
        offset += length
    return sections


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def flows_to_wire(flows: Mapping[int, float]) -> List[List[object]]:
    """A ``{sloc_id: flow}`` mapping as sorted ``[sloc_id, flow]`` pairs."""
    return [[sloc_id, flows[sloc_id]] for sloc_id in sorted(flows)]


def flows_from_wire(pairs: Iterable[Sequence[object]]) -> Dict[int, float]:
    """Rebuild the ``{sloc_id: flow}`` mapping from its wire pairs."""
    return {int(sloc_id): float(flow) for sloc_id, flow in pairs}


def result_to_wire(result: TkPLQResult) -> Dict[str, object]:
    """Serialise a TkPLQ answer: the ranking in rank order plus all flows."""
    return {
        "ranking": [[entry.sloc_id, entry.flow] for entry in result.ranking],
        "flows": flows_to_wire(result.flows),
        "k": result.query.k,
        "window": [result.query.start, result.query.end],
        "algorithm": result.algorithm,
    }


def receipt_to_wire(receipt: IngestReceipt) -> Dict[str, object]:
    """Serialise an ingestion receipt (shard keys become strings as-is)."""
    return {
        "records_ingested": receipt.records_ingested,
        "shards_touched": list(receipt.shards_touched),
        "objects": len(receipt.object_spans),
    }


# ----------------------------------------------------------------------
# Records and queries
# ----------------------------------------------------------------------
def record_to_wire(record: PositioningRecord) -> List[object]:
    """One positioning record as ``[object_id, timestamp, [[ploc, prob], ...]]``."""
    return [
        record.object_id,
        record.timestamp,
        [[sample.ploc_id, sample.prob] for sample in record.sample_set],
    ]


def records_to_wire(records: Iterable[PositioningRecord]) -> List[List[object]]:
    return [record_to_wire(record) for record in records]


def record_from_wire(payload: object) -> PositioningRecord:
    """Rebuild one record, mapping malformed payloads to :class:`ProtocolError`."""
    try:
        object_id, timestamp, samples = payload  # type: ignore[misc]
        sample_set = SampleSet(
            Sample(int(ploc_id), float(prob)) for ploc_id, prob in samples
        )
        return PositioningRecord(int(object_id), sample_set, float(timestamp))
    except ProtocolError:
        raise
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            "bad_request", f"malformed positioning record {payload!r}: {error}"
        ) from error


def records_from_wire(payload: object) -> List[PositioningRecord]:
    if not isinstance(payload, list):
        raise ProtocolError(
            "bad_request", "'records' must be a list of [oid, t, samples] triples"
        )
    return [record_from_wire(item) for item in payload]


def query_from_wire(frame: Mapping[str, object]) -> TkPLQuery:
    """Build a :class:`~repro.core.query.TkPLQuery` from request fields.

    Validation errors raised by the query constructor (empty ``q``, ``k`` out
    of range, inverted window) surface as ``bad_request`` protocol errors
    with the constructor's message, so clients see *why* the frame was bad.
    """
    try:
        return TkPLQuery.build(
            [int(sloc) for sloc in frame["q"]],  # type: ignore[union-attr]
            int(frame["k"]),
            float(frame["start"]),
            float(frame["end"]),
        )
    except KeyError as error:
        raise ProtocolError(
            "bad_request", f"missing query field {error.args[0]!r}"
        ) from error
    except (TypeError, ValueError) as error:
        raise ProtocolError("bad_request", str(error)) from error


def window_from_wire(frame: Mapping[str, object]) -> Tuple[float, float]:
    """Extract and validate the ``start``/``end`` window of a request."""
    try:
        start = float(frame["start"])  # type: ignore[arg-type]
        end = float(frame["end"])  # type: ignore[arg-type]
    except KeyError as error:
        raise ProtocolError(
            "bad_request", f"missing window field {error.args[0]!r}"
        ) from error
    except (TypeError, ValueError) as error:
        raise ProtocolError("bad_request", str(error)) from error
    if start > end:
        raise ProtocolError(
            "bad_request", "the query interval start must not exceed its end"
        )
    return start, end


def sloc_ids_from_wire(frame: Mapping[str, object]) -> List[int]:
    """Extract the ``q`` S-location list of a request."""
    try:
        sloc_ids = [int(sloc) for sloc in frame["q"]]  # type: ignore[union-attr]
    except KeyError as error:
        raise ProtocolError("bad_request", "missing query field 'q'") from error
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            "bad_request", f"'q' must be a list of S-location ids: {error}"
        ) from error
    if not sloc_ids:
        raise ProtocolError("bad_request", "'q' must not be empty")
    return sloc_ids


class FrameSplitter:
    """Incremental byte-stream → frame-line splitter (sans-I/O helper).

    Feed it arbitrary byte chunks; it yields each complete ``\\n``-terminated
    line exactly once, buffering partial tails.  The client core and the
    protocol tests use it to exercise framing without a socket.

    ``max_line_bytes`` enforces the :data:`MAX_FRAME_BYTES` boundary
    contract: a line of exactly that many bytes (terminator excluded) is
    accepted, a longer one — or a buffered tail that can no longer fit —
    raises :class:`ProtocolError` (kind ``bad_frame``).  The stream cannot
    be resynchronised after an overrun, matching the server's behaviour of
    failing the connection.  ``None`` disables the check.
    """

    def __init__(self, max_line_bytes: Optional[int] = None) -> None:
        self._buffer = bytearray()
        self._max_line_bytes = max_line_bytes

    def feed(self, chunk: bytes) -> List[bytes]:
        self._buffer.extend(chunk)
        limit = self._max_line_bytes
        lines: List[bytes] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if limit is not None and len(self._buffer) > limit:
                    raise ProtocolError(
                        "bad_frame",
                        f"frame exceeds the {limit}-byte limit before any "
                        f"terminator; the stream cannot be resynchronised",
                    )
                return lines
            if limit is not None and newline > limit:
                raise ProtocolError(
                    "bad_frame",
                    f"frame of {newline} bytes exceeds the {limit}-byte limit",
                )
            lines.append(bytes(self._buffer[:newline]))
            del self._buffer[: newline + 1]

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


class FrameAssembler:
    """Incremental byte stream → fully decoded frames, binary-aware.

    The sans-I/O superset of :class:`FrameSplitter`: each complete frame
    line is decoded, and a line declaring ``{"bin": N}`` swallows the next
    ``N`` raw bytes as its payload (attached under :data:`BIN_PAYLOAD`)
    before the frame is emitted.  Because the payload may contain ``\\n``
    bytes, splitting and decoding cannot be layered independently — the
    assembler owns the buffer and switches between line mode and
    payload mode itself.

    ``max_frame_bytes`` bounds both the line (terminator excluded,
    inclusive — the :data:`MAX_FRAME_BYTES` contract) and the declared
    payload length; violations raise :class:`ProtocolError` and the stream
    cannot be resynchronised afterwards.
    """

    def __init__(self, max_frame_bytes: Optional[int] = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._limit = max_frame_bytes
        self._pending: Optional[Dict[str, object]] = None
        self._need = 0

    def feed(self, chunk: bytes) -> List[Dict[str, object]]:
        self._buffer.extend(chunk)
        frames: List[Dict[str, object]] = []
        while True:
            if self._pending is not None:
                if len(self._buffer) < self._need:
                    return frames
                frame = self._pending
                self._pending = None
                frame[BIN_PAYLOAD] = bytes(self._buffer[: self._need])
                del self._buffer[: self._need]
                frames.append(frame)
                continue
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if self._limit is not None and len(self._buffer) > self._limit:
                    raise ProtocolError(
                        "bad_frame",
                        f"frame exceeds the {self._limit}-byte limit before "
                        f"any terminator; the stream cannot be resynchronised",
                    )
                return frames
            if self._limit is not None and newline > self._limit:
                raise ProtocolError(
                    "bad_frame",
                    f"frame of {newline} bytes exceeds the {self._limit}-byte limit",
                )
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if not line.strip():
                continue
            frame = decode_frame(line)
            if BIN_LENGTH in frame:
                self._need = binary_length(
                    frame, self._limit if self._limit is not None else 1 << 62
                )
                self._pending = frame
                continue
            frames.append(frame)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
