"""The query service client: a sans-I/O protocol core plus an asyncio wrapper.

:class:`ClientCore` implements the client half of the wire protocol without
any transport: it builds correlation-id-stamped request frames and classifies
incoming frames into responses and pushes.  Tests (and alternative
transports) drive it directly with byte strings; :class:`ServiceClient` wraps
it around one ``asyncio`` stream connection and adds:

* request/response correlation (one future per in-flight ``id``, so requests
  can be pipelined),
* push routing: ``update`` / ``evicted`` frames are delivered to the
  :class:`RemoteSubscription` they belong to — a subscriber receives
  refreshes triggered by *other* clients' ingestions without issuing any
  request,
* typed errors: a response with ``ok=false`` raises :class:`ServiceError`
  carrying the structured ``error.kind`` (``evicted_range``, ``overloaded``,
  ``bad_request``, …).

The convenience methods return the *wire* payloads (plain dicts/lists) —
deliberately, so callers can assert bit-identical equality against
:func:`repro.service.protocol.result_to_wire` of an in-process result, which
is exactly what the service benchmark does.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..data.records import PositioningRecord
from . import protocol
from .protocol import FrameAssembler, ProtocolError


class ServiceError(Exception):
    """A structured error response from the service."""

    def __init__(self, kind: str, message: str, details: Optional[dict] = None):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message
        self.details = details or {}

    @classmethod
    def from_error_payload(cls, payload: dict) -> "ServiceError":
        payload = dict(payload)
        kind = payload.pop("kind", "internal")
        message = payload.pop("message", "")
        return cls(kind, message, payload)


class ClientCore:
    """The transport-free client half of the protocol.

    ``build_request`` stamps frames with fresh correlation ids;
    ``feed_bytes`` turns raw stream chunks into classified events::

        ("response", request_id, frame)   a reply to one of our requests
        ("push", frame)                   an unsolicited subscription frame

    Incoming bytes run through a :class:`~repro.service.protocol.FrameAssembler`,
    so binary (``"bin"``-length-prefixed) frames are reassembled with their
    payload attached under :data:`protocol.BIN_PAYLOAD` — the sans-I/O core
    speaks both wire forms.
    """

    def __init__(self, max_frame_bytes: Optional[int] = protocol.MAX_FRAME_BYTES) -> None:
        self._ids = itertools.count(1)
        # The client enforces the same inclusive frame-size boundary as the
        # server's read loop (see protocol.MAX_FRAME_BYTES): a hostile or
        # buggy server cannot balloon the sans-I/O buffer without bound.
        self._assembler = FrameAssembler(max_frame_bytes=max_frame_bytes)
        self.pending: Dict[object, dict] = {}

    def build_request(self, op: str, **fields: object) -> Tuple[int, bytes]:
        """A fresh request frame in wire form; the id is tracked as pending.

        A :data:`protocol.BIN_PAYLOAD` field rides along as the binary
        payload — :func:`protocol.encode_frame` emits the binary form.
        """
        request_id = next(self._ids)
        frame: Dict[str, object] = {"id": request_id, "op": op}
        frame.update(fields)
        self.pending[request_id] = frame
        return request_id, protocol.encode_frame(frame)

    def feed_bytes(self, chunk: bytes) -> List[Tuple]:
        """Classify every complete frame in ``chunk`` (plus buffered tail)."""
        return [self.feed_frame(frame) for frame in self._assembler.feed(chunk)]

    def feed_frame(self, frame: dict) -> Tuple:
        """Classify one already-decoded frame."""
        if protocol.is_push_frame(frame):
            return ("push", frame)
        request_id = frame.get("id")
        self.pending.pop(request_id, None)
        return ("response", request_id, frame)

    @staticmethod
    def unwrap(frame: dict):
        """The result payload of a response frame, or a :class:`ServiceError`.

        A binary response payload is merged into the result dict under
        :data:`protocol.BIN_PAYLOAD` (on a copy — the frame is untouched),
        so callers receive one self-contained value.
        """
        if frame.get("ok"):
            result = frame.get("result")
            if protocol.BIN_PAYLOAD in frame:
                result = dict(result) if isinstance(result, dict) else {"result": result}
                result[protocol.BIN_PAYLOAD] = frame[protocol.BIN_PAYLOAD]
            return result
        raise ServiceError.from_error_payload(frame.get("error") or {})


class RemoteSubscription:
    """A standing query held open over the wire.

    ``result`` tracks the latest known wire result (initial snapshot, then
    every push); ``updates`` buffers the raw push frames in arrival order.
    After an ``evicted`` push, :attr:`active` flips false and
    :attr:`eviction` carries the structured error payload.
    """

    def __init__(self, sub_id: int, kind: str, initial: object):
        self.sub_id = sub_id
        self.kind = kind
        self.result = initial
        self.updates: "asyncio.Queue[dict]" = asyncio.Queue()
        self.active = True
        self.eviction: Optional[dict] = None

    def _apply_push(self, frame: dict) -> None:
        if frame.get("push") == "update":
            self.result = frame.get("result")
        else:
            self.active = False
            self.eviction = frame.get("error")
        self.updates.put_nowait(frame)

    async def next_update(self, timeout: Optional[float] = None) -> dict:
        """Wait for the next push frame (update or eviction)."""
        if timeout is None:
            return await self.updates.get()
        return await asyncio.wait_for(self.updates.get(), timeout)


@dataclass(frozen=True)
class ReconnectPolicy:
    """Bounded reconnect-with-backoff for :meth:`ServiceClient.request`.

    On a :class:`ConnectionError`, the client re-dials up to ``max_retries``
    times, sleeping ``initial_backoff * multiplier**attempt`` (capped at
    ``max_backoff``) between attempts, then resends the request on the new
    connection.  Subscriptions and WAL tails do **not** survive a reconnect —
    they are live streams; callers re-subscribe / redo the WAL handshake.
    """

    max_retries: int = 3
    initial_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.initial_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        return min(self.initial_backoff * self.multiplier**attempt, self.max_backoff)


class ServiceClient:
    """One asyncio connection to a :class:`~repro.service.server.QueryService`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        reconnect: Optional[ReconnectPolicy] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._core = ClientCore()
        self._futures: Dict[object, asyncio.Future] = {}
        self._subscriptions: Dict[int, RemoteSubscription] = {}
        #: Pushes may outrun the subscribe response on a busy table; frames
        #: for a not-yet-materialised subscription buffer here.
        self._early_pushes: Dict[int, List[dict]] = {}
        self._closed = False
        #: WAL replication pushes (``push: wal`` / ``wal_evict``) land here
        #: in arrival order — the replica's apply loop consumes this queue.
        self.wal_frames: "asyncio.Queue[dict]" = asyncio.Queue()
        #: Optional hook receiving every push frame that matched no local
        #: subscription (the router uses it to relay pushes to its clients).
        self.on_push: Optional[Callable[[dict], None]] = None
        self._reconnect = reconnect
        self._endpoint: Optional[Tuple[str, int]] = None
        self.reconnects = 0
        self._reader_task = asyncio.ensure_future(self._read_loop())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls, host: str, port: int, reconnect: Optional[ReconnectPolicy] = None
    ) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES
        )
        client = cls(reader, writer, reconnect=reconnect)
        client._endpoint = (host, port)
        return client

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # The read loop
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_frame(line)
                    if protocol.BIN_LENGTH in frame:
                        need = protocol.binary_length(frame, protocol.MAX_FRAME_BYTES)
                        frame[protocol.BIN_PAYLOAD] = await self._reader.readexactly(
                            need
                        )
                    event = self._core.feed_frame(frame)
                except asyncio.IncompleteReadError:
                    break  # connection died mid-payload
                except ProtocolError:
                    continue  # tolerate one garbled frame rather than dying
                if event[0] == "push":
                    self._route_push(event[1])
                else:
                    _tag, request_id, frame = event
                    future = self._futures.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result(frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except ValueError:
            # A response line exceeded the stream limit: the stream cannot
            # be resynchronised — fall through and fail the pending futures.
            pass
        finally:
            broken = ConnectionError("connection to the query service closed")
            for future in self._futures.values():
                if not future.done():
                    future.set_exception(broken)
            self._futures.clear()
            # Wake any WAL consumer blocked on the queue: the stream is
            # dead, and reconnecting is its decision to make.
            self.wal_frames.put_nowait(dict(protocol.WAL_CLOSED_FRAME))

    def _route_push(self, frame: dict) -> None:
        if protocol.is_wal_push_frame(frame):
            self.wal_frames.put_nowait(frame)
            return
        sub_id = frame.get("subscription")
        subscription = self._subscriptions.get(sub_id)
        if subscription is None:
            if self.on_push is not None:
                self.on_push(frame)
                return
            self._early_pushes.setdefault(sub_id, []).append(frame)
        else:
            subscription._apply_push(frame)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(self, op: str, **fields: object):
        """Issue one request and return its result payload.

        Raises :class:`ServiceError` on a structured error response and
        :class:`ConnectionError` if the connection dies while waiting.  With
        a :class:`ReconnectPolicy`, a connection failure instead re-dials
        (bounded retries, exponential backoff) and resends the request —
        safe for the read-only and idempotent operations the router issues;
        callers that must not double-apply a mutation should not set a
        policy on the connection carrying it.
        """
        attempt = 0
        while True:
            try:
                return await self._request_once(op, fields)
            except ConnectionError:
                policy = self._reconnect
                if (
                    policy is None
                    or self._endpoint is None
                    or attempt >= policy.max_retries
                    or self._closed
                ):
                    raise
                await asyncio.sleep(policy.backoff(attempt))
                attempt += 1
                await self._redial()

    async def _request_once(self, op: str, fields: Dict[str, object]):
        if self._closed:
            raise ConnectionError("client is closed")
        if self._reader_task.done():
            # The read loop has exited: nothing will ever resolve a future
            # registered now, and writes to the dead transport are silently
            # buffered — fail fast instead of hanging forever.
            raise ConnectionError("connection to the query service closed")
        request_id, wire = self._core.build_request(op, **fields)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        self._writer.write(wire)
        await self._writer.drain()
        frame = await future
        return ClientCore.unwrap(frame)

    async def _redial(self) -> None:
        """Replace the dead transport with a fresh connection.

        Only the transport is replaced: pending futures on the old
        connection have already failed, and server-side per-connection state
        (subscriptions, WAL tails) is gone — callers re-establish it.
        """
        host, port = self._endpoint
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=protocol.MAX_FRAME_BYTES
            )
        except OSError as error:
            raise ConnectionError(
                f"reconnect to {host}:{port} failed: {error}"
            ) from error
        self._reader = reader
        self._writer = writer
        self.reconnects += 1
        self._reader_task = asyncio.ensure_future(self._read_loop())

    # ------------------------------------------------------------------
    # Convenience operations (wire payloads in, wire payloads out)
    # ------------------------------------------------------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def top_k(
        self,
        q: Sequence[int],
        k: int,
        start: float,
        end: float,
        algorithm: Optional[str] = None,
    ) -> dict:
        fields: Dict[str, object] = {"q": list(q), "k": k, "start": start, "end": end}
        if algorithm is not None:
            fields["algorithm"] = algorithm
        return await self.request("top_k", **fields)

    async def flow(self, sloc: int, start: float, end: float) -> dict:
        return await self.request("flow", sloc=sloc, start=start, end=end)

    async def flows(self, q: Sequence[int], start: float, end: float) -> dict:
        return await self.request("flows", q=list(q), start=start, end=end)

    async def batch(self, queries: Sequence[dict]) -> dict:
        """``queries``: dicts with ``q``/``k``/``start``/``end`` fields."""
        return await self.request("batch", queries=list(queries))

    async def ingest_batch(
        self, records: Iterable[PositioningRecord], binary: bool = True
    ) -> dict:
        """Ship a batch; by default as one packed RPK1 binary frame.

        ``binary=False`` falls back to the per-record JSON wire form (useful
        for debugging or non-Python peers); both decode to the same records
        server-side, so receipts are identical.
        """
        if binary:
            payload = protocol.records_to_payload(list(records))
            return await self.request(
                "ingest_batch", **{protocol.BIN_PAYLOAD: payload}
            )
        return await self.request(
            "ingest_batch", records=protocol.records_to_wire(records)
        )

    async def evict_before(self, timestamp: float) -> dict:
        return await self.request("evict_before", timestamp=timestamp)

    async def checkpoint(self) -> dict:
        """Snapshot a durable store (``bad_request`` on volatile stores)."""
        return await self.request("checkpoint")

    async def stats(self) -> dict:
        return await self.request("stats")

    # ------------------------------------------------------------------
    # Replication (WAL shipping)
    # ------------------------------------------------------------------
    async def wal_cursor(
        self, cursor: int, follower: Optional[str] = None
    ) -> dict:
        """The catch-up handshake: snapshot-or-replay decision at ``cursor``.

        In ``snapshot`` mode the result dict carries the packed-shard
        payload under :data:`protocol.BIN_PAYLOAD`.
        """
        fields: Dict[str, object] = {"cursor": cursor}
        if follower is not None:
            fields["follower"] = follower
        return await self.request("wal_cursor", **fields)

    async def wal_tail(
        self, cursor: int, follower: Optional[str] = None
    ) -> dict:
        """Start catch-up-then-tail; WAL pushes land on :attr:`wal_frames`."""
        fields: Dict[str, object] = {"cursor": cursor}
        if follower is not None:
            fields["follower"] = follower
        return await self.request("wal_tail", **fields)

    async def wal_ack(self, follower: str, cursor: int) -> dict:
        return await self.request("wal_ack", follower=follower, cursor=cursor)

    async def replica_status(self) -> dict:
        return await self.request("replica_status")

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    async def subscribe_top_k(
        self, q: Sequence[int], k: int, start: float, end: float
    ) -> RemoteSubscription:
        result = await self.request(
            "subscribe", kind="top_k", q=list(q), k=k, start=start, end=end
        )
        return self._materialise_subscription(result)

    async def subscribe_flows(
        self, q: Sequence[int], start: float, end: float
    ) -> RemoteSubscription:
        result = await self.request(
            "subscribe", kind="flows", q=list(q), start=start, end=end
        )
        return self._materialise_subscription(result)

    async def resume_subscription(self, sub_id: int) -> RemoteSubscription:
        """Re-attach to a standing subscription that survived a restart.

        The server restores standing queries from the durable store's
        manifest on start; resuming returns the current maintained result
        and routes subsequent pushes to this connection.
        """
        result = await self.request("subscribe", resume=sub_id)
        return self._materialise_subscription(result)

    def _materialise_subscription(self, result: dict) -> RemoteSubscription:
        subscription = RemoteSubscription(
            result["subscription"], result["kind"], result["result"]
        )
        self._subscriptions[subscription.sub_id] = subscription
        for frame in self._early_pushes.pop(subscription.sub_id, []):
            subscription._apply_push(frame)
        return subscription

    async def unsubscribe(self, subscription: RemoteSubscription) -> bool:
        result = await self.request("unsubscribe", subscription=subscription.sub_id)
        # Per-connection frames are ordered: any push for this subscription
        # was delivered before the unsubscribe response, so dropping the
        # routing (and any stray early buffer) here cannot lose updates.
        self._subscriptions.pop(subscription.sub_id, None)
        self._early_pushes.pop(subscription.sub_id, None)
        subscription.active = False
        return bool(result.get("unsubscribed"))
