"""Admission control for the query service: bounded concurrency, rate limits,
graceful drain.

A network-facing query engine dies by accepting work faster than it can
answer it — the event loop keeps reading frames while the worker pool's
backlog grows without bound.  The :class:`AdmissionController` is the
server's single gate: every request passes :meth:`AdmissionController.admit`
before any engine work is scheduled, and is shed with a structured
``overloaded`` error when

* the **in-flight bound** is reached (``max_inflight`` requests already
  executing or queued on the worker pool),
* the requesting client exceeds its **token-bucket rate limit**
  (``rate_per_second`` sustained, ``burst`` instantaneous), or
* the service is **draining**: shutdown has begun, new work is refused, and
  the already-admitted requests run to completion.

The controller is deliberately sans-I/O and single-threaded: the server only
calls it from the event-loop thread, so plain counters suffice — no locks,
and a fake clock injects deterministic time in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

#: ``admit`` verdict: ``None`` means admitted (the caller owes a ``release``),
#: otherwise ``(reason, message)`` describing why the request was shed.
Rejection = Tuple[str, str]

REASON_CAPACITY = "capacity"
REASON_RATE = "rate"
REASON_DRAINING = "draining"


@dataclass(frozen=True)
class AdmissionConfig:
    """Load-shedding knobs of one :class:`~repro.service.server.QueryService`.

    ``max_inflight``
        Requests allowed to execute concurrently (queued on the worker pool
        included).  The default is deliberately small: the pool runs
        CPU-bound query work, so a deep backlog only adds latency.
    ``rate_per_second``
        Sustained per-client request rate; ``None`` disables rate limiting.
    ``burst``
        Token-bucket depth: how many requests a client may issue
        instantaneously before the sustained rate applies.
    """

    max_inflight: int = 64
    rate_per_second: Optional[float] = None
    burst: int = 8

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.rate_per_second is not None and self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be at least 1")


@dataclass
class AdmissionStats:
    """Counters the metrics registry folds into the ``stats`` response."""

    admitted: int = 0
    shed_capacity: int = 0
    shed_rate: int = 0
    shed_draining: int = 0
    peak_inflight: int = 0

    @property
    def shed_total(self) -> int:
        return self.shed_capacity + self.shed_rate + self.shed_draining

    def as_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "shed_capacity": self.shed_capacity,
            "shed_rate": self.shed_rate,
            "shed_draining": self.shed_draining,
            "shed_total": self.shed_total,
            "peak_inflight": self.peak_inflight,
        }


class _TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/second."""

    __slots__ = ("rate", "capacity", "tokens", "updated")

    def __init__(self, rate: float, capacity: int, now: float):
        self.rate = rate
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.updated = now

    def try_take(self, now: float) -> bool:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """The server's single admission gate (event-loop-thread only)."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or AdmissionConfig()
        self.stats = AdmissionStats()
        self._clock = clock
        self._inflight = 0
        self._draining = False
        self._buckets: Dict[object, _TokenBucket] = {}

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    def admit(self, client_id: object) -> Optional[Rejection]:
        """Admit one request, or return the structured shed reason.

        An admitted request holds one in-flight slot until :meth:`release`.
        """
        if self._draining:
            self.stats.shed_draining += 1
            return (
                REASON_DRAINING,
                "service is draining: shutdown in progress, no new requests",
            )
        if self._inflight >= self.config.max_inflight:
            self.stats.shed_capacity += 1
            return (
                REASON_CAPACITY,
                f"too many requests in flight "
                f"({self._inflight}/{self.config.max_inflight}); retry later",
            )
        if self.config.rate_per_second is not None:
            bucket = self._buckets.get(client_id)
            now = self._clock()
            if bucket is None:
                bucket = _TokenBucket(
                    self.config.rate_per_second, self.config.burst, now
                )
                self._buckets[client_id] = bucket
            if not bucket.try_take(now):
                self.stats.shed_rate += 1
                return (
                    REASON_RATE,
                    f"client exceeded {self.config.rate_per_second:g} "
                    f"requests/second (burst {self.config.burst}); slow down",
                )
        self._inflight += 1
        self.stats.admitted += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight, self._inflight)
        return None

    def release(self) -> None:
        """Return one in-flight slot (exactly once per successful admit)."""
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._inflight -= 1

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse new requests; in-flight ones keep their slots until done."""
        self._draining = True

    def forget_client(self, client_id: object) -> None:
        """Drop a disconnected client's rate-limit state."""
        self._buckets.pop(client_id, None)

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_inflight": self.config.max_inflight,
            "rate_per_second": self.config.rate_per_second,
            "burst": self.config.burst,
            "inflight": self._inflight,
            "draining": self._draining,
            **self.stats.as_dict(),
        }
