"""WAL-shipping read replica: catch up, tail, and serve reads.

A :class:`ReadReplica` is a follower process for one primary
:class:`~repro.service.server.QueryService` over a durable table.  Its life
cycle is the **catch-up-then-tail** handshake from the replication design:

1. **Handshake** (``wal_cursor``): present the last applied commit sequence.
   If the primary's WAL still holds every committed frame past it, the
   answer is *replay* — proceed unchanged.  If compaction or eviction
   dropped needed frames, the answer is *snapshot* and carries the whole
   table as packed shards (versions included); the replica adopts it
   wholesale and its cursor jumps to the primary's last committed sequence.
2. **Tail** (``wal_tail``): the primary replays committed batches past the
   cursor as binary ``RPK1`` push frames, then streams every new commit
   live — one gapless, strictly ordered sequence.
3. **Apply**: each shipped batch goes through the replica table's ordinary
   :meth:`~repro.data.iupt.IUPT.ingest_batch` (and eviction pushes through
   ``evict_before``), so shard versions, engine caches and standing
   subscriptions behave exactly as on the primary: the same commit prefix
   yields a bit-identical table, including
   :meth:`~repro.data.iupt.IUPT.data_key_for` version tokens (the replica
   adopts the primary's store uid during the handshake).

The replica fronts its table with its own **read-only**
:class:`~repro.service.server.QueryService` (``role="replica"``): clients
query and subscribe against it exactly as against the primary; mutations are
rejected with ``bad_request``.  ``replica_status`` reports the applied
sequence, which is the router's stale-read bound.

A dropped primary connection is survived: the tailer re-dials with the
client's bounded backoff policy and redoes the handshake from its current
cursor.  Batches already applied are deduplicated by sequence number, so an
overlap between a pre-disconnect tail and a post-reconnect catch-up cannot
double-ingest.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from ..codec.packed import PackedRecordBatch
from ..data.iupt import IUPT
from ..engine.runtime import QueryEngine
from . import protocol
from .client import ReconnectPolicy, ServiceClient, ServiceError
from .server import QueryService


class ReplicaError(RuntimeError):
    """The replica could not reach or follow its primary."""


class ReadReplica:
    """One read replica: a tailer plus a read-only query service.

    Parameters
    ----------
    engine:
        The query engine over the *same indoor model* as the primary (graph
        and matrix are static scenario inputs, not replicated state).
    primary_host, primary_port:
        The primary query service to follow.
    name:
        The follower name registered with the primary (appears in its
        ``follower_lags`` observability and holds back WAL compaction).
    ack_every:
        Send ``wal_ack`` after this many applied batches (acks advance the
        primary's compaction hold-back cursor; they are flow control, not
        correctness).
    """

    def __init__(
        self,
        engine: QueryEngine,
        primary_host: str,
        primary_port: int,
        name: str = "replica",
        host: str = "127.0.0.1",
        port: int = 0,
        ack_every: int = 8,
        reconnect: Optional[ReconnectPolicy] = None,
        query_workers: int = 4,
    ):
        if ack_every < 1:
            raise ValueError("ack_every must be at least 1")
        self.engine = engine
        self.name = name
        self._primary = (primary_host, primary_port)
        self._host = host
        self._port = port
        self.ack_every = ack_every
        self._reconnect = reconnect or ReconnectPolicy()
        self._query_workers = query_workers
        self._client: Optional[ServiceClient] = None
        self.iupt: Optional[IUPT] = None
        self.service: Optional[QueryService] = None
        self.applied_seq = 0
        self.applied_batches = 0
        self.applied_records = 0
        self.applied_evictions = 0
        self.snapshot_catchups = 0
        self.resubscribes = 0
        self._unacked = 0
        self._stopped = False
        self._failed: Optional[BaseException] = None
        self._run_task: Optional[asyncio.Task] = None
        self._caught_up = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Connect, catch up, start tailing, and serve reads.

        Returns the replica service's bound ``(host, port)``.  On return the
        initial catch-up has been *requested*; :meth:`wait_applied` blocks
        until a given primary sequence is actually applied.
        """
        if self._run_task is not None:
            raise RuntimeError("replica already started")
        self._client = await ServiceClient.connect(
            *self._primary, reconnect=self._reconnect
        )
        handshake = await self._handshake()
        shard_seconds = float(handshake["shard_seconds"])
        index_kind = str(handshake["index_kind"])
        self.iupt = IUPT.sharded(shard_seconds=shard_seconds, index_kind=index_kind)
        # Version tokens embed the store uid; adopting the primary's makes
        # the replica's tokens compare equal for identical shard states.
        self.iupt.store.restore_identity(handshake["uid"])
        self._adopt_snapshot(handshake)
        self.service = QueryService(
            self.engine,
            self.iupt,
            host=self._host,
            port=self._port,
            read_only=True,
            role="replica",
            query_workers=self._query_workers,
        )
        self.service.replication_extra = self._status_extra
        address = await self.service.start()
        await self._attach_tail(int(handshake["cursor"]))
        self._run_task = asyncio.ensure_future(self._run())
        return address

    async def stop(self) -> None:
        self._stopped = True
        if self._run_task is not None:
            self._run_task.cancel()
            try:
                await self._run_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._client is not None:
            await self._client.close()
        if self.service is not None:
            await self.service.stop()

    @property
    def healthy(self) -> bool:
        return self._failed is None and not self._stopped

    # ------------------------------------------------------------------
    # Handshake and catch-up
    # ------------------------------------------------------------------
    async def _handshake(self) -> dict:
        try:
            return await self._client.wal_cursor(
                self.applied_seq, follower=self.name
            )
        except ServiceError as error:
            raise ReplicaError(
                f"primary rejected the WAL handshake: {error}"
            ) from error

    def _adopt_snapshot(self, handshake: dict) -> None:
        """Apply a ``snapshot``-mode handshake (no-op in ``replay`` mode)."""
        if handshake.get("mode") != "snapshot":
            return
        payload = handshake.get(protocol.BIN_PAYLOAD)
        if payload is None:
            raise ReplicaError("snapshot handshake carried no binary payload")
        shards = [
            (key, version, PackedRecordBatch.decode(blob))
            for key, version, blob in protocol.decode_shard_sections(payload)
        ]
        watermark = handshake.get("watermark")
        self.iupt.store.reset_to_packed_shards(
            shards,
            watermark=float("-inf") if watermark is None else float(watermark),
        )
        self.applied_seq = int(handshake["cursor"])
        self.snapshot_catchups += 1
        if self.service is not None and self.service.continuous is not None:
            # A reset fires no store events: standing subscriptions must be
            # recomputed against the adopted table explicitly.
            self.resubscribes += self.service.continuous.resync()

    async def _attach_tail(self, cursor: int) -> None:
        """Start tailing at ``cursor``, re-handshaking if the floor moved.

        A compaction or eviction can advance the replay floor between the
        handshake and the tail request; the primary then rejects the tail
        and the fix is simply a fresh handshake (which answers in snapshot
        mode).  Bounded: the floor cannot keep outrunning us indefinitely
        unless the primary is evicting faster than we can complete two
        round trips.
        """
        for _ in range(4):
            try:
                await self._client.wal_tail(cursor, follower=self.name)
                return
            except ServiceError:
                handshake = await self._handshake()
                self._adopt_snapshot(handshake)
                cursor = int(handshake["cursor"])
        raise ReplicaError(
            "could not attach the WAL tail: the primary's replay floor kept "
            "moving past the handshake cursor"
        )

    # ------------------------------------------------------------------
    # The apply loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        """Consume WAL pushes forever; survive primary reconnects."""
        loop = asyncio.get_running_loop()
        try:
            while not self._stopped:
                frame = await self._client.wal_frames.get()
                push = frame.get("push")
                if push == "wal":
                    await self._apply_commit(loop, frame)
                elif push == "wal_evict":
                    watermark = float(frame["watermark"])
                    dropped = await loop.run_in_executor(
                        None, self.iupt.evict_before, watermark
                    )
                    self.applied_evictions += 1
                    del dropped
                elif push == "wal_closed":
                    await self._reattach()
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 - surfaced via status
            self._failed = error

    async def _apply_commit(self, loop: asyncio.AbstractEventLoop, frame: dict) -> None:
        seq = int(frame["seq"])
        if seq <= self.applied_seq:
            # Overlap between a pre-reconnect tail and a post-reconnect
            # catch-up: the batch is already in the table.
            return
        records = protocol.records_from_payload(protocol.frame_payload(frame))
        # ingest_batch takes the store lock (and recomputes standing
        # subscriptions) — off the event loop like every blocking call.
        await loop.run_in_executor(None, self.iupt.ingest_batch, records)
        self.applied_seq = seq
        self.applied_batches += 1
        self.applied_records += len(records)
        self._unacked += 1
        self._caught_up.set()
        if self._unacked >= self.ack_every:
            self._unacked = 0
            try:
                await self._client.wal_ack(self.name, seq)
            except (ServiceError, ConnectionError):
                pass  # acks are advisory; the tail itself is the contract

    async def _reattach(self) -> None:
        """The tail connection died: re-dial and redo the handshake.

        The client's reconnect policy bounds the retries; the handshake
        restarts from the current applied sequence, so at worst the primary
        re-sends a suffix we deduplicate by sequence number.
        """
        if self._stopped:
            return
        try:
            handshake = await self._handshake()
            self._adopt_snapshot(handshake)
            await self._attach_tail(int(handshake["cursor"]))
        except ConnectionError:
            # The policy's retries inside request() are exhausted.
            raise ReplicaError(
                f"lost the primary at {self._primary[0]}:{self._primary[1]} "
                f"and reconnection retries are exhausted"
            ) from None

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def _status_extra(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "applied_seq": self.applied_seq,
            "applied_batches": self.applied_batches,
            "applied_records": self.applied_records,
            "applied_evictions": self.applied_evictions,
            "snapshot_catchups": self.snapshot_catchups,
            "resubscribes": self.resubscribes,
            "healthy": self.healthy,
            "primary": {"host": self._primary[0], "port": self._primary[1]},
        }

    async def wait_applied(self, seq: int, timeout: float = 10.0) -> None:
        """Block until the replica has applied primary sequence ``seq``."""
        deadline = asyncio.get_running_loop().time() + timeout
        while self.applied_seq < seq:
            if self._failed is not None:
                raise ReplicaError(
                    f"replica {self.name!r} failed while catching up"
                ) from self._failed
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise asyncio.TimeoutError(
                    f"replica {self.name!r} stuck at seq {self.applied_seq}, "
                    f"waiting for {seq}"
                )
            self._caught_up.clear()
            try:
                await asyncio.wait_for(
                    self._caught_up.wait(), min(remaining, 0.25)
                )
            except asyncio.TimeoutError:
                continue
