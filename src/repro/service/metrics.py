"""Observability for the query service: latency histograms and counters.

One :class:`ServiceMetrics` registry per server aggregates everything a
``stats`` request reports:

* per-operation request/error counters and shed counts (from the admission
  controller),
* per-operation **latency histograms** (fixed log-spaced buckets, so
  recording is O(#buckets) scan-free and quantiles need no sample storage),
* push-frame and connection accounting, and
* the engine's :class:`~repro.engine.cache.CacheStats` plus the continuous
  engine's per-subscription :class:`~repro.engine.continuous.SubscriptionStats`
  aggregates, folded in at snapshot time.

Like the admission controller, the registry is sans-I/O and only touched
from the event-loop thread; request latencies are measured around the
executor hop, so they include queueing — which is exactly what a client
experiences.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional

#: Histogram bucket upper bounds in seconds: 0.1 ms … 30 s, roughly
#: quarter-decade spacing — fine enough to tell a 5 ms query from a 50 ms
#: one, coarse enough to stay a handful of integers per operation.
LATENCY_BUCKET_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class LatencyHistogram:
    """Fixed-bucket latency accumulator with quantile estimates.

    Quantiles are reported as the upper bound of the bucket containing the
    requested rank (the usual Prometheus-style estimate): cheap, monotone,
    and never under-reports by more than one bucket width.
    """

    __slots__ = ("counts", "overflow", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * len(LATENCY_BUCKET_BOUNDS)
        self.overflow = 0
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect_left(LATENCY_BUCKET_BOUNDS, seconds)
        if index < len(self.counts):
            self.counts[index] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the ``q``-quantile sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return LATENCY_BUCKET_BOUNDS[index]
        return self.max_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_seconds * 1000.0, 3),
            "p50_ms": round(self.quantile(0.50) * 1000.0, 3),
            "p95_ms": round(self.quantile(0.95) * 1000.0, 3),
            "p99_ms": round(self.quantile(0.99) * 1000.0, 3),
            "max_ms": round(self.max_seconds * 1000.0, 3),
        }


class ServiceMetrics:
    """The per-server metrics registry behind the ``stats`` operation."""

    def __init__(self) -> None:
        self.requests_by_op: Dict[str, int] = {}
        self.errors_by_kind: Dict[str, int] = {}
        self.latency_by_op: Dict[str, LatencyHistogram] = {}
        self.pushes_sent = 0
        self.push_evictions_sent = 0
        self.wal_pushes_sent = 0
        self.connections_opened = 0
        self.connections_closed = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_request(
        self, op: str, seconds: float, error_kind: Optional[str] = None
    ) -> None:
        """Record one answered request (including error responses)."""
        self.requests_by_op[op] = self.requests_by_op.get(op, 0) + 1
        if error_kind is not None:
            self.errors_by_kind[error_kind] = (
                self.errors_by_kind.get(error_kind, 0) + 1
            )
        histogram = self.latency_by_op.get(op)
        if histogram is None:
            histogram = self.latency_by_op[op] = LatencyHistogram()
        histogram.observe(seconds)

    def note_push(self, evicted: bool = False) -> None:
        self.pushes_sent += 1
        if evicted:
            self.push_evictions_sent += 1

    def note_wal_push(self) -> None:
        """One WAL frame shipped to a tailing replication follower."""
        self.wal_pushes_sent += 1

    def note_connection_opened(self) -> None:
        self.connections_opened += 1

    def note_connection_closed(self) -> None:
        self.connections_closed += 1

    @property
    def connections_active(self) -> int:
        return self.connections_opened - self.connections_closed

    @property
    def requests_total(self) -> int:
        return sum(self.requests_by_op.values())

    @property
    def errors_total(self) -> int:
        return sum(self.errors_by_kind.values())

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(
        self,
        cache_stats: Optional[Dict[str, float]] = None,
        continuous_summary: Optional[Dict[str, object]] = None,
        admission: Optional[Dict[str, object]] = None,
        replication: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """The full observability payload served to a ``stats`` request."""
        payload: Dict[str, object] = {
            "requests": {
                "total": self.requests_total,
                "by_op": dict(sorted(self.requests_by_op.items())),
            },
            "errors": {
                "total": self.errors_total,
                "by_kind": dict(sorted(self.errors_by_kind.items())),
            },
            "latency_ms_by_op": {
                op: histogram.as_dict()
                for op, histogram in sorted(self.latency_by_op.items())
            },
            "pushes": {
                "sent": self.pushes_sent,
                "evictions": self.push_evictions_sent,
                "wal": self.wal_pushes_sent,
            },
            "connections": {
                "opened": self.connections_opened,
                "closed": self.connections_closed,
                "active": self.connections_active,
            },
        }
        if cache_stats is not None:
            payload["cache"] = cache_stats
        if continuous_summary is not None:
            payload["continuous"] = continuous_summary
        if admission is not None:
            payload["admission"] = admission
        if replication is not None:
            payload["replication"] = replication
        return payload
