"""The asyncio query service: one shared engine behind a wire protocol.

:class:`QueryService` owns one :class:`~repro.engine.runtime.QueryEngine` and
one :class:`~repro.data.iupt.IUPT` and serves them to many concurrent network
clients over the newline-delimited JSON protocol of
:mod:`repro.service.protocol`:

* the **event loop** only frames, parses, admits and routes — every
  CPU-bound engine call (``top_k``, ``flows``, ``batch``, ``ingest_batch``,
  ``evict_before``, subscription registration) is handed to a worker-thread
  pool via ``loop.run_in_executor``, so a heavy query never stalls other
  connections' framing or pushes.  Thread-safety across those workers comes
  from the layers below: the presence store has its own lock, and every
  store mutation plus the standing-query refreshes it triggers runs under
  the store's re-entrant lock (one ingest = one atomic step);
* **standing subscriptions push**: ``subscribe`` registers a standing query
  with the shared :class:`~repro.engine.continuous.ContinuousQueryEngine`
  whose ``on_update`` hook fires on the ingesting worker thread — the
  service bridges each refresh onto the event loop with
  ``call_soon_threadsafe`` and enqueues an ``update`` push frame on the
  subscribing connection, so one client's ``ingest_batch`` becomes push
  traffic to every other subscribed client with no polling anywhere;
* **per-connection write queues** serialise responses and pushes onto the
  socket (concurrent request tasks never interleave partial frames);
* the :class:`~repro.service.admission.AdmissionController` gates every
  request (bounded in-flight work, per-client rate limits) and supports
  **graceful drain**: :meth:`QueryService.stop` refuses new requests,
  finishes and flushes the admitted ones, then tears connections down;
* errors are **structured**: malformed frames, invalid requests, windows
  reaching into evicted history, admission sheds and internal failures each
  map to a distinct ``error.kind`` the client can dispatch on.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional, Set, Tuple

from ..codec import codec_info
from ..data.iupt import IUPT
from ..engine.continuous import Subscription, TOP_K
from ..engine.runtime import QueryEngine
from ..storage import EvictedRangeError
from ..storage.durable import WalCommit, WalEviction
from .admission import AdmissionConfig, AdmissionController
from .metrics import ServiceMetrics
from . import protocol
from .protocol import ProtocolError

class _Connection:
    """Per-connection state: the write queue and the owned subscriptions."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.conn_id = next(_Connection._ids)
        self.outbox: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        self.writer_task: Optional[asyncio.Task] = None
        #: Wire subscription id -> engine subscription, owned by this client.
        self.subscriptions: Dict[int, Subscription] = {}
        #: Per-subscription push sequence numbers.
        self.push_seq: Dict[int, int] = {}
        #: Tombstones of unsubscribed ids: a refresh that fired before the
        #: unregistration took the store lock may still schedule a push;
        #: delivery drops it here instead of resurrecting state (sub ids are
        #: never reused, so membership is exact).
        self.unsubscribed: set = set()
        #: WAL-tail state when this connection is a replication follower:
        #: the commit-listener token and the registered follower name.
        self.wal_listener: Optional[int] = None
        self.wal_follower: Optional[str] = None
        self.closing = False

    def send_frame(self, frame: dict) -> None:
        """Enqueue one frame for the writer task (event-loop thread only)."""
        if not self.closing:
            self.outbox.put_nowait(frame)

    async def run_writer(self) -> None:
        """Drain the outbox onto the socket until the ``None`` sentinel."""
        while True:
            frame = await self.outbox.get()
            if frame is None:
                break
            try:
                self.writer.write(protocol.encode_frame(frame))
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                break

    async def flush_and_close(self) -> None:
        """Stop accepting frames, flush queued ones, close the transport."""
        self.closing = True
        self.outbox.put_nowait(None)
        if self.writer_task is not None:
            await self.writer_task
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class QueryService:
    """Serve one engine + table to many clients over asyncio streams.

    Parameters
    ----------
    engine:
        The shared query engine; its executor settings still govern
        per-object fan-out *inside* one query, while ``query_workers``
        bounds how many whole requests execute concurrently.
    iupt:
        The served table.  ``ingest_batch`` / ``evict_before`` requests
        mutate it; standing subscriptions are maintained against it.
    host, port:
        Listen address; ``port=0`` (the default) picks a free port —
        read the bound address from :attr:`address` after :meth:`start`.
    admission:
        Load-shedding knobs; defaults to
        :class:`~repro.service.admission.AdmissionConfig`'s defaults.
    query_workers:
        Worker threads executing CPU-bound request work off the event loop.
    """

    def __init__(
        self,
        engine: QueryEngine,
        iupt: IUPT,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionConfig] = None,
        query_workers: int = 4,
        read_only: bool = False,
        role: str = "primary",
    ):
        if query_workers < 1:
            raise ValueError("query_workers must be at least 1")
        self.engine = engine
        self.iupt = iupt
        #: A read-only service (a read replica's front door) answers every
        #: query/subscription op but rejects mutations — its table is owned
        #: by the replication tail, not by clients.
        self.read_only = read_only
        self.role = role
        #: Extra fields merged into ``replica_status`` responses; a replica
        #: process points this at its tailer so clients (and the router's
        #: stale-read bound) can observe the applied sequence.
        self.replication_extra: Optional[Callable[[], dict]] = None
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(admission)
        self._host = host
        self._port = port
        self._query_workers = query_workers
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self.continuous = None  # set in start()
        self._connections: Set[_Connection] = set()
        self._request_tasks: Set[asyncio.Task] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, attach the continuous engine, and begin accepting clients.

        Over a **durable** table this is also the recovery hook: the
        continuous engine is pointed at the store's subscription manifest
        and every persisted standing query is re-registered (with its
        original subscription id) before the first client connects, so
        subscriptions survive a service restart — a reconnecting client
        re-attaches with ``subscribe {"resume": <id>}``.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self._query_workers, thread_name_prefix="repro-query"
        )
        manifest_path = getattr(self.iupt.store, "subscription_manifest_path", None)
        self.continuous = self.engine.continuous(
            self.iupt, manifest_path=manifest_path
        )
        if manifest_path is not None:
            # Registration recomputes each standing result (store lock).
            await self._loop.run_in_executor(
                self._pool, self.continuous.restore_subscriptions
            )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("service not started")
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish admitted work, tear down.

        Sequence: stop accepting connections → admission begins draining
        (new requests get structured ``overloaded``/``draining`` errors) →
        every already-admitted request runs to completion and its response
        is flushed → connections close → the continuous engine detaches →
        the worker pool shuts down.
        """
        if self._stopped or self._server is None:
            return
        self._stopped = True
        self._server.close()  # stops accepting; existing sockets stay open
        self.admission.begin_drain()
        # Detach every connection's standing subscriptions NOW, before the
        # first await: a client that disconnects while the drain waits on
        # in-flight requests must not unregister them (unregistration drops
        # durable subscriptions from the persisted manifest, so they would
        # miss the restart a drain precedes).
        for connection in tuple(self._connections):
            self._detach_subscriptions(connection)
        if self._request_tasks:
            await asyncio.gather(*tuple(self._request_tasks), return_exceptions=True)
        for connection in tuple(self._connections):
            await self._close_connection(connection)
        if self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks), return_exceptions=True)
        # Only wait for the listener after every connection is torn down:
        # since Python 3.12.1 Server.wait_closed() blocks until all active
        # connections finish, so awaiting it first would deadlock the drain.
        await self._server.wait_closed()
        if self.continuous is not None:
            self.continuous.close()
        # Flush-on-drain: a durable table's write-ahead log is fsynced after
        # the last admitted mutation completed, so everything a client got
        # an acknowledgement for survives the shutdown regardless of the
        # configured fsync policy.
        flush = getattr(self.iupt.store, "flush", None)
        if flush is not None:
            await self._run_blocking(flush)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "QueryService":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        connection.writer_task = asyncio.ensure_future(connection.run_writer())
        self._connections.add(connection)
        self._conn_tasks.add(asyncio.current_task())
        self.metrics.note_connection_opened()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # readline raises ValueError when a line exceeds the
                    # stream limit; the stream is now mid-frame and cannot
                    # be resynchronised — answer structurally, then close.
                    connection.send_frame(
                        protocol.error_frame(
                            None,
                            "bad_frame",
                            f"frame exceeds the {protocol.MAX_FRAME_BYTES}-byte "
                            f"limit; split the request into smaller batches",
                        )
                    )
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                # Binary framing happens HERE, on the stream: a line
                # declaring {"bin": N} is followed by N raw payload bytes
                # that must be consumed before the next frame line.  An
                # undecodable line cannot declare a payload, so it is handed
                # to _serve_request as-is for the structured bad_frame
                # answer (stream position is still a line boundary).
                request: object = line
                try:
                    frame = protocol.decode_frame(line.rstrip(b"\n"))
                except ProtocolError:
                    frame = None
                if frame is not None and protocol.BIN_LENGTH in frame:
                    try:
                        need = protocol.binary_length(
                            frame, protocol.MAX_FRAME_BYTES
                        )
                    except ProtocolError as error:
                        # A lying length prefix cannot be resynchronised.
                        connection.send_frame(
                            protocol.error_frame(None, error.kind, error.message)
                        )
                        break
                    try:
                        frame[protocol.BIN_PAYLOAD] = await reader.readexactly(
                            need
                        )
                    except (ConnectionError, asyncio.IncompleteReadError):
                        break
                    request = frame
                elif frame is not None:
                    request = frame
                task = asyncio.ensure_future(
                    self._serve_request(connection, request)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            await self._cleanup_connection(connection)
            self._conn_tasks.discard(asyncio.current_task())

    async def _cleanup_connection(self, connection: _Connection) -> None:
        """Release everything a departing client held.

        A client that disconnects mid-subscription must not leave standing
        queries behind: every subscription it registered is unregistered
        from the continuous engine (stopping its maintenance work), and its
        rate-limit state is dropped.

        During a **drain** the rule flips: connections are being closed by
        the server, not abandoned by their clients, so subscriptions are
        only detached (their push callbacks cleared) and stay registered —
        over a durable table that keeps them in the persisted manifest, and
        a restarted service restores them for clients to ``resume``.
        """
        if connection not in self._connections:
            return
        self._connections.discard(connection)
        if connection.wal_listener is not None:
            # A departed follower stops consuming commits immediately —
            # detach its listener and drop it from the lag table so
            # compaction is no longer held back on its account.  (This runs
            # on drain too: WAL tails are live streams, not resumable
            # subscriptions; a reconnecting follower redoes the handshake.)
            await self._run_blocking(self._release_wal_tail, connection)
        if self._stopped or self.admission.draining:
            # A drain may also be started without stop() (an operator
            # quiescing the service ahead of a restart): the flipped rule
            # applies from the instant draining began, so a client that
            # disconnects mid-drain cannot drop its subscriptions from the
            # manifest.
            self._detach_subscriptions(connection)
        else:
            orphaned = list(connection.subscriptions.values())
            connection.subscriptions.clear()
            for subscription in orphaned:
                # Unregistration takes the store lock — off the loop, like
                # every other lock-taking call.
                await self._run_blocking(self.continuous.unregister, subscription)
        self.admission.forget_client(connection.conn_id)
        await connection.flush_and_close()
        self.metrics.note_connection_closed()

    def _detach_subscriptions(self, connection: _Connection) -> None:
        """Clear a connection's push callbacks, keeping its subscriptions
        registered (and in the durable manifest) for a post-restart resume.

        Callback reads happen under the store lock at fire time; plain
        assignment is atomic and races at worst with one final push, which
        the closing connection drops anyway.
        """
        orphaned = list(connection.subscriptions.values())
        connection.subscriptions.clear()
        for subscription in orphaned:
            subscription.on_update = None
            subscription.on_evicted = None

    async def _close_connection(self, connection: _Connection) -> None:
        await self._cleanup_connection(connection)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def _serve_request(
        self, connection: _Connection, request: "bytes | dict"
    ) -> None:
        began = self._loop.time()
        request_id: object = None
        op = "?"
        error_kind: Optional[str] = None
        try:
            if isinstance(request, dict):
                frame = request  # decoded (and payload-carrying) in the read loop
            else:
                frame = protocol.decode_frame(request)
            request_id = frame.get("id")
            op = frame.get("op", "?")
            if not isinstance(op, str):
                # op doubles as a metrics key: keep it a plain string so one
                # hostile frame cannot poison the sortable by-op counters.
                op = repr(op)
            if op not in protocol.OPS:
                raise ProtocolError(
                    "unknown_op",
                    f"unknown op {op!r}; expected one of {protocol.OPS}",
                )
            response = await self._dispatch(connection, op, frame, request_id)
        except ProtocolError as error:
            error_kind = error.kind
            response = protocol.error_frame(request_id, error.kind, error.message)
        except EvictedRangeError as error:
            error_kind = "evicted_range"
            response = protocol.evicted_error_frame(request_id, error)
        except (ValueError, KeyError, TypeError, NotImplementedError) as error:
            error_kind = "bad_request"
            response = protocol.error_frame(request_id, "bad_request", str(error))
        except Exception as error:  # noqa: BLE001 - the wire must answer
            error_kind = "internal"
            response = protocol.error_frame(
                request_id, "internal", f"{type(error).__name__}: {error}"
            )
        connection.send_frame(response)
        self.metrics.observe_request(op, self._loop.time() - began, error_kind)

    async def _dispatch(
        self, connection: _Connection, op: str, frame: dict, request_id: object
    ) -> dict:
        """Admit, execute (off-loop where CPU-bound), and build the response."""
        # Read-only introspection ops bypass admission entirely: they must
        # stay answerable while the service is rate-limiting or draining —
        # they are how operators observe the drain.  tests/test_service.py
        # pins this for both drain and rate-limit shedding.
        if op in protocol.READ_ONLY_OPS:
            return await self._serve_read_only(op, request_id)
        if self.read_only and op in protocol.MUTATING_OPS:
            raise ProtocolError(
                "bad_request",
                f"this service is a read-only {self.role}; {op!r} must go to "
                f"the primary (the replication tail owns this table)",
            )

        rejection = self.admission.admit(connection.conn_id)
        if rejection is not None:
            reason, message = rejection
            return protocol.error_frame(
                request_id, "overloaded", message, reason=reason
            )
        try:
            if op == "unsubscribe":
                # Connection bookkeeping on the loop (no lock, no race with
                # _cleanup_connection); the engine unregistration takes the
                # store lock, so it goes through the pool.
                subscription = self._forget_subscription(connection, frame)
                removed = (
                    await self._run_blocking(
                        self.continuous.unregister, subscription
                    )
                    if subscription is not None
                    else False
                )
                return protocol.response_frame(
                    request_id, {"unsubscribed": removed}
                )
            if op == "subscribe":
                subscription, result = await self._run_blocking(
                    self._register_subscription, connection, frame
                )
                # Back on the loop: only now may the subscription be tied to
                # the connection.  If the client vanished while the worker
                # was registering, unregister instead of leaking a standing
                # query nobody will ever read — except a RESUMED subscription,
                # which predates this connection and must survive it: only
                # its just-attached callbacks are detached, so the client's
                # retry can resume it again.
                if connection not in self._connections:
                    if result.get("resumed"):
                        subscription.on_update = None
                        subscription.on_evicted = None
                    else:
                        await self._run_blocking(
                            self.continuous.unregister, subscription
                        )
                    raise ProtocolError(
                        "bad_request", "connection closed during subscribe"
                    )
                connection.subscriptions[subscription.sub_id] = subscription
                return protocol.response_frame(request_id, result)
            if op == "wal_tail":
                result = await self._run_blocking(
                    self._do_wal_tail, connection, frame
                )
                return protocol.response_frame(request_id, result)
            handler = {
                "top_k": self._do_top_k,
                "flow": self._do_flow,
                "flows": self._do_flows,
                "batch": self._do_batch,
                "ingest_batch": self._do_ingest_batch,
                "evict_before": self._do_evict_before,
                "checkpoint": self._do_checkpoint,
                "wal_cursor": self._do_wal_cursor,
                "wal_ack": self._do_wal_ack,
            }[op]
            result = await self._run_blocking(handler, frame)
            if isinstance(result, tuple):
                # (payload_dict, binary_bytes): attach the blob to the frame.
                result, payload = result
                response = protocol.response_frame(request_id, result)
                response[protocol.BIN_PAYLOAD] = payload
                return response
            return protocol.response_frame(request_id, result)
        finally:
            self.admission.release()

    async def _serve_read_only(self, op: str, request_id: object) -> dict:
        """Serve one of :data:`protocol.READ_ONLY_OPS` (never admission-gated)."""
        if op == "ping":
            return protocol.response_frame(
                request_id,
                {
                    "pong": True,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "store": self.iupt.store.kind,
                    "records": len(self.iupt),
                },
            )
        if op == "replica_status":
            status = await self._run_blocking(self.replication_status)
            return protocol.response_frame(request_id, status)
        # stats: the continuous summary takes the store lock (a worker may
        # hold it through a long ingest+refresh), so that part runs off the
        # loop; the metrics/admission counters are loop-owned and are
        # snapshotted here, on their owning thread.
        continuous_summary = await self._run_blocking(self.continuous.describe)
        replication = await self._run_blocking(self.replication_status)
        snapshot = self.metrics.snapshot(
            cache_stats=self.engine.cache_stats(),
            continuous_summary=continuous_summary,
            admission=self.admission.as_dict(),
            replication=replication,
        )
        snapshot["codec"] = dict(
            codec_info(),
            scoring_kernel=self.engine.config.resolved_scoring_kernel,
        )
        return protocol.response_frame(request_id, snapshot)

    def replication_status(self) -> dict:
        """The replication view of this service (worker thread: takes locks).

        On a durable primary: the committed/replayable sequence range, the
        WAL inventory, and per-follower lag in frames and seconds.  On a
        replica the tailer merges its applied sequence and primary address
        in through :attr:`replication_extra`.
        """
        store = self.iupt.store
        status: Dict[str, object] = {
            "role": self.role,
            "read_only": self.read_only,
            "store": store.kind,
            "shard_seconds": getattr(store, "shard_seconds", None),
            "records": len(self.iupt),
        }
        if hasattr(store, "wal_inventory"):
            status.update(
                last_seq=store.last_committed_seq,
                base_seq=store.wal_base_seq,
                wal=store.wal_inventory(),
                followers=store.follower_lags(),
            )
        if self.replication_extra is not None:
            status.update(self.replication_extra())
        return status

    async def _run_blocking(self, fn, *args):
        """Run one CPU-bound handler on the worker pool, off the event loop."""
        return await self._loop.run_in_executor(self._pool, lambda: fn(*args))

    # ------------------------------------------------------------------
    # Handlers (worker-pool threads unless noted)
    # ------------------------------------------------------------------
    def _do_top_k(self, frame: dict) -> dict:
        query = protocol.query_from_wire(frame)
        algorithm = frame.get("algorithm", "best-first")
        result = self.engine.search(self.iupt, query, algorithm)
        return protocol.result_to_wire(result)

    def _do_flow(self, frame: dict) -> dict:
        start, end = protocol.window_from_wire(frame)
        try:
            sloc_id = int(frame["sloc"])
        except KeyError as error:
            raise ProtocolError("bad_request", "missing field 'sloc'") from error
        result = self.engine.flow(self.iupt, sloc_id, start, end)
        return {"sloc": sloc_id, "flow": result.flow}

    def _do_flows(self, frame: dict) -> dict:
        start, end = protocol.window_from_wire(frame)
        sloc_ids = protocol.sloc_ids_from_wire(frame)
        flows = self.engine.flows(self.iupt, sloc_ids, start, end)
        return {"flows": protocol.flows_to_wire(flows)}

    def _do_batch(self, frame: dict) -> dict:
        payload = frame.get("queries")
        if not isinstance(payload, list) or not payload:
            raise ProtocolError(
                "bad_request", "'queries' must be a non-empty list of query objects"
            )
        queries = [protocol.query_from_wire(item) for item in payload]
        results = self.engine.batch_top_k(self.iupt, queries)
        return {"results": [protocol.result_to_wire(result) for result in results]}

    def _do_ingest_batch(self, frame: dict) -> dict:
        if protocol.BIN_PAYLOAD in frame:
            # Binary ingest: the batch arrives as one packed RPK1 blob —
            # no per-record JSON on the wire, no record_to_payload cost.
            records = protocol.records_from_payload(
                protocol.frame_payload(frame)
            )
        else:
            records = protocol.records_from_wire(frame.get("records"))
        receipt = self.iupt.ingest_batch(records)
        result = protocol.receipt_to_wire(receipt)
        store = self.iupt.store
        if hasattr(store, "last_committed_seq"):
            # The durable commit sequence: a router (or any read-your-writes
            # client) can hold reads until a replica has applied this far.
            result["seq"] = store.last_committed_seq
        return result

    def _do_evict_before(self, frame: dict) -> dict:
        try:
            timestamp = float(frame["timestamp"])
        except KeyError as error:
            raise ProtocolError("bad_request", "missing field 'timestamp'") from error
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad_request", str(error)) from error
        dropped = self.iupt.evict_before(timestamp)
        return {
            "records_dropped": dropped,
            "watermark": self.iupt.store.eviction_watermark,
        }

    def _do_checkpoint(self, _frame: dict) -> dict:
        """Snapshot the durable store so recovery skips WAL replay."""
        checkpoint = getattr(self.iupt.store, "checkpoint", None)
        if checkpoint is None:
            raise ProtocolError(
                "bad_request",
                f"the {self.iupt.store.kind!r} store is not durable; "
                f"there is nothing to checkpoint",
            )
        return checkpoint()

    # ------------------------------------------------------------------
    # WAL shipping (worker-pool threads)
    # ------------------------------------------------------------------
    def _durable_store(self):
        store = self.iupt.store
        if not hasattr(store, "committed_batches_after"):
            raise ProtocolError(
                "bad_request",
                f"the {store.kind!r} store has no write-ahead log; WAL "
                f"shipping needs a durable table (IUPT.durable)",
            )
        return store

    def _do_wal_cursor(self, frame: dict):
        """The catch-up half of the handshake: snapshot-or-replay decision.

        ``cursor`` is the follower's last applied sequence.  When the WAL
        still holds every committed frame past it, the response says
        ``replay`` and the follower proceeds to ``wal_tail`` unchanged.
        When compaction or eviction dropped frames the cursor needs, the
        response says ``snapshot`` and carries the primary's whole table as
        one binary payload of packed shards; the follower adopts it and
        tails from the returned (advanced) cursor instead.
        """
        store = self._durable_store()
        try:
            cursor = int(frame.get("cursor", 0))
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad_request", str(error)) from error
        follower = frame.get("follower")
        with store.lock:
            last = store.last_committed_seq
            result: Dict[str, object] = {
                "last_seq": last,
                "base_seq": store.wal_base_seq,
                "uid": store.uid,
                "shard_seconds": store.shard_seconds,
                "index_kind": store.index_kind,
                "watermark": (
                    store.eviction_watermark
                    if store.eviction_watermark > float("-inf")
                    else None
                ),
            }
            if store.can_replay_from(cursor):
                result.update(mode="replay", cursor=cursor)
                payload = None
            else:
                # Snapshot catch-up: ship every shard packed, versions
                # included, so the follower's version tokens match ours.
                sections = [
                    (key, version, packed.encode())
                    for key, version, packed in store.inner.packed_shard_states()
                ]
                payload = protocol.encode_shard_sections(sections)
                result.update(mode="snapshot", cursor=last, shards=len(sections))
            if follower is not None:
                store.register_follower(str(follower), int(result["cursor"]))
        if payload is None:
            return result
        return result, payload

    def _do_wal_tail(self, connection: _Connection, frame: dict) -> dict:
        """Catch-up-then-tail: replay committed batches past the cursor as
        binary push frames, then keep streaming every new commit live.

        Atomicity: the replayed batches are collected and the commit
        listener attached under the store lock, so no commit can fall in
        the gap; ``call_soon_threadsafe`` preserves scheduling order, so
        the catch-up frames reach the connection's outbox before any live
        frame — the follower sees one gapless, strictly ordered sequence.
        """
        store = self._durable_store()
        try:
            cursor = int(frame.get("cursor", 0))
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad_request", str(error)) from error
        if connection.wal_listener is not None:
            raise ProtocolError(
                "bad_request", "this connection is already tailing the WAL"
            )
        follower = str(frame.get("follower") or f"follower-{connection.conn_id}")
        with store.lock:
            if not store.can_replay_from(cursor):
                raise ProtocolError(
                    "bad_request",
                    f"cursor {cursor} is below the WAL replay floor "
                    f"{store.wal_base_seq}; run wal_cursor to re-catch-up "
                    f"from a snapshot first",
                )
            batches = store.committed_batches_after(cursor)
            for seq, records in batches:
                wal_frame = protocol.push_wal_frame(
                    seq, protocol.records_to_payload(records)
                )
                self._loop.call_soon_threadsafe(
                    self._deliver_wal_push, connection, wal_frame
                )
            token = store.add_commit_listener(
                lambda event: self._push_wal_event(connection, event)
            )
            store.register_follower(follower, cursor)
            connection.wal_listener = token
            connection.wal_follower = follower
            return {
                "tailing": True,
                "cursor": cursor,
                "caught_up": len(batches),
                "last_seq": store.last_committed_seq,
                "follower": follower,
            }

    def _do_wal_ack(self, frame: dict) -> dict:
        """Advance a follower's cursor (frees compaction to move past it)."""
        store = self._durable_store()
        try:
            cursor = int(frame["cursor"])
            follower = str(frame["follower"])
        except KeyError as error:
            raise ProtocolError(
                "bad_request", f"missing field {error.args[0]!r}"
            ) from error
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad_request", str(error)) from error
        store.ack_follower(follower, cursor)
        return {"acked": cursor}

    def _push_wal_event(self, connection: _Connection, event: object) -> None:
        """Commit-listener hook: runs on the ingesting thread, under the
        store lock, in commit order — bridge each event onto the loop."""
        if isinstance(event, WalCommit):
            frame = protocol.push_wal_frame(event.seq, event.payload())
        elif isinstance(event, WalEviction):
            frame = protocol.push_wal_evict_frame(event.watermark)
        else:  # pragma: no cover - future event kinds are skipped, not fatal
            return
        self._loop.call_soon_threadsafe(self._deliver_wal_push, connection, frame)

    def _deliver_wal_push(self, connection: _Connection, frame: dict) -> None:
        if connection not in self._connections or connection.closing:
            return
        connection.send_frame(frame)
        self.metrics.note_wal_push()

    def _release_wal_tail(self, connection: _Connection) -> None:
        """Detach a departed follower (worker thread; takes the store lock)."""
        store = self.iupt.store
        if connection.wal_listener is not None:
            store.remove_commit_listener(connection.wal_listener)
            connection.wal_listener = None
        if connection.wal_follower is not None:
            store.unregister_follower(connection.wal_follower)
            connection.wal_follower = None

    def _register_subscription(self, connection: _Connection, frame: dict):
        """Worker-pool half of ``subscribe``: register + first compute.

        Returns ``(subscription, response_payload)``; the caller ties the
        subscription to the connection back on the event loop, so this
        function never mutates connection state.

        With a ``resume`` field the frame re-attaches to a subscription that
        survived a restart (restored from the durable store's manifest) or a
        drain, instead of registering a new one.
        """
        if frame.get("resume") is not None:
            return self._resume_subscription(connection, frame)
        kind = frame.get("kind", "top_k")
        if kind not in protocol.SUBSCRIPTION_KINDS:
            raise ProtocolError(
                "bad_request",
                f"unknown subscription kind {kind!r}; "
                f"expected one of {protocol.SUBSCRIPTION_KINDS}",
            )
        on_update = lambda sub, result: self._push_update(  # noqa: E731
            connection, kind, sub, result
        )
        on_evicted = lambda sub, error: self._push_evicted(  # noqa: E731
            connection, sub, error
        )
        if kind == "top_k":
            query = protocol.query_from_wire(frame)
            subscription = self.continuous.register(
                query, on_update=on_update, on_evicted=on_evicted
            )
            initial = protocol.result_to_wire(subscription.result)
        else:
            start, end = protocol.window_from_wire(frame)
            sloc_ids = protocol.sloc_ids_from_wire(frame)
            subscription = self.continuous.register_flows(
                sloc_ids, start, end, on_update=on_update, on_evicted=on_evicted
            )
            initial = {"flows": protocol.flows_to_wire(subscription.result)}
        return subscription, {
            "subscription": subscription.sub_id,
            "kind": kind,
            "result": initial,
        }

    def _resume_subscription(self, connection: _Connection, frame: dict):
        """Re-attach one detached standing subscription to this connection."""
        try:
            sub_id = int(frame["resume"])
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad_request", str(error)) from error
        subscription = self.continuous.subscription(sub_id)
        if subscription is None:
            raise ProtocolError(
                "bad_request", f"unknown subscription {sub_id} (nothing to resume)"
            )
        kind = "top_k" if subscription.kind == TOP_K else "flows"
        on_update = lambda sub, result: self._push_update(  # noqa: E731
            connection, kind, sub, result
        )
        on_evicted = lambda sub, error: self._push_evicted(  # noqa: E731
            connection, sub, error
        )
        with self.iupt.store.lock:
            # Attach under the store lock so a concurrent refresh observes
            # either no callbacks or both — never a half-attached pair; the
            # claim check is atomic with the attach for the same reason.
            if subscription.on_update is not None or subscription.on_evicted is not None:
                raise ProtocolError(
                    "bad_request",
                    f"subscription {sub_id} is already attached to a connection",
                )
            subscription.on_update = on_update
            subscription.on_evicted = on_evicted
            # Reading .result raises EvictedRangeError when retention killed
            # the window while the service was down — surfaced as the
            # structured evicted_range error, exactly like a fresh register.
            try:
                result = subscription.result
            except Exception:
                subscription.on_update = None
                subscription.on_evicted = None
                raise
        if kind == "top_k":
            initial: object = protocol.result_to_wire(result)
        else:
            initial = {"flows": protocol.flows_to_wire(result)}
        return subscription, {
            "subscription": subscription.sub_id,
            "kind": kind,
            "result": initial,
            "resumed": True,
        }

    @staticmethod
    def _forget_subscription(connection: _Connection, frame: dict):
        """Event-loop half of ``unsubscribe``: detach from the connection."""
        try:
            sub_id = int(frame["subscription"])
        except KeyError as error:
            raise ProtocolError(
                "bad_request", "missing field 'subscription'"
            ) from error
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad_request", str(error)) from error
        connection.push_seq.pop(sub_id, None)
        connection.unsubscribed.add(sub_id)
        return connection.subscriptions.pop(sub_id, None)

    # ------------------------------------------------------------------
    # Push (called on ingesting worker threads, bridged onto the loop)
    # ------------------------------------------------------------------
    def _push_update(
        self, connection: _Connection, kind: str, subscription: Subscription, result
    ) -> None:
        wire = (
            protocol.result_to_wire(result)
            if kind == "top_k"
            else {"flows": protocol.flows_to_wire(result)}
        )
        # seq is 0 here; _deliver_push numbers the frame on the event loop,
        # where push_seq is touched by exactly one thread — a worker-side
        # counter would race with the subscribe path.
        frame = protocol.push_update_frame(subscription.sub_id, 0, kind, wire)
        self._loop.call_soon_threadsafe(self._deliver_push, connection, frame, False)

    def _push_evicted(
        self, connection: _Connection, subscription: Subscription, error
    ) -> None:
        frame = protocol.push_evicted_frame(subscription.sub_id, error)
        self._loop.call_soon_threadsafe(self._deliver_push, connection, frame, True)

    def _deliver_push(
        self, connection: _Connection, frame: dict, evicted: bool
    ) -> None:
        """Event-loop side of a push: number it, enqueue it, count it.

        ``call_soon_threadsafe`` preserves the scheduling order of the
        refreshes (they are serialised under the store lock), so per-
        subscription sequence numbers assigned here are contiguous and in
        refresh order.
        """
        if connection not in self._connections or connection.closing:
            return
        sub_id = frame["subscription"]
        if sub_id in connection.unsubscribed:
            return
        if not evicted:
            seq = connection.push_seq.get(sub_id, 0) + 1
            connection.push_seq[sub_id] = seq
            frame["seq"] = seq
        connection.send_frame(frame)
        self.metrics.note_push(evicted=evicted)

