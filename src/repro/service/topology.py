"""Process entrypoint for replication topologies: primary, replica, router.

The replication benchmark (and the CI job behind it) runs a real
1-primary / N-replica / 1-router topology as **separate OS processes**, so
replica query work genuinely parallelises across cores instead of sharing
one GIL.  Each role is one invocation of this module:

.. code-block:: console

   python -m repro.service.topology primary --data-dir /tmp/t --port 0
   python -m repro.service.topology replica --primary 127.0.0.1:4100 --name r0
   python -m repro.service.topology router  --primary 127.0.0.1:4100 \\
       --replicas 127.0.0.1:4200,127.0.0.1:4201

Every role prints exactly one ``READY <host> <port>`` line on stdout once
it accepts connections (the launcher parses it to learn the ephemeral
port), then serves until killed.

The indoor model (graph and matrix) is static scenario input, not
replicated state, so each process rebuilds it deterministically from the
same synthetic-scenario parameters — the defaults here match the
replication benchmark's scenario exactly.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Tuple

from ..data.iupt import IUPT
from ..engine.config import EngineConfig
from ..engine.runtime import QueryEngine
from ..storage import DurabilityConfig
from ..synth.scenario import build_synthetic_scenario
from .client import ReconnectPolicy
from .replica import ReadReplica
from .router import PartitionRouter
from .server import QueryService

DEFAULT_SHARD_SECONDS = 60.0


def _build_engine(args: argparse.Namespace) -> QueryEngine:
    scenario = build_synthetic_scenario(
        num_objects=args.objects,
        floors=args.floors,
        room_rows=1,
        rooms_per_row=3,
        duration_seconds=args.duration,
        seed=args.seed,
    )
    config = None
    if args.presence_capacity is not None:
        config = EngineConfig(presence_store_capacity=args.presence_capacity)
    return QueryEngine(scenario.system.graph, scenario.system.matrix, config=config)


def _parse_address(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host, int(port)


def _parse_addresses(text: str) -> List[Tuple[str, int]]:
    return [_parse_address(part) for part in text.split(",") if part]


def _announce(host: str, port: int) -> None:
    print(f"READY {host} {port}", flush=True)


async def _run_primary(args: argparse.Namespace) -> None:
    iupt = IUPT.durable(
        args.data_dir,
        shard_seconds=args.shard_seconds,
        config=DurabilityConfig(
            snapshot_every_batches=args.snapshot_every,
            compact_above_bytes=args.compact_above_bytes,
        ),
    )
    service = QueryService(
        _build_engine(args),
        iupt,
        host=args.host,
        port=args.port,
        query_workers=args.query_workers,
    )
    host, port = await service.start()
    _announce(host, port)
    await service.serve_forever()


async def _run_replica(args: argparse.Namespace) -> None:
    replica = ReadReplica(
        _build_engine(args),
        *_parse_address(args.primary),
        name=args.name,
        host=args.host,
        port=args.port,
        reconnect=ReconnectPolicy(max_retries=args.reconnect_retries),
        query_workers=args.query_workers,
    )
    host, port = await replica.start()
    _announce(host, port)
    await replica.service.serve_forever()


async def _run_router(args: argparse.Namespace) -> None:
    router = PartitionRouter(
        _parse_address(args.primary),
        _parse_addresses(args.replicas),
        host=args.host,
        port=args.port,
        freshness_timeout=args.freshness_timeout,
        reconnect=ReconnectPolicy(max_retries=args.reconnect_retries),
    )
    host, port = await router.start()
    _announce(host, port)
    await asyncio.Event().wait()  # serve until killed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.topology",
        description="Run one replication-topology role (primary, replica, router).",
    )
    sub = parser.add_subparsers(dest="role", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0)
        p.add_argument("--query-workers", type=int, default=4)
        # Scenario parameters (must match across all roles of one topology).
        p.add_argument("--objects", type=int, default=10)
        p.add_argument("--floors", type=int, default=2)
        p.add_argument("--duration", type=float, default=240.0)
        p.add_argument("--seed", type=int, default=17)
        # Per-node presence-cache bound.  The replication benchmark pins this
        # identically on every role so the scale-out comparison is about node
        # count, not about handing the topology more total cache than the
        # single server gets.
        p.add_argument("--presence-capacity", type=int, default=None)

    primary = sub.add_parser("primary", help="durable primary query service")
    common(primary)
    primary.add_argument("--data-dir", required=True)
    primary.add_argument(
        "--shard-seconds", type=float, default=DEFAULT_SHARD_SECONDS
    )
    primary.add_argument("--snapshot-every", type=int, default=64)
    primary.add_argument("--compact-above-bytes", type=int, default=None)

    replica = sub.add_parser("replica", help="WAL-shipping read replica")
    common(replica)
    replica.add_argument("--primary", required=True, help="HOST:PORT")
    replica.add_argument("--name", default="replica")
    replica.add_argument("--reconnect-retries", type=int, default=5)

    router = sub.add_parser("router", help="partition-aware router front-end")
    common(router)
    router.add_argument("--primary", required=True, help="HOST:PORT")
    router.add_argument(
        "--replicas", default="", help="comma-separated HOST:PORT list"
    )
    router.add_argument("--freshness-timeout", type=float, default=5.0)
    router.add_argument("--reconnect-retries", type=int, default=5)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    runner = {
        "primary": _run_primary,
        "replica": _run_replica,
        "router": _run_router,
    }[args.role]
    try:
        asyncio.run(runner(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
